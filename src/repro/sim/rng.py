"""Backwards-compatible re-export.

Named random streams are seed-derived and backend-independent, so the
module moved to the layer-neutral :mod:`repro.rng`.  This shim keeps
historical imports (``from repro.sim.rng import RngStreams``) working.
"""

from repro.rng import (  # noqa: F401
    RngStreams,
    _derive_seed,
)

__all__ = ["RngStreams"]
