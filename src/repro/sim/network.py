"""Contention-aware interconnect model.

The model captures exactly the phenomena the paper's communication
module reasons about:

- **sender injection**: each node's transmit NIC serialises outgoing
  packets at ``inject_us_per_byte``;
- **wire latency**: ``base_latency_us + hops * per_hop_us`` from the
  topology;
- **receiver drain**: the receive NIC serialises incoming packets, so
  many concurrent senders to one node queue up;
- **packet back-up**: bytes that arrive while more than
  ``rx_buffer_bytes`` are already queued pay an extra
  ``backup_penalty_us_per_byte``.  This is the congestion that the
  paper's *minimal flow control* (one outstanding bulk transfer per
  receiving node) is designed to avoid, and it is what makes the
  flow-control ablation in Table 1 visible.

All transmissions deliver by running a callback on the destination
:class:`~repro.sim.engine.SimNode`, so CPU occupancy at the receiver is
modelled by the engine itself.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.config import NetworkParams
from repro.errors import NetworkError
from repro.sim.engine import SimNode, Simulator
from repro.sim.faults import FaultInjector
from repro.stats import StatsRegistry
from repro.topology import Topology


class Network:
    """Point-to-point transport between :class:`SimNode` instances."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        nodes: List[SimNode],
        params: NetworkParams,
        stats: StatsRegistry,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        if len(nodes) != topology.size:
            raise NetworkError(
                f"{len(nodes)} nodes but topology of size {topology.size}"
            )
        self.sim = sim
        self.topology = topology
        self.nodes = nodes
        self.params = params
        self.stats = stats
        # Fault injection is off on the vast majority of machines; the
        # fast path pays exactly one cached boolean test per unicast.
        self.faults = faults
        self._faults_on = faults is not None
        # Hot-path bindings: one counter-cell / timer handle per stat,
        # bound once so unicast never hashes a dotted name per message.
        self._c_messages = stats.cell("net.messages")
        self._c_bytes = stats.cell("net.bytes")
        self._c_backup_events = stats.cell("net.backup_events")
        self._c_backup_bytes = stats.cell("net.backup_bytes")
        self._rec_delivery_us = stats.timer("net.delivery_us").record
        n = topology.size
        self._tx_free = [0.0] * n
        # Per-(src, dst) last drain_done: the CM-5 data network (and
        # every protocol built here) delivers messages between one
        # pair of nodes in injection order, so a later small message
        # may not slip through a gap ahead of an earlier large one.
        self._pair_last: dict[tuple[int, int], float] = {}
        # (arrive, drain_start, drain_done, bytes) for messages
        # scheduled on each rx NIC, kept sorted by drain_start.  The
        # NIC serves packets in arrival order; a packet arriving while
        # the NIC is idle drains immediately even if a later arrival
        # has already reserved a future window (interval-gap
        # scheduling).  Bytes count against the receive buffer only
        # while a message is *waiting* — it has arrived but its drain
        # has not begun; the transfer currently streaming through the
        # NIC does not occupy buffer space.
        self._rx_sched: List[List[tuple[float, float, int]]] = [[] for _ in range(n)]

    # ------------------------------------------------------------------
    def wire_latency(self, src: int, dst: int) -> float:
        """Pure wire latency between two nodes (no serialisation)."""
        return (
            self.params.base_latency_us
            + self.topology.hops(src, dst) * self.params.per_hop_us
        )

    def rx_backlog_bytes(self, dst: int, at: float) -> int:
        """Bytes *waiting* (scheduled but not yet draining) at ``dst``'s
        receive NIC at time ``at``."""
        sched = self._rx_sched[dst]
        # Prune only windows that are past for *everyone*: a future
        # send from another node may still arrive earlier than ``at``,
        # and its slot search must see every window after sim.now —
        # otherwise it could be booked over one and jump the queue.
        horizon = self.sim.now
        sched[:] = [e for e in sched if e[2] > horizon]
        return sum(b for (arr, s, t, b) in sched if arr <= at < s)

    def _rx_slot(self, dst: int, arrive: float, duration: float) -> float:
        """Earliest start >= ``arrive`` of a gap of ``duration`` on the
        destination NIC's schedule.  The schedule list stays sorted by
        start time."""
        t = arrive
        for (_arr, s, e, _b) in self._rx_sched[dst]:
            if e <= t:
                continue
            if s >= t + duration:
                break  # the gap before this interval fits
            t = max(t, e)
        return t

    # ------------------------------------------------------------------
    def unicast(
        self,
        src: int,
        dst: int,
        nbytes: int,
        deliver: Callable[..., None],
        args: tuple = (),
        *,
        label: str = "",
    ) -> float:
        """Transmit ``nbytes`` from ``src`` to ``dst``.

        ``deliver(*args)`` runs on the destination node's CPU once the
        message has fully drained from the receive NIC (``args`` rides
        the engine's pass-through — no closure needed per message).
        Returns the time at which the *sender's* NIC finishes injecting
        (the moment the paper's alias scheme lets the sender resume).
        """
        if src == dst:
            raise NetworkError("unicast requires distinct src/dst; local sends "
                               "bypass the network")
        if nbytes <= 0:
            raise NetworkError(f"message size must be positive, got {nbytes}")
        if self._faults_on:
            handled = self._unicast_faulty(src, dst, nbytes, deliver, args, label)
            if handled is not None:
                return handled
        p = self.params
        sender = self.nodes[src]
        now = sender.now if sender._in_handler else self.sim.now

        # Sender-side injection (serialised per node).
        inject_start = max(now, self._tx_free[src])
        inject_done = inject_start + nbytes * p.inject_us_per_byte
        self._tx_free[src] = inject_done

        # Wire.
        arrive = inject_done + self.wire_latency(src, dst)

        # Receiver-side drain (serialised per node) + back-pressure.
        backlog = self.rx_backlog_bytes(dst, arrive)
        drain_us = nbytes * p.drain_us_per_byte
        # Back-pressure applies only to *converging* traffic: a single
        # streamed transfer never overflows (sender and receiver move
        # at matched rates), and the message currently draining flows
        # through the NIC.  But bytes already parked waiting for the
        # NIC fill the receive buffer; once they exceed its capacity,
        # further arrivals pay the back-up (retry/packet-discard)
        # penalty.  This is the congestion minimal flow control exists
        # to avoid (§6.5).
        overflow = max(0, backlog + nbytes - max(p.rx_buffer_bytes, nbytes))
        if overflow:
            drain_us += overflow * p.backup_penalty_us_per_byte
            self._c_backup_events.n += 1
            self._c_backup_bytes.n += overflow
        fifo_floor = self._pair_last.get((src, dst), 0.0)
        drain_start = self._rx_slot(dst, max(arrive, fifo_floor), drain_us)
        drain_done = drain_start + drain_us
        self._pair_last[(src, dst)] = drain_done
        sched = self._rx_sched[dst]
        sched.append((arrive, drain_start, drain_done, nbytes))
        sched.sort(key=lambda entry: entry[1])

        self._c_messages.n += 1
        self._c_bytes.n += nbytes
        self._rec_delivery_us(drain_done - now)

        # Delivery handlers run preemptively: the receiving node
        # manager steals the processor from whatever is executing (§3).
        self.nodes[dst].post_preempting(drain_done, deliver, args)
        return inject_done

    # ------------------------------------------------------------------
    def _unicast_faulty(
        self,
        src: int,
        dst: int,
        nbytes: int,
        deliver: Callable[..., None],
        args: tuple,
        label: str,
    ) -> Optional[float]:
        """Fault-aware transmission path.

        Returns ``None`` when neither the message kind nor the
        destination node is covered by the fault plan — the caller then
        falls through to the plain path, so untargeted traffic keeps
        its normal ordering and cost model even on a faulty machine.

        Kinds with a fault rule leave the per-pair FIFO lane: a delayed
        or duplicated packet may be overtaken by a later send between
        the same pair, which is what makes reorder faults observable.
        Back-pressure accounting is skipped here — faulted protocol
        packets are minimal-size and never converge in bulk.
        """
        f = self.faults
        rule = f.rule_for(label) if label else None
        if rule is None and not f.node_faulted(dst):
            return None
        p = self.params
        sender = self.nodes[src]
        now = sender.now if sender._in_handler else self.sim.now
        inject_start = max(now, self._tx_free[src])
        inject_done = inject_start + nbytes * p.inject_us_per_byte
        self._tx_free[src] = inject_done
        self._c_messages.n += 1
        self._c_bytes.n += nbytes
        if rule is not None:
            extras = f.sample(rule, label, src, dst, now)
            if not extras:
                # Dropped: the sender paid the wire, nothing arrives.
                return inject_done
            ordered = False
        else:
            extras = [0.0]
            ordered = True
        wire = self.wire_latency(src, dst)
        drain_us = nbytes * p.drain_us_per_byte * f.slow_factor(dst)
        node = self.nodes[dst]
        sched = self._rx_sched[dst]
        for extra in extras:
            arrive = f.stall_shift(dst, inject_done + wire + extra)
            if ordered:
                arrive = max(arrive, self._pair_last.get((src, dst), 0.0))
            drain_start = self._rx_slot(dst, arrive, drain_us)
            drain_done = drain_start + drain_us
            if ordered:
                self._pair_last[(src, dst)] = drain_done
            sched.append((arrive, drain_start, drain_done, nbytes))
            sched.sort(key=lambda entry: entry[1])
            self._rec_delivery_us(drain_done - now)
            node.post_preempting(drain_done, deliver, args)
        return inject_done

    # ------------------------------------------------------------------
    def reset_contention(self) -> None:
        """Forget NIC occupancy (used between benchmark phases)."""
        n = self.topology.size
        self._tx_free = [0.0] * n
        self._rx_sched = [[] for _ in range(n)]
        self._pair_last.clear()
