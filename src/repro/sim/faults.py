"""Deterministic fault injection for the interconnect model.

The paper's central claim — location transparency stays cheap because
name tables are a relaxed-consistency "best guess" repaired on demand —
was measured on a CM-5 whose CMAM layer delivers every packet exactly
once.  A production substrate offers no such guarantee, so this module
lets a simulation *withdraw* it, deterministically: a seeded
:class:`FaultPlan` describes, per message kind, the probability that an
individual AM packet is dropped, duplicated, delayed or reordered, and
per node, windows in which a whole node stalls or drains slowly.

A :class:`FaultInjector` binds a plan to a machine.  The network
consults it on the packet path (one cached boolean when no plan is
installed; see :meth:`repro.sim.network.Network.unicast`), and every
decision is drawn from a named RNG substream so a run is exactly
reproducible from ``(workload seed, fault seed)``.  Each fault is also
recorded in a ledger — the *injected-fault budget* the invariant
checker (:mod:`repro.sim.invariants`) audits delivery against.

Semantics of the four packet faults:

- **drop**: the sender's NIC injects the packet (it pays the wire),
  but it never arrives.  Survival requires retry (the reliable AM
  sublayer, :mod:`repro.am.reliable`).
- **duplicate**: the packet arrives twice, the second copy after an
  extra delay.  Survival requires idempotent receipt (dedupe keyed by
  ``(sender, seq)``).
- **delay**: the packet arrives late by a uniform draw from
  ``delay_us``.
- **reorder**: modelled as an extra delay up to ``reorder_window_us``
  *combined with* the faulted kind bypassing the network's per-pair
  FIFO floor — a later packet between the same pair may overtake it.

Kinds with no rule attached keep the normal, fully ordered and
reliable path even on a faulty machine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.rng import _derive_seed
from repro.stats import StatsRegistry

#: Message kinds the self-healing protocols are hardened against.  The
#: chaos presets target these; anything sent through the AM endpoint is
#: actually safe (the reliable sublayer sits below every handler), but
#: this set names the protocol traffic the paper's §4–§5 machinery owns.
PROTOCOL_KINDS: Tuple[str, ...] = (
    "fir",
    "fir_reply",
    "migrate_arrive",
    "migrate_ack",
    "create_remote",
    "cache_addr",
    "deliver_keyed",
    "deliver_direct",
    "reply",
)


@dataclass(frozen=True)
class FaultRule:
    """Per-message-kind packet fault probabilities.

    ``drop_count`` makes the rule deterministic instead: the first
    ``drop_count`` matching packets are dropped, and the probabilistic
    clauses are skipped entirely — useful for tests that must kill one
    specific protocol step ("the FIR reply") without a seed hunt.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    #: Uniform range of injected extra latency (us) for delay faults.
    delay_us: Tuple[float, float] = (10.0, 200.0)
    reorder: float = 0.0
    #: Maximum overtaking window (us) for reorder faults.
    reorder_window_us: float = 250.0
    #: Deterministic mode: drop exactly the first N matching packets.
    drop_count: int = 0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay", "reorder"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ReproError(f"fault probability {name}={p} not in [0, 1]")
        if self.drop_count < 0:
            raise ReproError(f"drop_count must be >= 0, got {self.drop_count}")
        if self.delay_us[0] < 0 or self.delay_us[1] < self.delay_us[0]:
            raise ReproError(f"bad delay_us range {self.delay_us}")


@dataclass(frozen=True)
class NodeFault:
    """A whole-node fault: one stall window and/or a slow drain.

    During ``[stall_at_us, stall_at_us + stall_for_us)`` no packet is
    drained by the node's receive NIC — arrivals are shifted past the
    window (senders see a silent peer and must retry or wait).
    ``slow_factor`` multiplies the node's per-byte drain cost for the
    whole run (a thermally throttled or oversubscribed node).
    """

    stall_at_us: float = 0.0
    stall_for_us: float = 0.0
    slow_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.stall_at_us < 0 or self.stall_for_us < 0:
            raise ReproError("stall window must be non-negative")
        if self.slow_factor < 1.0:
            raise ReproError(f"slow_factor must be >= 1, got {self.slow_factor}")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded description of the faults to inject.

    ``by_kind`` maps message kinds (AM handler names) to their
    :class:`FaultRule`; kinds not listed are never faulted.  ``seed``
    of ``None`` inherits the machine's workload seed, so one
    ``--seed N`` reproduces both the workload and its faults; an
    explicit seed lets fuzzers vary faults independently.
    ``max_drops`` caps the total number of dropped packets (the drop
    budget): once spent, further drop draws deliver normally, which
    bounds worst-case retry storms in long runs.
    """

    seed: Optional[int] = None
    by_kind: Dict[str, FaultRule] = field(default_factory=dict)
    node_faults: Dict[int, NodeFault] = field(default_factory=dict)
    max_drops: Optional[int] = None

    # ------------------------------------------------------------------
    @classmethod
    def protocol_chaos(
        cls,
        *,
        seed: Optional[int] = None,
        drop: float = 0.05,
        duplicate: float = 0.05,
        delay: float = 0.05,
        delay_us: Tuple[float, float] = (10.0, 200.0),
        reorder: float = 0.0,
        kinds: Tuple[str, ...] = PROTOCOL_KINDS,
        node_faults: Optional[Dict[int, NodeFault]] = None,
        max_drops: Optional[int] = None,
    ) -> "FaultPlan":
        """The canonical chaos preset: one rule over the protocol kinds."""
        rule = FaultRule(drop=drop, duplicate=duplicate, delay=delay,
                         delay_us=delay_us, reorder=reorder)
        return cls(seed=seed, by_kind={k: rule for k in kinds},
                   node_faults=dict(node_faults or {}), max_drops=max_drops)

    @property
    def empty(self) -> bool:
        return not self.by_kind and not self.node_faults


@dataclass(frozen=True)
class FaultEvent:
    """One ledger entry: a fault that was actually injected."""

    time_us: float
    action: str  # "drop" | "duplicate" | "delay" | "reorder"
    kind: str
    src: int
    dst: int
    extra_us: float = 0.0


class FaultInjector:
    """Applies a :class:`FaultPlan` to one machine's packet stream.

    All sampling happens on the packet send path in simulation order,
    from a single substream derived from the fault seed — identical
    runs draw identical faults.  The injector keeps a full ledger of
    injected faults plus counter cells the quiescence probe and the
    invariant checker use to balance the packet books:

    ``sends + duplicated - dropped == delivered`` at quiescence.
    """

    def __init__(self, plan: FaultPlan, seed: int, stats: StatsRegistry) -> None:
        self.plan = plan
        self.seed = plan.seed if plan.seed is not None else seed
        self.rng = random.Random(_derive_seed(self.seed, "faults"))
        self.ledger: List[FaultEvent] = []
        self._rules = dict(plan.by_kind)
        self._drop_remaining: Dict[str, int] = {
            k: r.drop_count for k, r in self._rules.items() if r.drop_count
        }
        self._drops_left = (
            plan.max_drops if plan.max_drops is not None else float("inf")
        )
        # Node-fault lookup tables (empty dicts keep the common case to
        # two failed .get probes per faulted packet).
        self._stalls: Dict[int, Tuple[float, float]] = {
            n: (f.stall_at_us, f.stall_at_us + f.stall_for_us)
            for n, f in plan.node_faults.items() if f.stall_for_us > 0
        }
        self._slow: Dict[int, float] = {
            n: f.slow_factor
            for n, f in plan.node_faults.items() if f.slow_factor != 1.0
        }
        self.c_dropped = stats.cell("faults.dropped_packets")
        self.c_duplicated = stats.cell("faults.dup_packets")
        self.c_delayed = stats.cell("faults.delayed_packets")
        self.c_reordered = stats.cell("faults.reordered_packets")
        self.c_stalled = stats.cell("faults.stall_shifted_packets")
        # Faulted reliability acks need their own books: the quiescence
        # probe excludes in-flight ack packets (see HalRuntime.quiescent
        # and repro.am.reliable), so their drops/dups must be visible to
        # it.  The literal mirrors repro.am.reliable.ACK_HANDLER — the
        # sim layer cannot import the am layer.
        self.c_ack_dropped = stats.cell("faults.dropped_acks")
        self.c_ack_duplicated = stats.cell("faults.dup_acks")

    # ------------------------------------------------------------------
    def rule_for(self, kind: str) -> Optional[FaultRule]:
        return self._rules.get(kind)

    def sample(self, rule: FaultRule, kind: str, src: int, dst: int,
               now: float) -> List[float]:
        """Decide one packet's fate.  Returns the extra latency of each
        delivered copy: ``[]`` dropped, ``[x]`` delivered once with
        ``x`` extra microseconds, ``[x, y]`` duplicated."""
        # Deterministic drop-the-first-N mode short-circuits sampling.
        left = self._drop_remaining.get(kind)
        if left:
            self._drop_remaining[kind] = left - 1
            self._record("drop", kind, src, dst, now)
            return []
        if rule.drop_count:
            return [0.0]
        rng = self.rng
        if rule.drop and self._drops_left > 0 and rng.random() < rule.drop:
            self._drops_left -= 1
            self._record("drop", kind, src, dst, now)
            return []
        extra = 0.0
        if rule.delay and rng.random() < rule.delay:
            extra = rng.uniform(*rule.delay_us)
            self._record("delay", kind, src, dst, now, extra)
        if rule.reorder and rng.random() < rule.reorder:
            shove = rng.uniform(0.0, rule.reorder_window_us)
            extra += shove
            self._record("reorder", kind, src, dst, now, shove)
        if rule.duplicate and rng.random() < rule.duplicate:
            echo = extra + rng.uniform(*rule.delay_us)
            self._record("duplicate", kind, src, dst, now, echo)
            return [extra, echo]
        return [extra]

    def _record(self, action: str, kind: str, src: int, dst: int,
                now: float, extra: float = 0.0) -> None:
        cell = {
            "drop": self.c_dropped,
            "duplicate": self.c_duplicated,
            "delay": self.c_delayed,
            "reorder": self.c_reordered,
        }[action]
        cell.n += 1
        if kind == "__rel_ack__":
            if action == "drop":
                self.c_ack_dropped.n += 1
            elif action == "duplicate":
                self.c_ack_duplicated.n += 1
        self.ledger.append(FaultEvent(now, action, kind, src, dst, extra))

    # ------------------------------------------------------------------
    # whole-node faults
    # ------------------------------------------------------------------
    def node_faulted(self, dst: int) -> bool:
        """True if ``dst`` has a stall window or a slow drain."""
        return dst in self._stalls or dst in self._slow

    def stall_shift(self, dst: int, arrive: float) -> float:
        """Shift an arrival time past ``dst``'s stall window, if any."""
        window = self._stalls.get(dst)
        if window is not None and window[0] <= arrive < window[1]:
            self.c_stalled.n += 1
            return window[1]
        return arrive

    def slow_factor(self, dst: int) -> float:
        return self._slow.get(dst, 1.0)

    # ------------------------------------------------------------------
    def drops_injected(self) -> int:
        return self.c_dropped.n

    def summary(self) -> Dict[str, int]:
        return {
            "dropped": self.c_dropped.n,
            "duplicated": self.c_duplicated.n,
            "delayed": self.c_delayed.n,
            "reordered": self.c_reordered.n,
            "stall_shifted": self.c_stalled.n,
        }
