"""Backwards-compatible re-export.

Topology describes the partition's interconnect shape, which both
execution backends and the broadcast layer consume, so it moved to the
layer-neutral :mod:`repro.topology`.  This shim keeps historical
imports (``from repro.sim.topology import make_topology``) working.
"""

from repro.topology import (  # noqa: F401
    FatTreeTopology,
    HypercubeTopology,
    Topology,
    make_topology,
)

__all__ = [
    "FatTreeTopology",
    "HypercubeTopology",
    "Topology",
    "make_topology",
]
