"""Counters and timing accumulators used across the runtime.

A :class:`StatsRegistry` is shared by the machine, the AM layer and
the runtime kernels.  Everything is plain dictionaries so tests and
benchmark harnesses can assert on exact counts.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple


@dataclass
class TimerStat:
    """Aggregate of a repeatedly measured duration (microseconds)."""

    count: int = 0
    total_us: float = 0.0
    min_us: float = float("inf")
    max_us: float = 0.0

    def record(self, us: float) -> None:
        self.count += 1
        self.total_us += us
        if us < self.min_us:
            self.min_us = us
        if us > self.max_us:
            self.max_us = us

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0


class StatsRegistry:
    """Hierarchical counters: ``stats.incr("am.sends")`` etc."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = defaultdict(int)
        self.timers: Dict[str, TimerStat] = defaultdict(TimerStat)
        self.gauges: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def incr(self, name: str, by: int = 1) -> None:
        self.counters[name] += by

    def record_time(self, name: str, us: float) -> None:
        self.timers[name].record(us)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def max_gauge(self, name: str, value: float) -> None:
        if value > self.gauges.get(name, float("-inf")):
            self.gauges[name] = value

    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def timer(self, name: str) -> TimerStat:
        return self.timers[name]

    def snapshot(self) -> Dict[str, float]:
        """Flat snapshot suitable for printing or diffing in tests."""
        out: Dict[str, float] = {}
        for k, v in sorted(self.counters.items()):
            out[f"counter.{k}"] = float(v)
        for k, t in sorted(self.timers.items()):
            out[f"timer.{k}.count"] = float(t.count)
            out[f"timer.{k}.mean_us"] = t.mean_us
        for k, v in sorted(self.gauges.items()):
            out[f"gauge.{k}"] = v
        return out

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()
        self.gauges.clear()

    def table(self, prefixes: Iterable[str] = ()) -> str:
        """Render selected counters as an aligned text table."""
        rows: list[Tuple[str, str]] = []
        for k in sorted(self.counters):
            if not prefixes or any(k.startswith(p) for p in prefixes):
                rows.append((k, str(self.counters[k])))
        if not rows:
            return "(no counters)"
        width = max(len(k) for k, _ in rows)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)
