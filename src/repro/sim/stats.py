"""Counters and timing accumulators used across the runtime.

A :class:`StatsRegistry` is shared by the machine, the AM layer and
the runtime kernels.

Counters are mutable :class:`Counter` cells so hot paths can bind a
cell once (``cell = stats.cell("am.sends")`` at construction) and then
bump ``cell.n += 1`` per message — no dotted-string hashing, no method
call.  :meth:`incr` remains for cold paths.  :meth:`reset` zeroes
cells *in place* so bound handles stay live across benchmark phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple


class Counter:
    """A single mutable counter cell; hot paths bump ``.n`` directly."""

    __slots__ = ("n",)

    def __init__(self, n: int = 0) -> None:
        self.n = n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.n})"


@dataclass
class TimerStat:
    """Aggregate of a repeatedly measured duration (microseconds)."""

    count: int = 0
    total_us: float = 0.0
    min_us: float = float("inf")
    max_us: float = 0.0

    def record(self, us: float) -> None:
        self.count += 1
        self.total_us += us
        if us < self.min_us:
            self.min_us = us
        if us > self.max_us:
            self.max_us = us

    def _zero(self) -> None:
        """In-place reset so cached handles survive a registry reset."""
        self.count = 0
        self.total_us = 0.0
        self.min_us = float("inf")
        self.max_us = 0.0

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0


class StatsRegistry:
    """Hierarchical counters: ``stats.incr("am.sends")`` etc."""

    def __init__(self) -> None:
        self._cells: Dict[str, Counter] = {}
        self.timers: Dict[str, TimerStat] = {}
        self.gauges: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def cell(self, name: str) -> Counter:
        """The mutable cell behind ``name``, created on first use.
        Bind once, bump ``cell.n`` on the hot path."""
        c = self._cells.get(name)
        if c is None:
            c = self._cells[name] = Counter()
        return c

    def incr(self, name: str, by: int = 1) -> None:
        c = self._cells.get(name)
        if c is None:
            c = self._cells[name] = Counter()
        c.n += by

    def record_time(self, name: str, us: float) -> None:
        self.timer(name).record(us)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def max_gauge(self, name: str, value: float) -> None:
        if value > self.gauges.get(name, float("-inf")):
            self.gauges[name] = value

    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        c = self._cells.get(name)
        return c.n if c is not None else 0

    def timer(self, name: str) -> TimerStat:
        """The (mutable) timer aggregate for ``name``; safe to cache."""
        t = self.timers.get(name)
        if t is None:
            t = self.timers[name] = TimerStat()
        return t

    @property
    def counters(self) -> Dict[str, int]:
        """Snapshot dict of nonzero counters (debugging convenience;
        pre-bound but untouched cells are omitted)."""
        return {k: c.n for k, c in self._cells.items() if c.n}

    def snapshot(self) -> Dict[str, float]:
        """Flat snapshot suitable for printing or diffing in tests.
        Cells and timers that were bound but never bumped are omitted,
        so pre-binding handles does not perturb snapshots."""
        out: Dict[str, float] = {}
        for k, c in sorted(self._cells.items()):
            if c.n:
                out[f"counter.{k}"] = float(c.n)
        for k, t in sorted(self.timers.items()):
            if t.count:
                out[f"timer.{k}.count"] = float(t.count)
                out[f"timer.{k}.mean_us"] = t.mean_us
        for k, v in sorted(self.gauges.items()):
            out[f"gauge.{k}"] = v
        return out

    def reset(self) -> None:
        """Zero everything in place; cached cell/timer handles stay
        bound (they read 0 afterwards)."""
        for c in self._cells.values():
            c.n = 0
        for t in self.timers.values():
            t._zero()
        self.gauges.clear()

    def table(self, prefixes: Iterable[str] = ()) -> str:
        """Render selected counters as an aligned text table."""
        rows: list[Tuple[str, str]] = []
        for k in sorted(self._cells):
            n = self._cells[k].n
            if n and (not prefixes or any(k.startswith(p) for p in prefixes)):
                rows.append((k, str(n)))
        if not rows:
            return "(no counters)"
        width = max(len(k) for k, _ in rows)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)
