"""Backwards-compatible re-export.

The statistics registry is consumed by every layer (AM endpoints,
runtime kernels, both execution backends), so it moved to the
layer-neutral :mod:`repro.stats`.  This shim keeps historical imports
(``from repro.sim.stats import StatsRegistry``) working.
"""

from repro.stats import (  # noqa: F401
    Counter,
    Histogram,
    StatsRegistry,
    TimerStat,
)

__all__ = ["Counter", "Histogram", "StatsRegistry", "TimerStat"]
