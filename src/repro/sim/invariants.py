"""Post-run invariant checking for (possibly fault-injected) runs.

The paper's correctness argument for relaxed-consistency name tables is
*eventual*: any individual table entry may be stale, but the delivery
algorithm, the FIR protocol and the back-patching traffic together
guarantee that every message reaches its actor and every forwarding
chain leads to the truth.  Fault injection stresses exactly that
argument, so after a run we audit it directly:

1. **drained** — the event heap is empty (the run actually finished);
2. **packet conservation** — every injected packet was delivered,
   except exactly those the fault plan dropped, plus exactly those it
   duplicated: ``am.sends + faults.dup - faults.dropped == am.delivered``.
   Nothing was *silently* lost below the injected-fault budget;
3. **no retained work** — no unacked reliable envelopes, no bulk
   transfers mid-protocol, no parked FIR chases, no deferred messages,
   no transient descriptor states, no ready-but-undelivered mail;
4. **forwarding-chain convergence** — from *every* node, following
   best-guess pointers for every known mail address terminates at the
   actor's true location within a bounded number of hops (no cycles,
   no dangling trails);
5. **birthplace resolution** — the home node encoded in each live
   actor's mail address can still route to it (the paper's guarantee
   that the address itself is always a sufficient first guess).

``check_invariants(runtime)`` raises :class:`InvariantViolation` with
every failure listed, or returns a small report dict for display.

On a **distributed** machine (the mp backend) the kernels live in
worker processes, so the audit splits: each worker computes its own
retained-work problems and a picklable name-table slice
(:func:`kernel_audit`, shipped over the control pipe by the machine's
``audit()``), and the driver chases forwarding chains and birthplace
resolution over the merged tables.  Conservation arithmetic is gated
on ``machine.counters_exact`` rather than determinism: per-process
counters are single-threaded and merged after quiescence, so the books
are exact even though the interleaving is not reproducible.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

from repro.errors import InvariantViolation
from repro.runtime.names import DescState

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.system import HalRuntime

#: Transient descriptor states that must not survive quiescence.
_TRANSIENT = (
    DescState.RESOLVING,
    DescState.IN_TRANSIT,
    DescState.AWAITING_CREATION,
)


def _true_locations(runtime: "HalRuntime") -> Dict:
    """Ground truth: mail address -> node currently hosting the actor."""
    where: Dict = {}
    for kernel in runtime.kernels:
        for desc in kernel.table:
            if desc.is_local and desc.actor is not None and desc.key is not None:
                prev = where.get(desc.key)
                if prev is not None:
                    raise InvariantViolation(
                        f"{desc.key!r} is resident on BOTH node {prev} and "
                        f"node {kernel.node_id} (duplicate actor)"
                    )
                where[desc.key] = kernel.node_id
    return where


def _chase(runtime: "HalRuntime", start_node: int, key, max_hops: int) -> int:
    """Follow best-guess pointers from ``start_node`` until a node
    hosts the actor.  Returns the hop count; raises on cycles, dangling
    trails or unbounded chains.  A node with no entry falls back to the
    address's encoded home node — exactly what its delivery algorithm
    would do."""
    node = start_node
    visited = []
    for hops in range(max_hops + 1):
        kernel = runtime.kernels[node]
        desc = kernel.table.get(key)
        if desc is not None and desc.is_local:
            return hops
        visited.append(node)
        nxt = desc.remote_node if desc is not None else key.home_node()
        if nxt == node:
            raise InvariantViolation(
                f"forwarding chain for {key!r} from node {start_node} "
                f"dead-ends at node {node} (self-pointer, no actor)"
            )
        node = nxt
    raise InvariantViolation(
        f"forwarding chain for {key!r} from node {start_node} did not "
        f"converge within {max_hops} hops (visited {visited})"
    )


def kernel_retained_work(kernel) -> List[str]:
    """Check 3 for one kernel: every way a finished node can still be
    holding work.  Runs in whichever process owns the kernel."""
    problems: List[str] = []
    nid = kernel.node_id
    rel = kernel.reliable
    if rel is not None and rel.pending_count:
        problems.append(
            f"node {nid}: {rel.pending_count} unacked reliable "
            f"envelopes {rel.unacked()}"
        )
    if kernel.bulk.pending_outgoing or kernel.bulk.pending_inbound:
        problems.append(
            f"node {nid}: bulk transfers mid-protocol "
            f"(out={kernel.bulk.pending_outgoing}, "
            f"in={kernel.bulk.pending_inbound})"
        )
    if kernel.dispatcher.ready:
        problems.append(f"node {nid}: dispatcher still has ready work")
    for desc in kernel.table:
        what = f"node {nid}, {desc.key!r}"
        if desc.state in _TRANSIENT:
            problems.append(f"{what}: descriptor stuck {desc.state.name}")
        if desc.deferred:
            problems.append(
                f"{what}: {len(desc.deferred)} deferred messages "
                "never released"
            )
        if desc.waiting_firs:
            problems.append(
                f"{what}: {len(desc.waiting_firs)} FIR chases parked "
                "forever"
            )
        actor = desc.actor
        if actor is not None and actor.mailbox.ready_count:
            problems.append(
                f"{what}: actor has {actor.mailbox.ready_count} ready "
                "but unprocessed messages"
            )
    return problems


def kernel_audit(kernel) -> Dict:
    """One kernel's picklable audit slice, for distributed backends:
    the retained-work problems plus the name-table view the driver
    needs to chase forwarding chains across processes.  Table entries
    are ``key -> (is_local, remote_node, resident)``; mail-address
    keys pickle (they already travel in mp snapshots)."""
    table: Dict = {}
    for desc in kernel.table:
        if desc.key is None:
            continue
        table[desc.key] = (
            bool(desc.is_local),
            desc.remote_node,
            bool(desc.is_local and desc.actor is not None),
        )
    return {
        "problems": kernel_retained_work(kernel),
        "reliable": kernel.reliable is not None,
        # Unacked envelopes right now.  Chatter (steal polls/denies) is
        # excluded from quiescence counting, so its reliable envelopes
        # can be created *behind* the token and still be mid-retransmit
        # when the ring certifies; the driver settle-waits on this
        # before judging (transient residue self-heals, persistent
        # residue is the real violation kernel_retained_work reports).
        "rel_pending": (
            kernel.reliable.pending_count
            if kernel.reliable is not None else 0
        ),
        "table": table,
    }


def check_invariants(runtime: "HalRuntime", *, drain: bool = True) -> Dict:
    """Audit a finished run; raise :class:`InvariantViolation` listing
    every failed check, or return a report dict.

    ``drain=True`` (the default) first runs the simulator to empty the
    event heap — scenarios that stop on a predicate (e.g. ``call``)
    legitimately leave trailing acks and watchdog timers in flight.
    """
    if drain:
        runtime.run()
    machine = runtime.machine
    if getattr(machine, "distributed", False):
        return _check_distributed(runtime)
    problems: List[str] = []

    # 1. drained
    pending = machine.pending
    if pending:
        problems.append(f"event heap not drained: {pending} events pending")

    # 2. packet conservation
    stats = machine.stats
    sends = stats.counter("am.sends")
    delivered = stats.counter("am.delivered")
    dropped = stats.counter("faults.dropped_packets")
    duplicated = stats.counter("faults.dup_packets")
    imbalance = sends + duplicated - dropped - delivered
    # Counter arithmetic is only exact on a deterministic backend:
    # the threaded machine's counters are incremented racily from
    # worker threads (diagnostics, not books), so the conservation
    # audit holds only where events fire one at a time.
    if imbalance and machine.deterministic:
        problems.append(
            f"packet books do not balance: sends({sends}) + dup({duplicated})"
            f" - dropped({dropped}) - delivered({delivered}) = {imbalance}; "
            "a message was lost outside the injected-fault budget"
        )

    # 2b. steal-protocol conservation — every req/grant/deny sent was
    # received.  The reliable sublayer retransmits dropped steal
    # packets until acked, so the books balance even under fault
    # injection; without it a fault plan may legitimately eat them,
    # and on a non-deterministic backend the counters are diagnostics.
    steal_sent = stats.counter("steal.proto_sent")
    steal_recv = stats.counter("steal.proto_recv")
    reliable_everywhere = runtime.kernels and all(
        k.reliable is not None for k in runtime.kernels
    )
    if (
        steal_sent != steal_recv
        and machine.deterministic
        and (machine.faults is None or reliable_everywhere)
    ):
        problems.append(
            f"steal-protocol books do not balance: proto_sent({steal_sent})"
            f" != proto_recv({steal_recv}); a req/grant/deny packet was "
            "counted on only one side"
        )

    # 3. no retained work
    for kernel in runtime.kernels:
        problems.extend(kernel_retained_work(kernel))

    # 4 + 5. forwarding-chain convergence and birthplace resolution
    chains = 0
    max_chain = 0
    try:
        where = _true_locations(runtime)
    except InvariantViolation as exc:
        problems.append(str(exc))
        where = {}
    # Every migration can add one link, but back-patching keeps real
    # chains short; the bound only needs to be generous, not tight.
    max_hops = 2 * runtime.num_nodes + 8
    # The strict form of the birthplace check (it knows the actor's
    # location *directly*) holds only when the back-patch hints were
    # actually deliverable: with descriptor caching off they are
    # ignored, and a fault plan may legitimately have dropped them
    # (they are expendable).  Convergence is still required either way.
    hints_reliable = runtime.config.descriptor_caching and not (
        machine.faults is not None
        and any(
            ev.action == "drop" and ev.kind == "cache_addr"
            for ev in machine.faults.ledger
        )
    )
    for key in where:
        for kernel in runtime.kernels:
            try:
                hops = _chase(runtime, kernel.node_id, key, max_hops)
            except InvariantViolation as exc:
                problems.append(str(exc))
                continue
            chains += 1
            if hops > max_chain:
                max_chain = hops
        try:
            home_hops = _chase(runtime, key.home_node(), key, max_hops)
        except InvariantViolation as exc:
            problems.append(f"birthplace: {exc}")
            home_hops = None
        if hints_reliable and home_hops is not None and home_hops > 1:
            # After quiescence the birthplace must know the actor's
            # location directly: migration acks and cache_addr traffic
            # back-patch it (§4.3).  One hop = it points at the truth;
            # zero = the actor is home.
            problems.append(
                f"birthplace of {key!r} (node {key.home_node()}) was "
                f"never back-patched: {home_hops} hops to the actor"
            )

    if problems:
        raise InvariantViolation(
            f"{len(problems)} invariant violation(s):\n  - "
            + "\n  - ".join(problems)
        )
    return {
        "actors": len(where),
        "chains_checked": chains,
        "max_chain_hops": max_chain,
        "packets": {
            "sends": sends,
            "delivered": delivered,
            "dropped": dropped,
            "duplicated": duplicated,
        },
        "steal_packets": {"sent": steal_sent, "recv": steal_recv},
        "faults_injected": (
            machine.faults.summary() if machine.faults is not None else {}
        ),
    }


def _check_distributed(runtime: "HalRuntime") -> Dict:
    """The same audit against a process-per-node machine.

    The driver holds no kernels, so checks 3-5 run against the audit
    slices ``machine.audit()`` collects from the workers: per-node
    retained-work problems (computed in-process against the real
    kernels) and per-node name tables, merged here for the chain
    chases.  Conservation runs on the merged registries —
    ``machine.counters_exact`` declares them trustworthy (each
    worker's counters are single-threaded, and the merge happens
    after quiescence, so no increment is ever racing the read)."""
    machine = runtime.machine
    problems: List[str] = []

    # 1. drained
    pending = machine.pending
    if pending:
        problems.append(f"event heap not drained: {pending} events pending")

    reports = machine.audit()  # also refreshes the merged stats
    by_node = {r["node"]: r for r in reports}
    faults_on = getattr(machine, "fault_plan", None) is not None

    # 2. packet conservation (merged exact counters)
    stats = machine.stats
    sends = stats.counter("am.sends")
    delivered = stats.counter("am.delivered")
    dropped = stats.counter("faults.dropped_packets")
    duplicated = stats.counter("faults.dup_packets")
    imbalance = sends + duplicated - dropped - delivered
    counters_exact = machine.deterministic or getattr(
        machine, "counters_exact", False
    )
    if imbalance and counters_exact:
        problems.append(
            f"packet books do not balance: sends({sends}) + dup({duplicated})"
            f" - dropped({dropped}) - delivered({delivered}) = {imbalance}; "
            "a message was lost outside the injected-fault budget"
        )

    # 2b. steal-protocol conservation (same gate as in-process, with
    # "reliable everywhere" reported by the workers themselves)
    steal_sent = stats.counter("steal.proto_sent")
    steal_recv = stats.counter("steal.proto_recv")
    reliable_everywhere = bool(reports) and all(
        r["reliable"] for r in reports
    )
    if (
        steal_sent != steal_recv
        and counters_exact
        and (not faults_on or reliable_everywhere)
    ):
        problems.append(
            f"steal-protocol books do not balance: proto_sent({steal_sent})"
            f" != proto_recv({steal_recv}); a req/grant/deny packet was "
            "counted on only one side"
        )

    # 3. no retained work (computed worker-side)
    for r in reports:
        problems.extend(r["problems"])

    # 4 + 5. chain convergence + birthplace over the merged tables
    where: Dict = {}
    for r in reports:
        for key, (_is_local, _remote, resident) in r["table"].items():
            if not resident:
                continue
            prev = where.get(key)
            if prev is not None:
                problems.append(
                    f"{key!r} is resident on BOTH node {prev} and "
                    f"node {r['node']} (duplicate actor)"
                )
            else:
                where[key] = r["node"]

    def chase(start_node: int, key) -> int:
        node = start_node
        visited: List[int] = []
        for hops in range(max_hops + 1):
            entry = by_node[node]["table"].get(key)
            if entry is not None and entry[0]:
                return hops
            visited.append(node)
            nxt = (
                entry[1]
                if entry is not None and entry[1] is not None
                else key.home_node()
            )
            if nxt == node:
                raise InvariantViolation(
                    f"forwarding chain for {key!r} from node {start_node} "
                    f"dead-ends at node {node} (self-pointer, no actor)"
                )
            node = nxt
        raise InvariantViolation(
            f"forwarding chain for {key!r} from node {start_node} did not "
            f"converge within {max_hops} hops (visited {visited})"
        )

    chains = 0
    max_chain = 0
    max_hops = 2 * runtime.num_nodes + 8
    ledger = [ev for r in reports for ev in r["ledger"]]
    hints_reliable = runtime.config.descriptor_caching and not any(
        ev.action == "drop" and ev.kind == "cache_addr" for ev in ledger
    )
    for key in where:
        for nid in by_node:
            try:
                hops = chase(nid, key)
            except InvariantViolation as exc:
                problems.append(str(exc))
                continue
            chains += 1
            if hops > max_chain:
                max_chain = hops
        try:
            home_hops = chase(key.home_node(), key)
        except InvariantViolation as exc:
            problems.append(f"birthplace: {exc}")
            home_hops = None
        if hints_reliable and home_hops is not None and home_hops > 1:
            problems.append(
                f"birthplace of {key!r} (node {key.home_node()}) was "
                f"never back-patched: {home_hops} hops to the actor"
            )

    if problems:
        raise InvariantViolation(
            f"{len(problems)} invariant violation(s):\n  - "
            + "\n  - ".join(problems)
        )
    summary: Dict[str, int] = {}
    for r in reports:
        for k, v in r["fault_summary"].items():
            summary[k] = summary.get(k, 0) + v
    return {
        "actors": len(where),
        "chains_checked": chains,
        "max_chain_hops": max_chain,
        "packets": {
            "sends": sends,
            "delivered": delivered,
            "dropped": dropped,
            "duplicated": duplicated,
        },
        "steal_packets": {"sent": steal_sent, "recv": steal_recv},
        "faults_injected": summary,
    }
