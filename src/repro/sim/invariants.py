"""Post-run invariant checking for (possibly fault-injected) runs.

The paper's correctness argument for relaxed-consistency name tables is
*eventual*: any individual table entry may be stale, but the delivery
algorithm, the FIR protocol and the back-patching traffic together
guarantee that every message reaches its actor and every forwarding
chain leads to the truth.  Fault injection stresses exactly that
argument, so after a run we audit it directly:

1. **drained** — the event heap is empty (the run actually finished);
2. **packet conservation** — every injected packet was delivered,
   except exactly those the fault plan dropped, plus exactly those it
   duplicated: ``am.sends + faults.dup - faults.dropped == am.delivered``.
   Nothing was *silently* lost below the injected-fault budget;
3. **no retained work** — no unacked reliable envelopes, no bulk
   transfers mid-protocol, no parked FIR chases, no deferred messages,
   no transient descriptor states, no ready-but-undelivered mail;
4. **forwarding-chain convergence** — from *every* node, following
   best-guess pointers for every known mail address terminates at the
   actor's true location within a bounded number of hops (no cycles,
   no dangling trails);
5. **birthplace resolution** — the home node encoded in each live
   actor's mail address can still route to it (the paper's guarantee
   that the address itself is always a sufficient first guess).

``check_invariants(runtime)`` raises :class:`InvariantViolation` with
every failure listed, or returns a small report dict for display.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

from repro.errors import InvariantViolation
from repro.runtime.names import DescState

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.system import HalRuntime

#: Transient descriptor states that must not survive quiescence.
_TRANSIENT = (
    DescState.RESOLVING,
    DescState.IN_TRANSIT,
    DescState.AWAITING_CREATION,
)


def _true_locations(runtime: "HalRuntime") -> Dict:
    """Ground truth: mail address -> node currently hosting the actor."""
    where: Dict = {}
    for kernel in runtime.kernels:
        for desc in kernel.table:
            if desc.is_local and desc.actor is not None and desc.key is not None:
                prev = where.get(desc.key)
                if prev is not None:
                    raise InvariantViolation(
                        f"{desc.key!r} is resident on BOTH node {prev} and "
                        f"node {kernel.node_id} (duplicate actor)"
                    )
                where[desc.key] = kernel.node_id
    return where


def _chase(runtime: "HalRuntime", start_node: int, key, max_hops: int) -> int:
    """Follow best-guess pointers from ``start_node`` until a node
    hosts the actor.  Returns the hop count; raises on cycles, dangling
    trails or unbounded chains.  A node with no entry falls back to the
    address's encoded home node — exactly what its delivery algorithm
    would do."""
    node = start_node
    visited = []
    for hops in range(max_hops + 1):
        kernel = runtime.kernels[node]
        desc = kernel.table.get(key)
        if desc is not None and desc.is_local:
            return hops
        visited.append(node)
        nxt = desc.remote_node if desc is not None else key.home_node()
        if nxt == node:
            raise InvariantViolation(
                f"forwarding chain for {key!r} from node {start_node} "
                f"dead-ends at node {node} (self-pointer, no actor)"
            )
        node = nxt
    raise InvariantViolation(
        f"forwarding chain for {key!r} from node {start_node} did not "
        f"converge within {max_hops} hops (visited {visited})"
    )


def check_invariants(runtime: "HalRuntime", *, drain: bool = True) -> Dict:
    """Audit a finished run; raise :class:`InvariantViolation` listing
    every failed check, or return a report dict.

    ``drain=True`` (the default) first runs the simulator to empty the
    event heap — scenarios that stop on a predicate (e.g. ``call``)
    legitimately leave trailing acks and watchdog timers in flight.
    """
    if drain:
        runtime.run()
    problems: List[str] = []
    machine = runtime.machine

    # 1. drained
    pending = machine.pending
    if pending:
        problems.append(f"event heap not drained: {pending} events pending")

    # 2. packet conservation
    stats = machine.stats
    sends = stats.counter("am.sends")
    delivered = stats.counter("am.delivered")
    dropped = stats.counter("faults.dropped_packets")
    duplicated = stats.counter("faults.dup_packets")
    imbalance = sends + duplicated - dropped - delivered
    # Counter arithmetic is only exact on a deterministic backend:
    # the threaded machine's counters are incremented racily from
    # worker threads (diagnostics, not books), so the conservation
    # audit holds only where events fire one at a time.
    if imbalance and machine.deterministic:
        problems.append(
            f"packet books do not balance: sends({sends}) + dup({duplicated})"
            f" - dropped({dropped}) - delivered({delivered}) = {imbalance}; "
            "a message was lost outside the injected-fault budget"
        )

    # 2b. steal-protocol conservation — every req/grant/deny sent was
    # received.  The reliable sublayer retransmits dropped steal
    # packets until acked, so the books balance even under fault
    # injection; without it a fault plan may legitimately eat them,
    # and on a non-deterministic backend the counters are diagnostics.
    steal_sent = stats.counter("steal.proto_sent")
    steal_recv = stats.counter("steal.proto_recv")
    reliable_everywhere = runtime.kernels and all(
        k.reliable is not None for k in runtime.kernels
    )
    if (
        steal_sent != steal_recv
        and machine.deterministic
        and (machine.faults is None or reliable_everywhere)
    ):
        problems.append(
            f"steal-protocol books do not balance: proto_sent({steal_sent})"
            f" != proto_recv({steal_recv}); a req/grant/deny packet was "
            "counted on only one side"
        )

    # 3. no retained work
    for kernel in runtime.kernels:
        nid = kernel.node_id
        rel = kernel.reliable
        if rel is not None and rel.pending_count:
            problems.append(
                f"node {nid}: {rel.pending_count} unacked reliable "
                f"envelopes {rel.unacked()}"
            )
        if kernel.bulk.pending_outgoing or kernel.bulk.pending_inbound:
            problems.append(
                f"node {nid}: bulk transfers mid-protocol "
                f"(out={kernel.bulk.pending_outgoing}, "
                f"in={kernel.bulk.pending_inbound})"
            )
        if kernel.dispatcher.ready:
            problems.append(f"node {nid}: dispatcher still has ready work")
        for desc in kernel.table:
            what = f"node {nid}, {desc.key!r}"
            if desc.state in _TRANSIENT:
                problems.append(
                    f"{what}: descriptor stuck {desc.state.name}"
                )
            if desc.deferred:
                problems.append(
                    f"{what}: {len(desc.deferred)} deferred messages "
                    "never released"
                )
            if desc.waiting_firs:
                problems.append(
                    f"{what}: {len(desc.waiting_firs)} FIR chases parked "
                    "forever"
                )
            actor = desc.actor
            if actor is not None and actor.mailbox.ready_count:
                problems.append(
                    f"{what}: actor has {actor.mailbox.ready_count} ready "
                    "but unprocessed messages"
                )

    # 4 + 5. forwarding-chain convergence and birthplace resolution
    chains = 0
    max_chain = 0
    try:
        where = _true_locations(runtime)
    except InvariantViolation as exc:
        problems.append(str(exc))
        where = {}
    # Every migration can add one link, but back-patching keeps real
    # chains short; the bound only needs to be generous, not tight.
    max_hops = 2 * runtime.num_nodes + 8
    # The strict form of the birthplace check (it knows the actor's
    # location *directly*) holds only when the back-patch hints were
    # actually deliverable: with descriptor caching off they are
    # ignored, and a fault plan may legitimately have dropped them
    # (they are expendable).  Convergence is still required either way.
    hints_reliable = runtime.config.descriptor_caching and not (
        machine.faults is not None
        and any(
            ev.action == "drop" and ev.kind == "cache_addr"
            for ev in machine.faults.ledger
        )
    )
    for key in where:
        for kernel in runtime.kernels:
            try:
                hops = _chase(runtime, kernel.node_id, key, max_hops)
            except InvariantViolation as exc:
                problems.append(str(exc))
                continue
            chains += 1
            if hops > max_chain:
                max_chain = hops
        try:
            home_hops = _chase(runtime, key.home_node(), key, max_hops)
        except InvariantViolation as exc:
            problems.append(f"birthplace: {exc}")
            home_hops = None
        if hints_reliable and home_hops is not None and home_hops > 1:
            # After quiescence the birthplace must know the actor's
            # location directly: migration acks and cache_addr traffic
            # back-patch it (§4.3).  One hop = it points at the truth;
            # zero = the actor is home.
            problems.append(
                f"birthplace of {key!r} (node {key.home_node()}) was "
                f"never back-patched: {home_hops} hops to the actor"
            )

    if problems:
        raise InvariantViolation(
            f"{len(problems)} invariant violation(s):\n  - "
            + "\n  - ".join(problems)
        )
    return {
        "actors": len(where),
        "chains_checked": chains,
        "max_chain_hops": max_chain,
        "packets": {
            "sends": sends,
            "delivered": delivered,
            "dropped": dropped,
            "duplicated": duplicated,
        },
        "steal_packets": {"sent": steal_sent, "recv": steal_recv},
        "faults_injected": (
            machine.faults.summary() if machine.faults is not None else {}
        ),
    }
