"""Discrete-event simulated multicomputer (the CM-5 substitute).

This package provides the machine substrate everything else runs on:

- :mod:`repro.sim.engine` — deterministic event heap and per-node
  virtual clocks;
- :mod:`repro.sim.topology` — fat-tree / hypercube coordinates and the
  hypercube-like minimum spanning trees used for broadcast;
- :mod:`repro.sim.network` — contention-aware interconnect model;
- :mod:`repro.sim.machine` — partition manager + processing elements;
- :mod:`repro.sim.rng` — named deterministic random substreams;
- :mod:`repro.sim.stats` / :mod:`repro.sim.trace` — measurement.
"""

from repro.sim.engine import Event, Simulator, SimNode
from repro.sim.machine import Machine
from repro.sim.network import Network
from repro.sim.rng import RngStreams
from repro.sim.stats import Histogram, StatsRegistry
from repro.sim.timeline import chrome_trace, spans_jsonl
from repro.sim.topology import FatTreeTopology, HypercubeTopology, make_topology
from repro.sim.trace import (
    NullSpanRecorder,
    NullTraceLog,
    Span,
    SpanRecorder,
    TraceCtx,
    TraceLog,
)

__all__ = [
    "Event",
    "Simulator",
    "SimNode",
    "Machine",
    "Network",
    "RngStreams",
    "StatsRegistry",
    "Histogram",
    "FatTreeTopology",
    "HypercubeTopology",
    "make_topology",
    "TraceLog",
    "NullTraceLog",
    "TraceCtx",
    "Span",
    "SpanRecorder",
    "NullSpanRecorder",
    "chrome_trace",
    "spans_jsonl",
]
