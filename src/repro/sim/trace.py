"""Backwards-compatible re-export.

Tracing is observability, not simulation: the trace log and span
recorder serve every execution backend, so the module moved to the
layer-neutral :mod:`repro.tracing` (and the wire-level
:class:`~repro.tracectx.TraceCtx` to :mod:`repro.tracectx`).  This
shim keeps historical imports (``from repro.sim.trace import
TraceLog``) working.
"""

from repro.tracectx import TraceCtx  # noqa: F401
from repro.tracing import (  # noqa: F401
    NullSpanRecorder,
    NullTraceLog,
    Span,
    SpanRecorder,
    TraceLog,
    TraceRecord,
)

__all__ = [
    "TraceCtx",
    "TraceRecord",
    "TraceLog",
    "NullTraceLog",
    "Span",
    "SpanRecorder",
    "NullSpanRecorder",
]
