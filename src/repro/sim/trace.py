"""Structured event tracing for debugging and white-box tests.

Tracing is off by default and free when off: untraced machines carry a
:class:`NullTraceLog` whose ``emit`` is a no-op, and hot paths guard
with a single cached ``enabled`` flag so no argument tuple is packed
per message.  Tests enable tracing to assert on protocol-level
behaviour, e.g. that a forwarded message triggered exactly one FIR
chase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    node: int
    kind: str
    detail: Tuple[Any, ...]

    def __str__(self) -> str:
        parts = " ".join(str(d) for d in self.detail)
        return f"[{self.time:10.2f}us n{self.node}] {self.kind} {parts}"


class TraceLog:
    """An append-only in-memory trace with simple query helpers."""

    def __init__(self, enabled: bool = False, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.records: List[TraceRecord] = []

    def emit(self, time: float, node: int, kind: str, *detail: Any) -> None:
        if not self.enabled:
            return
        if self.capacity is not None and len(self.records) >= self.capacity:
            return
        self.records.append(TraceRecord(time, node, kind, detail))

    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for r in self.records if r.kind == kind)

    def where(self, pred: Callable[[TraceRecord], bool]) -> List[TraceRecord]:
        return [r for r in self.records if pred(r)]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        self.records.clear()

    def dump(self, limit: int = 200) -> str:
        """Render up to ``limit`` records for debugging output."""
        lines = [str(r) for r in self.records[:limit]]
        if len(self.records) > limit:
            lines.append(f"... ({len(self.records) - limit} more)")
        return "\n".join(lines)


class NullTraceLog(TraceLog):
    """The trace sink of an untraced machine: ``emit`` is a no-op and
    ``enabled`` is pinned False.

    Flipping ``enabled`` on a null log would silently record nothing,
    so the setter raises instead — construct the machine/runtime with
    ``trace=True`` to get a live :class:`TraceLog`.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        super().__init__(enabled=False, capacity=capacity)

    @property
    def enabled(self) -> bool:
        return False

    @enabled.setter
    def enabled(self, value: bool) -> None:
        if value:
            raise ValueError(
                "NullTraceLog cannot be enabled; build the machine with "
                "trace=True to record a trace"
            )

    def emit(self, time: float, node: int, kind: str, *detail: Any) -> None:
        return None
