"""The simulated multicomputer: partition manager + processing elements.

A :class:`Machine` bundles the event engine, the topology, the network
model, per-node CPUs, RNG streams and measurement — the full substitute
for the CM-5 partition the paper ran on.  The runtime
(:mod:`repro.runtime`) boots one kernel per processing element on top
of this substrate.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import RuntimeConfig
from repro.sim.engine import SimNode, Simulator
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.network import Network
from repro.sim.rng import RngStreams
from repro.sim.stats import StatsRegistry
from repro.sim.topology import Topology, make_topology
from repro.sim.trace import (
    NullSpanRecorder,
    NullTraceLog,
    SpanRecorder,
    TraceLog,
)


class Machine:
    """A partition of ``config.num_nodes`` processing elements.

    The partition manager (front-end) is modelled as a distinguished
    host outside the data network; it is represented by
    :attr:`frontend_node`, a :class:`SimNode` used for program loading
    and I/O (see :class:`repro.runtime.frontend.FrontEnd`).
    """

    def __init__(
        self,
        config: RuntimeConfig,
        *,
        trace: bool = False,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.config = config
        self.sim = Simulator(max_events=config.max_events)
        self.stats = StatsRegistry()
        # Untraced machines (the common case) get the inert null log so
        # trace costs are exactly zero on the message hot path.  The
        # span recorder follows the same null-object pattern.
        self.trace = TraceLog(enabled=True) if trace else NullTraceLog()
        self.spans = SpanRecorder(enabled=True) if trace else NullSpanRecorder()
        self.rng = RngStreams(config.seed)
        self.topology: Topology = make_topology(config.topology, config.num_nodes)
        self.nodes: List[SimNode] = [
            SimNode(i, self.sim) for i in range(config.num_nodes)
        ]
        # An empty plan degrades to no plan so the fault-free fast
        # paths (one cached boolean in Network and the AM endpoint)
        # stay engaged.
        if faults is not None and faults.empty:
            faults = None
        self.faults: Optional[FaultInjector] = (
            FaultInjector(faults, config.seed, self.stats)
            if faults is not None
            else None
        )
        self.network = Network(
            self.sim, self.topology, self.nodes, config.network, self.stats,
            faults=self.faults,
        )
        #: The partition manager's CPU (not on the data network).
        self.frontend_node = SimNode(-1, self.sim)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.config.num_nodes

    def node(self, node_id: int) -> SimNode:
        return self.nodes[node_id]

    def run(self, **kwargs) -> float:
        """Drain the event heap; returns the final simulated time."""
        return self.sim.run(**kwargs)

    @property
    def now(self) -> float:
        return self.sim.now

    def cpu_utilisation(self) -> List[float]:
        """Fraction of elapsed simulated time each node spent busy."""
        elapsed = self.sim.now or 1.0
        return [min(1.0, n.busy_us / elapsed) for n in self.nodes]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(P={self.num_nodes}, topology={self.config.topology}, "
            f"t={self.sim.now:.1f}us)"
        )
