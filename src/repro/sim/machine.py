"""Backwards-compatible re-export.

The simulated partition moved behind the platform seam: it is now the
discrete-event *backend*, :class:`repro.platform.simbackend.SimMachine`.
This shim keeps historical imports (``from repro.sim.machine import
Machine``) working; new code should construct machines through
:func:`repro.platform.make_machine` so the backend stays selectable.
"""

from repro.platform.simbackend import SimMachine

#: Historical name for the discrete-event machine.
Machine = SimMachine

__all__ = ["Machine", "SimMachine"]
