"""Deterministic discrete-event engine with per-node virtual clocks.

The engine is a single global event heap ordered by ``(time, seq)``
where ``seq`` is a monotonically increasing tie-breaker, so runs are
bit-reproducible.  Compute nodes (:class:`SimNode`) model CPU occupancy
with a *lazy charge* scheme: an event destined for a node begins
executing at ``max(arrival_time, node.busy_until)`` and the handler
advances the node clock by calling :meth:`SimNode.charge`.

This is sound because nodes share no mutable state — all cross-node
interaction flows through the network model, which only ever schedules
events in each receiver's future.  Within one node, heap order equals
arrival order, which gives the FIFO servicing a real CPU + NIC would.

Hot-path representation
-----------------------
Every simulated message, dispatcher slice and NIC drain is one heap
entry, so entry cost bounds whole-machine throughput.  Heap entries are
therefore plain four-slot lists ``[time, seq, fn, args]``: heap
comparisons stop at the unique ``seq`` (C-level float/int compares,
never a Python ``__lt__``), firing is ``fn(*args)`` with no closure,
and cancellation nulls slot 2 in place.  :class:`Event` is only a
*handle* around an entry, allocated by :meth:`Simulator.schedule` for
callers that may cancel; the no-handle :meth:`Simulator.post` path
allocates nothing but the entry itself.  ``pending`` is derived O(1)
from the heap length and a tombstone counter, and cancelled entries
are compacted out of the heap once they outnumber live ones.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import CausalityError, SimulationError

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Type of an event callback.  Callbacks receive the ``args`` given at
#: scheduling time (closures are still fine — they just cost more).
Callback = Callable[..., None]

#: Heap entries with fewer live (non-tombstone) entries than this are
#: never compacted; below it a rebuild costs more than it saves.
_COMPACT_MIN = 64


class Event:
    """Handle on a scheduled callback (ordered by ``(time, seq)``).

    The handle wraps the raw heap entry; cancelling nulls the entry's
    callback slot in place, which the pop loop skips as a tombstone.
    """

    __slots__ = ("_sim", "_entry", "label")

    def __init__(self, sim: "Simulator", entry: list, label: str = "") -> None:
        self._sim = sim
        self._entry = entry
        self.label = label

    @property
    def time(self) -> float:
        return self._entry[0]

    @property
    def seq(self) -> int:
        return self._entry[1]

    @property
    def fn(self) -> Optional[Callback]:
        return self._entry[2]

    @property
    def cancelled(self) -> bool:
        return self._entry[2] is None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; a no-op once the
        event has fired (fired entries are consumed the same way)."""
        entry = self._entry
        if entry[2] is None:
            return
        entry[2] = None
        entry[3] = ()
        sim = self._sim
        sim._tombstones += 1
        if sim._tombstones > _COMPACT_MIN and sim._tombstones * 2 > len(sim._heap):
            sim._compact()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.3f}, seq={self.seq}, {state}, {self.label!r})"


class Simulator:
    """Global event heap plus the simulated wall clock.

    Use :meth:`schedule` to post work (returns a cancellable handle) or
    :meth:`post` on hot paths (no handle, no per-event allocation
    beyond the entry), and :meth:`run` to drain the heap.  The engine
    never invents time: the clock only moves when an event is popped.
    """

    def __init__(self, *, max_events: int = 200_000_000) -> None:
        self.now: float = 0.0
        self.max_events = max_events
        self.events_executed: int = 0
        self._heap: list[list] = []
        self._seq = itertools.count()
        self._running = False
        #: Cancelled entries still sitting in the heap.  The live count
        #: is ``len(_heap) - _tombstones``, so pushes and pops need no
        #: extra bookkeeping and ``pending`` stays O(1).
        self._tombstones = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def post(self, time: float, fn: Callback, args: tuple = ()) -> list:
        """No-handle fast path: schedule ``fn(*args)`` at ``time``.

        Returns the raw heap entry (treat it as opaque; use
        :meth:`schedule` if you need to cancel).  Raises
        :class:`CausalityError` if ``time`` precedes the current clock.
        """
        if time < self.now:
            raise CausalityError(
                f"cannot schedule event at t={time:.3f} before now={self.now:.3f}"
            )
        entry = [time, next(self._seq), fn, args]
        _heappush(self._heap, entry)
        return entry

    def schedule(
        self, time: float, fn: Callback, *args: Any, label: str = ""
    ) -> Event:
        """Schedule ``fn(*args)`` at simulated time ``time``; returns a
        cancellable :class:`Event` handle.

        Raises :class:`CausalityError` if ``time`` precedes the current
        clock (events may be scheduled *at* the current time).
        """
        return Event(self, self.post(time, fn, args), label)

    def schedule_after(
        self, delay: float, fn: Callback, *args: Any, label: str = ""
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise CausalityError(f"negative delay {delay}")
        return self.schedule(self.now + delay, fn, *args, label=label)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.  Returns False when idle."""
        heap = self._heap
        while heap:
            entry = _heappop(heap)
            fn = entry[2]
            if fn is None:
                self._tombstones -= 1
                continue
            # Consume the entry so a late cancel() through a handle is
            # a no-op rather than a counter corruption.
            entry[2] = None
            self.now = entry[0]
            self.events_executed += 1
            fn(*entry[3])
            return True
        return False

    def run(
        self,
        *,
        until: Optional[float] = None,
        until_idle: bool = True,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Drain the event heap.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (the offending
            event remains queued).
        until_idle:
            Run until no events remain (the default).
        stop_when:
            Optional predicate checked after every event.

        Returns the simulated time at which execution stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        heap = self._heap  # stable: _compact() mutates in place
        pop = _heappop
        max_events = self.max_events
        try:
            if until is None and stop_when is None:
                # Hot loop: no deadline peeking, no predicate.  The
                # executed-event count lives in a local and is written
                # back in the finally block (handlers cannot observe it
                # mid-run; nothing else reads it while running).
                n_exec = self.events_executed
                try:
                    while heap:
                        if n_exec >= max_events:
                            raise SimulationError(
                                f"exceeded max_events={max_events}; "
                                "likely a livelock in the simulated program"
                            )
                        entry = pop(heap)
                        fn = entry[2]
                        if fn is None:
                            self._tombstones -= 1
                            continue
                        entry[2] = None
                        self.now = entry[0]
                        n_exec += 1
                        fn(*entry[3])
                finally:
                    self.events_executed = n_exec
            else:
                while heap:
                    if self.events_executed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "likely a livelock in the simulated program"
                        )
                    entry = heap[0]
                    if entry[2] is None:
                        pop(heap)
                        self._tombstones -= 1
                        continue
                    if until is not None and entry[0] > until:
                        self.now = until
                        break
                    pop(heap)
                    fn = entry[2]
                    entry[2] = None
                    self.now = entry[0]
                    self.events_executed += 1
                    fn(*entry[3])
                    if stop_when is not None and stop_when():
                        break
        finally:
            self._running = False
        return self.now

    # ------------------------------------------------------------------
    # introspection / maintenance
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of queued (non-cancelled) events.  O(1)."""
        return len(self._heap) - self._tombstones

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None when idle."""
        heap = self._heap
        while heap and heap[0][2] is None:
            heapq.heappop(heap)
            self._tombstones -= 1
        return heap[0][0] if heap else None

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.  ``(time, seq)`` keys
        are unique, so heapify preserves the execution order exactly.

        Mutates the heap list *in place*: ``run`` and the node fast
        paths hold direct references to it, so rebinding ``self._heap``
        here would strand them on a stale list.
        """
        heap = self._heap
        heap[:] = [e for e in heap if e[2] is not None]
        heapq.heapify(heap)
        self._tombstones = 0


class SimNode:
    """A processing element with a virtual CPU clock.

    ``busy_until`` tracks when the CPU frees up; :meth:`execute`
    serialises work on the node.  During a handler, :attr:`now` is the
    node-local simulated time and :meth:`charge` advances it.

    The ``post_*`` variants are the no-handle fast path used per
    message by the network and dispatcher: the node's bound ``_run`` /
    ``_run_preempting`` methods go straight into the heap entry with
    ``(fn, args)`` as payload — no closure, no :class:`Event`.
    """

    __slots__ = (
        "node_id", "sim", "busy_until", "now", "_in_handler", "busy_us",
        "_run_cb", "_runp_cb",
    )

    def __init__(self, node_id: int, sim: Simulator) -> None:
        self.node_id = node_id
        self.sim = sim
        #: Time at which the CPU becomes free.
        self.busy_until: float = 0.0
        #: Node-local clock, valid during a handler execution.
        self.now: float = 0.0
        #: Total microseconds of CPU time charged on this node.
        self.busy_us: float = 0.0
        self._in_handler = False
        # Bound-method objects for the heap entry payload, created once
        # instead of per post (a bound-method allocation per event is
        # measurable at millions of events per run).
        self._run_cb = self._run
        self._runp_cb = self._run_preempting

    # ------------------------------------------------------------------
    def execute(self, at: float, fn: Callback, *, label: str = "") -> Event:
        """Run ``fn`` on this node's CPU no earlier than ``at``.

        The handler starts at ``max(at, busy_until)``; any time it
        charges extends ``busy_until``.
        """
        return self.sim.schedule(at, self._run, fn, label=label)

    def execute_now(self, fn: Callback, *, label: str = "") -> Event:
        """Run ``fn`` on this node as soon as the CPU is free."""
        at = self.now if self._in_handler else self.sim.now
        return self.execute(at, fn, label=label)

    def post(self, at: float, fn: Callback, args: tuple = ()) -> None:
        """Fast path of :meth:`execute`: no handle, args pass-through.

        The push is inlined (rather than delegating to
        :meth:`Simulator.post`) because this is the per-message entry
        point for the dispatcher: one call frame per event matters.
        """
        sim = self.sim
        if at < sim.now:
            raise CausalityError(
                f"cannot schedule event at t={at:.3f} before now={sim.now:.3f}"
            )
        _heappush(sim._heap, [at, next(sim._seq), self._run_cb, (fn, args)])

    def post_now(self, fn: Callback, args: tuple = ()) -> None:
        """Fast path of :meth:`execute_now`."""
        sim = self.sim
        at = self.now if self._in_handler else sim.now
        if at < sim.now:
            raise CausalityError(
                f"cannot schedule event at t={at:.3f} before now={sim.now:.3f}"
            )
        _heappush(sim._heap, [at, next(sim._seq), self._run_cb, (fn, args)])

    def _run(self, fn: Callback, args: tuple = ()) -> None:
        if self._in_handler:
            # A node handler scheduled same-time work that popped while
            # we were still inside another handler.  This cannot happen
            # because handlers run synchronously within a single event.
            raise SimulationError(f"re-entrant execution on node {self.node_id}")
        sim_now = self.sim.now
        self.now = sim_now if sim_now > self.busy_until else self.busy_until
        self._in_handler = True
        try:
            fn(*args)
        finally:
            self._in_handler = False
            self.busy_until = self.now

    def execute_preempting(self, at: float, fn: Callback, *, label: str = "") -> Event:
        """Run ``fn`` at ``at`` even if the CPU is busy — the paper's
        node manager "steals the processor from the actor that is
        currently executing, processes the request using that actor's
        stack frame and subsequently resumes the actor's execution".
        The handler's charged time pushes the victim's completion back.
        """
        return self.sim.schedule(at, self._run_preempting, fn, label=label)

    def post_preempting(self, at: float, fn: Callback, args: tuple = ()) -> None:
        """Fast path of :meth:`execute_preempting` (per-message use).
        Inlined push, same as :meth:`post`."""
        sim = self.sim
        if at < sim.now:
            raise CausalityError(
                f"cannot schedule event at t={at:.3f} before now={sim.now:.3f}"
            )
        _heappush(sim._heap, [at, next(sim._seq), self._runp_cb, (fn, args)])

    def _run_preempting(self, fn: Callback, args: tuple = ()) -> None:
        if self._in_handler:
            raise SimulationError(f"re-entrant execution on node {self.node_id}")
        arrival = self.sim.now
        victim_resume = self.busy_until
        self.now = arrival
        self._in_handler = True
        try:
            fn(*args)
        finally:
            self._in_handler = False
            stolen = self.now - arrival
            if victim_resume > arrival:
                # We interrupted someone: their completion slips by the
                # cycles we stole.
                self.busy_until = victim_resume + stolen
            else:
                self.busy_until = self.now

    def bootstrap(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` on this node's CPU *synchronously*, outside the
        event loop (used by the front-end and external drivers to issue
        work into a idle or not-yet-running simulation).  The node
        clock advances exactly as it would for a scheduled handler."""
        if self._in_handler:
            raise SimulationError(
                f"bootstrap on node {self.node_id} during a handler; "
                "use execute_now instead"
            )
        start = max(self.sim.now, self.busy_until)
        self.now = start
        self._in_handler = True
        try:
            return fn()
        finally:
            self._in_handler = False
            self.busy_until = self.now

    # ------------------------------------------------------------------
    def charge(self, us: float) -> None:
        """Consume ``us`` microseconds of CPU time on this node."""
        if us < 0:
            raise SimulationError(f"negative charge {us}")
        self.now += us
        self.busy_us += us

    @property
    def in_handler(self) -> bool:
        """True while a handler is executing on this node."""
        return self._in_handler

    def time(self) -> float:
        """The node's best notion of the current time in microseconds:
        node-local virtual time inside a handler, global simulated time
        otherwise.  Part of the platform ``NodeExecutor`` interface."""
        return self.now if self._in_handler else self.sim.now

    def defer(self, fn: Callback, args: tuple = ()) -> None:
        """Run ``fn(*args)`` at this node's current virtual time.

        Inside a handler the node-local clock may be ahead of the
        global clock (lazy charging); the call is then re-posted so it
        fires when global time catches up — anything it schedules in
        turn (network injection, timers) starts from a consistent
        ``sim.now``.  When the clocks agree the call is made inline.
        Part of the platform ``NodeExecutor`` interface; the real-time
        backend, whose clocks never diverge, always calls inline.
        """
        sim = self.sim
        at = self.now if self._in_handler else sim.now
        if at > sim.now:
            sim.post(at, fn, args)
        else:
            fn(*args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimNode({self.node_id}, busy_until={self.busy_until:.2f})"
