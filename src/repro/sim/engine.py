"""Deterministic discrete-event engine with per-node virtual clocks.

The engine is a single global event heap ordered by ``(time, seq)``
where ``seq`` is a monotonically increasing tie-breaker, so runs are
bit-reproducible.  Compute nodes (:class:`SimNode`) model CPU occupancy
with a *lazy charge* scheme: an event destined for a node begins
executing at ``max(arrival_time, node.busy_until)`` and the handler
advances the node clock by calling :meth:`SimNode.charge`.

This is sound because nodes share no mutable state — all cross-node
interaction flows through the network model, which only ever schedules
events in each receiver's future.  Within one node, heap order equals
arrival order, which gives the FIFO servicing a real CPU + NIC would.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import CausalityError, SimulationError

#: Type of an event callback.  Callbacks take no arguments; closures
#: carry whatever payload they need.
Callback = Callable[[], None]


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by ``(time, seq)``."""

    time: float
    seq: int
    fn: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True


class Simulator:
    """Global event heap plus the simulated wall clock.

    Use :meth:`schedule` to post work and :meth:`run` to drain the
    heap.  The engine never invents time: the clock only moves when an
    event is popped.
    """

    def __init__(self, *, max_events: int = 200_000_000) -> None:
        self.now: float = 0.0
        self.max_events = max_events
        self.events_executed: int = 0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._running = False

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, time: float, fn: Callback, *, label: str = "") -> Event:
        """Schedule ``fn`` to run at simulated time ``time``.

        Raises :class:`CausalityError` if ``time`` precedes the current
        clock (events may be scheduled *at* the current time).
        """
        if time < self.now:
            raise CausalityError(
                f"cannot schedule event at t={time:.3f} before now={self.now:.3f}"
            )
        ev = Event(time=time, seq=next(self._seq), fn=fn, label=label)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_after(self, delay: float, fn: Callback, *, label: str = "") -> Event:
        """Schedule ``fn`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise CausalityError(f"negative delay {delay}")
        return self.schedule(self.now + delay, fn, label=label)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.  Returns False when idle."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self.now = ev.time
            self.events_executed += 1
            ev.fn()
            return True
        return False

    def run(
        self,
        *,
        until: Optional[float] = None,
        until_idle: bool = True,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Drain the event heap.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (the offending
            event remains queued).
        until_idle:
            Run until no events remain (the default).
        stop_when:
            Optional predicate checked after every event.

        Returns the simulated time at which execution stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        try:
            while self._heap:
                if self.events_executed >= self.max_events:
                    raise SimulationError(
                        f"exceeded max_events={self.max_events}; "
                        "likely a livelock in the simulated program"
                    )
                nxt = self._heap[0]
                if nxt.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and nxt.time > until:
                    self.now = until
                    break
                self.step()
                if stop_when is not None and stop_when():
                    break
        finally:
            self._running = False
        return self.now

    @property
    def pending(self) -> int:
        """Number of queued (non-cancelled) events."""
        return sum(1 for e in self._heap if not e.cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None when idle."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None


class SimNode:
    """A processing element with a virtual CPU clock.

    ``busy_until`` tracks when the CPU frees up; :meth:`execute`
    serialises work on the node.  During a handler, :attr:`now` is the
    node-local simulated time and :meth:`charge` advances it.
    """

    __slots__ = ("node_id", "sim", "busy_until", "now", "_in_handler", "busy_us")

    def __init__(self, node_id: int, sim: Simulator) -> None:
        self.node_id = node_id
        self.sim = sim
        #: Time at which the CPU becomes free.
        self.busy_until: float = 0.0
        #: Node-local clock, valid during a handler execution.
        self.now: float = 0.0
        #: Total microseconds of CPU time charged on this node.
        self.busy_us: float = 0.0
        self._in_handler = False

    # ------------------------------------------------------------------
    def execute(self, at: float, fn: Callback, *, label: str = "") -> Event:
        """Run ``fn`` on this node's CPU no earlier than ``at``.

        The handler starts at ``max(at, busy_until)``; any time it
        charges extends ``busy_until``.
        """
        return self.sim.schedule(at, lambda: self._run(fn), label=label)

    def execute_now(self, fn: Callback, *, label: str = "") -> Event:
        """Run ``fn`` on this node as soon as the CPU is free."""
        at = self.now if self._in_handler else self.sim.now
        return self.execute(at, fn, label=label)

    def _run(self, fn: Callback) -> None:
        if self._in_handler:
            # A node handler scheduled same-time work that popped while
            # we were still inside another handler.  This cannot happen
            # because handlers run synchronously within a single event.
            raise SimulationError(f"re-entrant execution on node {self.node_id}")
        start = max(self.sim.now, self.busy_until)
        self.now = start
        self._in_handler = True
        try:
            fn()
        finally:
            self._in_handler = False
            self.busy_until = self.now

    def execute_preempting(self, at: float, fn: Callback, *, label: str = "") -> Event:
        """Run ``fn`` at ``at`` even if the CPU is busy — the paper's
        node manager "steals the processor from the actor that is
        currently executing, processes the request using that actor's
        stack frame and subsequently resumes the actor's execution".
        The handler's charged time pushes the victim's completion back.
        """
        return self.sim.schedule(at, lambda: self._run_preempting(fn), label=label)

    def _run_preempting(self, fn: Callback) -> None:
        if self._in_handler:
            raise SimulationError(f"re-entrant execution on node {self.node_id}")
        arrival = self.sim.now
        victim_resume = self.busy_until
        self.now = arrival
        self._in_handler = True
        try:
            fn()
        finally:
            self._in_handler = False
            stolen = self.now - arrival
            if victim_resume > arrival:
                # We interrupted someone: their completion slips by the
                # cycles we stole.
                self.busy_until = victim_resume + stolen
            else:
                self.busy_until = self.now

    def bootstrap(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` on this node's CPU *synchronously*, outside the
        event loop (used by the front-end and external drivers to issue
        work into a idle or not-yet-running simulation).  The node
        clock advances exactly as it would for a scheduled handler."""
        if self._in_handler:
            raise SimulationError(
                f"bootstrap on node {self.node_id} during a handler; "
                "use execute_now instead"
            )
        start = max(self.sim.now, self.busy_until)
        self.now = start
        self._in_handler = True
        try:
            return fn()
        finally:
            self._in_handler = False
            self.busy_until = self.now

    # ------------------------------------------------------------------
    def charge(self, us: float) -> None:
        """Consume ``us`` microseconds of CPU time on this node."""
        if us < 0:
            raise SimulationError(f"negative charge {us}")
        self.now += us
        self.busy_us += us

    @property
    def in_handler(self) -> bool:
        """True while a handler is executing on this node."""
        return self._in_handler

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimNode({self.node_id}, busy_until={self.busy_until:.2f})"
