"""Backwards-compatible re-export.

Span export is observability, not simulation: the Chrome-trace and
JSONL exporters are pure functions over spans and serve every tracing
backend (sim and threaded), so the module moved to the layer-neutral
:mod:`repro.timeline`.  This shim keeps historical imports
(``from repro.sim.timeline import chrome_trace``) working.
"""

from repro.timeline import chrome_trace, spans_jsonl  # noqa: F401

__all__ = ["chrome_trace", "spans_jsonl"]
