"""Asyncio socket-mesh backend: a cluster of processes over TCP.

The mp backend's workers talk over inherited pipe/socketpair file
descriptors, which confines a partition to children of one driver
process.  This backend replaces the inherited-fd mesh with **real
listening sockets** — TCP (``config.net.transport = "tcp"``) or
UNIX-domain paths (``"unix"``, single host, no port management) — so a
node is a process reachable at an address, the shape a multicomputer
partition actually has.  Everything above the transport is inherited
from :mod:`repro.platform.mp` unchanged: one runtime kernel per worker,
batched :mod:`repro.platform.wireformat` frames, driver commands over a
per-node control pipe, and Safra token-ring quiescence riding the data
channels.

Mesh bring-up is address-based rather than fd-based:

1. every worker binds a listener (an ephemeral port when
   ``net.port_base == 0``) and reports ``("listening", node, addr)`` on
   its control pipe;
2. the driver collects all addresses and broadcasts the address map;
3. each worker dials its **lower-numbered** peers (exactly one
   connection per pair), redialling for up to ``net.connect_timeout_s``
   while listeners come up, and identifies itself with a 4-byte hello;
4. once a worker holds all ``P - 1`` channels it reports ``("meshed",
   node)`` and the driver lets the runtime proceed.

The worker's event loop is ``asyncio``: one reader task per peer
connection feeds that channel's :class:`FrameDecoder` and sets a wake
event; the host coroutine alternates heap bursts, ring steps and batch
flushes with an event wait bounded by the next timer deadline.  The
control pipe joins the same loop through ``add_reader``.

**Loss tolerance is a layer, not an assumption.**  On the inherited-fd
transports a lost byte is impossible, so the reliable-AM sublayer
attaches only under fault injection.  A cluster socket can deliver
late, reset mid-stream, or be fed garbage by the fault injector, so on
this backend the sublayer (acks, timeout/retransmit, windowed dedupe —
:mod:`repro.am.reliable`) is **always attached**: when
``config.reliability.enabled`` is ``None`` (automatic) the worker
forces it on, with the ack timeout raised to wall-clock-sane values
(loopback TCP RTT plus batching cadence dwarf the simulator's
microsecond defaults).  An explicit ``enabled=False`` is honoured and
means the caller vouches for the transport.

**Cluster-wide naming stays topology-independent.**  A mail address is
``(birthplace, descriptor)`` and never encodes a transport address; the
driver's :meth:`AsyncioMachine.locate` resolves one exactly the way a
kernel would — ask the birthplace's name-table shard, follow forwarding
guesses node to node (bounded), and **back-patch** its own location
cache with the answer so the next query goes straight to the current
host — the FIR chase of §4.3 run from outside the partition.  The
``("resolve", address)`` worker command underneath is a pure read of
the local name table: it never wakes the balancer or perturbs
quiescence.

Determinism is not supported (OS scheduling *and* socket timing order
delivery); fault injection works exactly as on mp — per-worker seeded
injectors at frame-record granularity on the send path, stall windows
on the receive path — with the always-on reliable sublayer repairing
the induced loss end-to-end.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import shutil
import struct
import tempfile
import time
import traceback
from multiprocessing import get_context
from typing import Any, Dict, List, Optional

from repro.config import RuntimeConfig
from repro.errors import NetworkError, ReproError
from repro.platform.mp import MpMachine, _DRAIN_CAP, _WorkerHost
from repro.platform.wireformat import FrameDecoder, FrameEncoder

#: Mesh hello: the dialler's node id, sent before any frame.
_HELLO = struct.Struct("!I")

#: Bulk read size for the per-connection reader tasks.
_CHUNK = 1 << 16

#: Wall-clock floors applied when this backend force-enables the
#: reliable sublayer (``reliability.enabled is None``): the simulator's
#: 600 us ack timeout would retransmit several times before a loopback
#: TCP round trip completes.  Explicit user settings are not touched.
_NET_ACK_TIMEOUT_US = 5_000.0
_NET_MAX_BACKOFF_US = 100_000.0

#: Driver-side slack on top of ``net.connect_timeout_s`` for the whole
#: bring-up conversation (P listeners + P·(P-1)/2 dials + acks).
_BOOT_GRACE_S = 30.0


def _net_worker_config(config: RuntimeConfig) -> RuntimeConfig:
    """The worker's view of the config: reliability always on (with
    wall-clock-sane timeouts) unless the caller forced a setting."""
    rel = config.reliability
    if rel.enabled is not None:
        return config
    rel = dataclasses.replace(
        rel,
        enabled=True,
        ack_timeout_us=max(rel.ack_timeout_us, _NET_ACK_TIMEOUT_US),
        max_backoff_us=max(rel.max_backoff_us, _NET_MAX_BACKOFF_US),
    )
    return dataclasses.replace(config, reliability=rel)


class _AsyncChannel:
    """Peer link over an asyncio stream pair.

    Writes go straight to the transport (``StreamWriter.write`` never
    blocks; the event loop flushes whenever the host coroutine awaits).
    Reads happen in a dedicated pump task that feeds this channel's
    decoder and wakes the host — the host drains decoded records on its
    own cadence, so dispatch stays on the single host task exactly as
    on the other transports.
    """

    __slots__ = ("reader", "writer", "encoder", "decoder", "dirty")

    def __init__(self, reader, writer) -> None:
        self.reader = reader
        self.writer = writer
        self.encoder = FrameEncoder()
        self.decoder = FrameDecoder()
        self.dirty = False

    def send_frame(self, frame: bytes) -> None:
        self.writer.write(frame)

    def read_available(self) -> None:
        """No-op: the pump task feeds the decoder asynchronously."""

    def close(self) -> None:
        try:
            self.writer.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass


class _AsyncWorkerHost(_WorkerHost):
    """Worker host whose mesh is sockets dialled at runtime.

    Constructed with an empty peer map — the kernel does not need
    channels to build — and meshes inside the asyncio loop before
    serving: listen, report, receive the address map, dial down, accept
    up.
    """

    def __init__(
        self,
        node_id: int,
        config: RuntimeConfig,
        costs,
        ctrl,
        unix_dir: Optional[str] = None,
        fault_plan=None,
    ) -> None:
        super().__init__(
            node_id, config, costs, ctrl, peers={}, shm=None,
            fault_plan=fault_plan,
        )
        self._unix_dir = unix_dir
        self._server: Optional[Any] = None
        self._pumps: List[Any] = []
        self._wake: Optional[asyncio.Event] = None
        self._eof = False

    # ------------------------------------------------------------------
    # readiness: decoders are pump-fed, so "unread input" is buffered
    # decoder bytes or a readable control pipe — no OS waitables here.
    # ------------------------------------------------------------------
    def _net_ready(self) -> bool:
        if self.ctrl.poll():
            return True
        for ch in self._chan_list:
            if ch.decoder.buffered_bytes:
                return True
        return False

    # ------------------------------------------------------------------
    # commands: cluster name resolution on top of the inherited set
    # ------------------------------------------------------------------
    def _do_command(self, payload: tuple):
        if payload[0] == "resolve":
            return self._resolve(payload[1])
        return super()._do_command(payload)

    def _resolve(self, address) -> tuple:
        """One hop of the driver's FIR-style chase: this node's current
        belief about ``address``, read straight from the name table —
        ``("local", node)``, ``("forward", best_guess)`` or
        ``("unknown",)``.  Never injects work or clears quiescence."""
        desc = self.kernel.table.get(address)
        if desc is None:
            return ("unknown",)
        if desc.is_local:
            return ("local", self.node_id)
        remote = desc.remote_node
        if remote >= 0 and remote != self.node_id:
            return ("forward", remote)
        return ("unknown",)

    # ------------------------------------------------------------------
    # mesh bring-up
    # ------------------------------------------------------------------
    def _register(self, peer_id: int, reader, writer) -> None:
        if peer_id in self.channels:  # pragma: no cover - protocol bug
            writer.close()
            return
        ch = _AsyncChannel(reader, writer)
        self.channels[peer_id] = ch
        self._chan_list = [self.channels[k] for k in sorted(self.channels)]
        self._pumps.append(asyncio.ensure_future(self._pump(ch)))
        if self._wake is not None:
            self._wake.set()

    async def _pump(self, ch: _AsyncChannel) -> None:
        """Feed one connection's bytes to its decoder.  Feeding only —
        no dispatch — keeps every handler on the host task; the fed
        bytes show up in ``decoder.buffered_bytes``, so a worker with
        undrained input is never ``_passive()`` for the token ring."""
        reader = ch.reader
        feed = ch.decoder.feed
        wake = self._wake
        try:
            while True:
                data = await reader.read(_CHUNK)
                if not data:
                    break
                feed(data)
                if wake is not None:
                    wake.set()
        except asyncio.CancelledError:
            raise
        except (OSError, ConnectionError):
            pass
        self._eof = True
        if wake is not None:
            wake.set()

    async def _on_accept(self, reader, writer) -> None:
        try:
            raw = await reader.readexactly(_HELLO.size)
        except (asyncio.IncompleteReadError, OSError):
            writer.close()
            return
        (peer_id,) = _HELLO.unpack(raw)
        self._register(peer_id, reader, writer)

    async def _ctrl_recv(self, deadline: float, expect: str) -> tuple:
        while not self.ctrl.poll():
            if time.monotonic() >= deadline:
                raise NetworkError(
                    f"node {self.node_id}: timed out waiting for "
                    f"{expect!r} during mesh bring-up"
                )
            await asyncio.sleep(0.005)
        return self.ctrl.recv()

    async def _dial(self, peer_id: int, addr: tuple, deadline: float) -> None:
        while True:
            try:
                if addr[0] == "unix":
                    reader, writer = await asyncio.open_unix_connection(addr[1])
                else:
                    reader, writer = await asyncio.open_connection(
                        addr[1], addr[2]
                    )
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise NetworkError(
                        f"node {self.node_id}: could not reach peer "
                        f"{peer_id} at {addr!r} within "
                        f"{self.config.net.connect_timeout_s}s"
                    ) from None
                await asyncio.sleep(0.02)
        writer.write(_HELLO.pack(self.node_id))
        await writer.drain()
        self._register(peer_id, reader, writer)

    async def _bootstrap_mesh(self) -> None:
        nn = self.config.num_nodes
        net = self.config.net
        deadline = time.monotonic() + net.connect_timeout_s + _BOOT_GRACE_S
        if net.transport == "unix":
            path = os.path.join(self._unix_dir, f"node-{self.node_id}.sock")
            self._server = await asyncio.start_unix_server(
                self._on_accept, path=path
            )
            addr = ("unix", path)
        else:
            port = net.port_base + self.node_id if net.port_base else 0
            self._server = await asyncio.start_server(
                self._on_accept, host=net.host, port=port
            )
            bound = self._server.sockets[0].getsockname()
            addr = ("tcp", bound[0], bound[1])
        self.ctrl.send(("listening", self.node_id, addr))
        msg = await self._ctrl_recv(deadline, "peers")
        if msg[0] != "peers":
            raise NetworkError(
                f"node {self.node_id}: expected address map, got {msg[0]!r}"
            )
        addrs: Dict[int, tuple] = msg[1]
        for peer_id in range(self.node_id):
            await self._dial(peer_id, addrs[peer_id], deadline)
        while len(self.channels) < nn - 1:
            if time.monotonic() >= deadline:
                raise NetworkError(
                    f"node {self.node_id}: mesh incomplete "
                    f"({len(self.channels)}/{nn - 1} peers) at timeout"
                )
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), 0.25)
            except asyncio.TimeoutError:
                pass
        self.ctrl.send(("meshed", self.node_id))

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def loop(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._wake = asyncio.Event()
        loop = asyncio.get_running_loop()
        ctrl_fd = self.ctrl.fileno()
        ctrl_reader = True
        try:
            loop.add_reader(ctrl_fd, self._wake.set)
        except (NotImplementedError, PermissionError):  # pragma: no cover
            ctrl_reader = False
        try:
            await self._bootstrap_mesh()
            await self._serve(ctrl_reader)
        finally:
            if ctrl_reader:
                try:
                    loop.remove_reader(ctrl_fd)
                except (OSError, ValueError):  # pragma: no cover
                    pass
            await self._teardown()

    async def _serve(self, ctrl_reader: bool) -> None:
        """The worker's event loop: heap bursts, ring steps and batch
        flushes on the host task; reads arrive via the pump tasks while
        this coroutine awaits.  Mirrors ``_WorkerHost._loop_shm``'s
        progressed/park structure with an :class:`asyncio.Event` in
        place of the Condition."""
        node = self.node
        wake = self._wake
        while not self._stop:
            try:
                wake.clear()
                before = node.events_run
                self._run_ready()
                self._maybe_advance_ring()
                self._flush_pending()
                progressed = node.events_run != before
                for _ in range(_DRAIN_CAP):
                    if not self.ctrl.poll():
                        break
                    progressed = True
                    self._dispatch_ctrl(self.ctrl.recv())
                    if self._stop:
                        return
                for ch in self._chan_list:
                    for rec in ch.decoder.drain():
                        progressed = True
                        self._dispatch_record(rec)
                if self._eof:
                    return  # a peer went away; nothing left to serve
                if progressed:
                    # Yield once so reader tasks and the transport's
                    # write buffers make progress, then go again.
                    await asyncio.sleep(0)
                    continue
                timeout = self._next_timeout()
                if timeout == 0.0:
                    continue
                if not ctrl_reader:  # pragma: no cover - exotic loops
                    timeout = 0.01 if timeout is None else min(timeout, 0.01)
                try:
                    if timeout is None:
                        await wake.wait()
                    else:
                        await asyncio.wait_for(wake.wait(), timeout)
                except asyncio.TimeoutError:
                    pass
            except (EOFError, OSError):
                return  # the driver went away
            except Exception:
                try:
                    self.ctrl.send(
                        ("err", self.node_id, traceback.format_exc())
                    )
                except OSError:
                    return

    async def _teardown(self) -> None:
        try:
            self._flush_pending()
        except Exception:  # pragma: no cover - peers may be gone
            pass
        for task in self._pumps:
            task.cancel()
        for ch in self._chan_list:
            ch.close()
        if self._server is not None:
            self._server.close()
        # One tick so cancellations and transport closes actually run.
        await asyncio.sleep(0)


def _asyncio_worker_main(
    node_id: int,
    config: RuntimeConfig,
    costs,
    ctrl,
    unix_dir: Optional[str] = None,
    fault_plan=None,
) -> None:
    """Process entry point (module-level so a spawn start method can
    pickle it)."""
    try:
        host = _AsyncWorkerHost(
            node_id, _net_worker_config(config), costs, ctrl,
            unix_dir, fault_plan,
        )
        host.loop()
    except BaseException:  # noqa: BLE001 - last-resort report to driver
        try:
            ctrl.send(("err", node_id, traceback.format_exc()))
        except OSError:
            pass


# ======================================================================
# driver side
# ======================================================================
class AsyncioMachine(MpMachine):
    """A partition of worker processes meshed over real sockets.

    Inherits the whole mp driver surface (commands, detection rounds,
    snapshot merge, audit); overrides worker spawning (address-based
    bring-up instead of inherited fds) and :meth:`locate` (a cluster
    name chase instead of a full snapshot pull).
    """

    deterministic = False
    supports_faults = True
    supports_tracing = False
    distributed = True
    counters_exact = True

    def __init__(
        self,
        config: RuntimeConfig,
        *,
        trace: bool = False,
        faults=None,
    ) -> None:
        super().__init__(config, trace=trace, faults=faults)
        self._unix_dir: Optional[str] = None

    # ------------------------------------------------------------------
    # boot / teardown
    # ------------------------------------------------------------------
    def start_workers(self, costs) -> None:
        """Spawn one worker per node with only a control pipe, then run
        the three-phase mesh bring-up: collect every worker's listener
        address, broadcast the map, wait for all-meshed."""
        if self._procs:
            return
        import multiprocessing as _mp

        methods = _mp.get_all_start_methods()
        ctx = get_context("fork" if "fork" in methods else None)
        nn = self.config.num_nodes
        net = self.config.net
        if net.transport == "unix":
            self._unix_dir = tempfile.mkdtemp(prefix="repro-net-")
        for i in range(nn):
            parent, child = ctx.Pipe(duplex=True)
            self._ctrl.append(parent)
            proc = ctx.Process(
                target=_asyncio_worker_main,
                args=(
                    i, self.config, costs, child, self._unix_dir,
                    self.fault_plan,
                ),
                name=f"repro-net-node-{i}",
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
        deadline = time.monotonic() + net.connect_timeout_s + _BOOT_GRACE_S
        addrs: Dict[int, tuple] = {}
        for conn in self._ctrl:
            msg = self._boot_recv(conn, deadline, "listening")
            addrs[msg[1]] = msg[2]
        for conn in self._ctrl:
            conn.send(("peers", addrs))
        for conn in self._ctrl:
            self._boot_recv(conn, deadline, "meshed")

    def _boot_recv(self, conn, deadline: float, expect: str) -> tuple:
        """Wait for one bring-up message on ``conn``, forwarding any
        interleaved events (a worker error must surface as the error,
        not as a bring-up timeout)."""
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ReproError(
                    f"asyncio backend: timed out waiting for {expect!r} "
                    "during mesh bring-up"
                )
            if not conn.poll(min(remaining, 0.25)):
                self._raise_worker_error()
                continue
            msg = conn.recv()
            if msg[0] == expect:
                return msg
            self._note_event(msg)
            self._raise_worker_error()

    def shutdown(self) -> None:
        super().shutdown()
        if self._unix_dir is not None:
            shutil.rmtree(self._unix_dir, ignore_errors=True)
            self._unix_dir = None

    # ------------------------------------------------------------------
    # cluster naming
    # ------------------------------------------------------------------
    def locate(self, address) -> Optional[int]:
        """Resolve a mail address cluster-wide, the way a kernel would.

        Start at the cached last-known host if one exists, else at the
        **birthplace shard** the address itself encodes
        (:meth:`MailAddress.home_node`); ask each node's name table in
        turn, following ``("forward", n)`` guesses — stale guesses form
        chains, never cycles longer than the migration history, so the
        chase is bounded — and back-patch the driver cache on success
        exactly as a FIR reply back-patches a kernel's descriptor.
        Falls back to a full snapshot merge only when the chase dead-
        ends (e.g. the address was never bound)."""
        if not self._procs or self._shut:
            return self._locations.get(address)
        nn = self.config.num_nodes
        home = address.home_node()
        hint = self._locations.get(address)
        node = hint if hint is not None else home
        tried_home = node == home
        for _ in range(2 * nn + 2):
            if not (0 <= node < nn):
                break
            resp = self.command(node, ("resolve", address))
            tag = resp[0]
            if tag == "local":
                self._locations[address] = node  # back-patch
                return node
            if tag == "forward":
                nxt = resp[1]
                if nxt == node:  # pragma: no cover - self-loop guard
                    break
                node = nxt
                if node == home:
                    tried_home = True
                continue
            # "unknown" here: a stale cache entry may point at a node
            # that already forgot the actor — restart once from the
            # birthplace shard, which learns every creation it issued.
            if not tried_home:
                node, tried_home = home, True
                continue
            break
        self._refresh()
        return self._locations.get(address)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AsyncioMachine(P={self.num_nodes}, "
            f"transport={self.config.net.transport}, "
            f"t={self.clock.now:.1f}us)"
        )
