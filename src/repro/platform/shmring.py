"""Single-producer/single-consumer byte rings in shared memory.

The mp backend's third transport (``MpParams(transport="shm")``) moves
frames between worker processes without a kernel copy: one
:mod:`multiprocessing.shared_memory` arena holds a ring buffer per
*directed* peer edge, and the PR 6 binary frames
(:mod:`repro.platform.wireformat`) are copied straight into it.  Frames
are already length-prefixed and the decoder reassembles arbitrary byte
chunks, so the ring carries a raw byte stream — no record framing of
its own, and a frame larger than the ring simply crosses in chunks.

Ring layout (offsets within one ring region)::

    0   u64 head     consumer's read position  (monotonic, mod capacity)
    8   u64 tail     producer's write position (monotonic, mod capacity)
    16  u8  writer_wait   producer parked waiting for space
    64  data[capacity]

Arena layout (``num_nodes`` = P)::

    P * 64                      per-worker status slots (sleeping flag)
    P * (P-1) ring regions      one per ordered pair (src, dst), src != dst

**Memory ordering.** Each index has exactly one writer: the producer
owns ``tail``, the consumer owns ``head``; each side keeps its own
index in a local mirror and only ever *loads* the foreign one.  The
indices are monotonic u64s at 8-byte-aligned offsets, so on the ISAs
CPython runs on (x86-64, AArch64) the store and load are single
instructions and cannot tear; as defence in depth every load is
validated (``0 <= tail - head <= capacity``) and an inconsistent
snapshot is treated conservatively — "full" for the producer, "empty"
for the consumer — and retried on the next poll.  Data is written
*before* the tail store that publishes it (program order; x86-TSO
orders the stores, and a stale read on a weaker machine only delays
consumption by one poll).  Empty/full blocking uses a spin phase, then
a ``multiprocessing.Condition`` with a **bounded timeout**: the
sleeping/writer_wait flags and the index stores form a Dekker-style
store→load protocol that can miss a wakeup under store buffering, and
the timeout converts that worst case into a bounded stall instead of a
hang (see DESIGN.md §5f).

**Teardown.** The driver creates the arena (and is registered with the
``resource_tracker``); workers attach *untracked* by name — on 3.13+
via ``track=False``, earlier by suppressing the tracker's register
call around the attach, so worker exits neither unlink the segment nor
unregister the driver's claim.  The driver ``close()``s and
``unlink()``s in ``MpMachine.shutdown``.
"""

from __future__ import annotations

import struct
from typing import Optional

#: Bytes reserved at the front of each ring region for the indices.
RING_HEADER = 64
#: Bytes per worker status slot (sleeping flag at offset 0).
STATUS_SLOT = 64

_U64 = struct.Struct("<Q")

_HEAD_OFF = 0
_TAIL_OFF = 8
_WAIT_OFF = 16


class RingBuffer:
    """A SPSC byte ring over any writable buffer.

    The buffer's first :data:`RING_HEADER` bytes hold the shared
    indices; ``capacity`` data bytes follow.  One process (or test
    role) must be the sole producer and one the sole consumer; a
    single-process test may be both.  Buffer-agnostic on purpose: the
    hypothesis property tests drive it over a plain ``bytearray``,
    production wraps a ``SharedMemory`` view.
    """

    __slots__ = ("_buf", "_data", "capacity", "_head", "_tail")

    def __init__(self, buf, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        view = memoryview(buf)
        if len(view) < RING_HEADER + capacity:
            raise ValueError(
                f"buffer of {len(view)} bytes cannot hold header "
                f"({RING_HEADER}) + capacity ({capacity})"
            )
        self._buf = view
        self._data = view[RING_HEADER:RING_HEADER + capacity]
        self.capacity = capacity
        # Local mirrors of the own-side indices (see module docstring);
        # both sides attach before any traffic, when both are zero —
        # or re-read whatever an earlier attachment left behind.
        self._head = _U64.unpack_from(view, _HEAD_OFF)[0]
        self._tail = _U64.unpack_from(view, _TAIL_OFF)[0]

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def write_some(self, data) -> int:
        """Copy as much of ``data`` as fits and publish it.  Returns
        the number of bytes written (0 when the ring is full or the
        head snapshot was inconsistent)."""
        cap = self.capacity
        tail = self._tail
        head = _U64.unpack_from(self._buf, _HEAD_OFF)[0]
        used = tail - head
        if used < 0 or used > cap:
            return 0  # torn foreign-index read: treat as full, retry
        space = cap - used
        if space == 0:
            return 0
        n = len(data)
        if n > space:
            n = space
        pos = tail % cap
        first = cap - pos
        if n <= first:
            self._data[pos:pos + n] = data[:n]
        else:
            self._data[pos:] = data[:first]
            self._data[:n - first] = data[first:n]
        tail += n
        self._tail = tail
        _U64.pack_into(self._buf, _TAIL_OFF, tail)
        return n

    @property
    def writable(self) -> bool:
        head = _U64.unpack_from(self._buf, _HEAD_OFF)[0]
        used = self._tail - head
        return 0 <= used < self.capacity

    def set_writer_wait(self) -> None:
        self._buf[_WAIT_OFF] = 1

    def clear_writer_wait(self) -> None:
        self._buf[_WAIT_OFF] = 0

    @property
    def writer_waiting(self) -> bool:
        return self._buf[_WAIT_OFF] != 0

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def read_some(self, limit: Optional[int] = None) -> bytes:
        """Take every currently published byte (up to ``limit``) and
        free its space.  Returns ``b""`` when nothing is available."""
        cap = self.capacity
        head = self._head
        tail = _U64.unpack_from(self._buf, _TAIL_OFF)[0]
        avail = tail - head
        if avail <= 0 or avail > cap:
            return b""  # empty, or torn read: treat as empty, retry
        if limit is not None and avail > limit:
            avail = limit
        pos = head % cap
        first = cap - pos
        if avail <= first:
            out = bytes(self._data[pos:pos + avail])
        else:
            out = bytes(self._data[pos:]) + bytes(self._data[:avail - first])
        head += avail
        self._head = head
        _U64.pack_into(self._buf, _HEAD_OFF, head)
        return out

    @property
    def readable(self) -> bool:
        tail = _U64.unpack_from(self._buf, _TAIL_OFF)[0]
        avail = tail - self._head
        return 0 < avail <= self.capacity


# ======================================================================
# arena: one SharedMemory segment holding every ring + status slot
# ======================================================================
def arena_size(num_nodes: int, ring_bytes: int) -> int:
    edges = num_nodes * (num_nodes - 1)
    return num_nodes * STATUS_SLOT + edges * (RING_HEADER + ring_bytes)


def _ring_offset(num_nodes: int, ring_bytes: int, src: int, dst: int) -> int:
    idx = src * (num_nodes - 1) + (dst if dst < src else dst - 1)
    return num_nodes * STATUS_SLOT + idx * (RING_HEADER + ring_bytes)


class ShmArena:
    """Typed view over the shared segment: per-edge rings and
    per-worker sleeping flags."""

    def __init__(self, shm, num_nodes: int, ring_bytes: int) -> None:
        self._shm = shm
        self.num_nodes = num_nodes
        self.ring_bytes = ring_bytes
        self._view = memoryview(shm.buf)

    @property
    def name(self) -> str:
        return self._shm.name

    def ring(self, src: int, dst: int) -> RingBuffer:
        if src == dst:
            raise ValueError("no self-edge rings")
        off = _ring_offset(self.num_nodes, self.ring_bytes, src, dst)
        return RingBuffer(
            self._view[off:off + RING_HEADER + self.ring_bytes],
            self.ring_bytes,
        )

    # -- per-worker sleeping flag (consumer parked on its Condition) --
    def set_sleeping(self, node: int, flag: bool) -> None:
        self._view[node * STATUS_SLOT] = 1 if flag else 0

    def sleeping(self, node: int) -> bool:
        return self._view[node * STATUS_SLOT] != 0

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release this process's mapping (keeps the segment alive).

        Best-effort: a worker that still holds live ring views cannot
        release the export chain (``BufferError``), and doesn't need
        to — the mapping dies with the process moments later.  The
        driver never creates ring views, so its close is clean."""
        try:
            self._view.release()
            self._shm.close()
        except BufferError:  # pragma: no cover - worker exit path
            pass

    def unlink(self) -> None:
        """Destroy the segment (driver only, after workers joined)."""
        self._shm.unlink()


def create_arena(num_nodes: int, ring_bytes: int) -> ShmArena:
    """Driver side: create and zero a fresh segment (registered with
    the resource tracker, so a crashed driver still gets cleaned up)."""
    from multiprocessing import shared_memory

    size = arena_size(num_nodes, ring_bytes)
    shm = shared_memory.SharedMemory(create=True, size=size)
    # POSIX shm is zero-filled on creation; make it explicit anyway so
    # a recycled name can never leak stale indices.
    shm.buf[:size] = bytes(size)
    return ShmArena(shm, num_nodes, ring_bytes)


def attach_arena(name: str, num_nodes: int, ring_bytes: int) -> ShmArena:
    """Worker side: attach by name *without* registering with the
    resource tracker — the driver owns the segment's lifetime and a
    worker exit must not unlink it (nor, pre-3.13, double-register it
    and spray tracker warnings)."""
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Python <= 3.12: no track parameter; the attach path
        # unconditionally registers, so suppress it for this call.
        from multiprocessing import resource_tracker

        orig = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig
    return ShmArena(shm, num_nodes, ring_bytes)
