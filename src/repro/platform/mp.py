"""Multiprocessing backend: one OS process per processing element.

This is the first backend where the GIL no longer serialises node
execution: every node runs a full runtime kernel inside its own
worker process, active messages cross between nodes as **batched
binary frames** (:mod:`repro.platform.wireformat`) over per-pair
duplex links, and the driver process holds no kernel state at all —
driver operations (load, spawn, send, call, grpnew, broadcast) travel
to the owning worker as synchronously-acknowledged commands on a
per-node control pipe.

The wire path is built for throughput, not per-packet convenience:

- **outbound batching** — packets coalesce per destination in a
  :class:`~repro.platform.wireformat.FrameEncoder` and flush on a
  byte/count threshold (``config.mp.batch_bytes`` /
  ``batch_max_msgs``), on a fixed cadence inside a handler burst, and
  unconditionally before the worker blocks, so N messages cost one
  syscall instead of N and nothing ever waits on an idle worker;
- **compact encoding** — a ``struct``-packed header (src, dst, nbytes,
  interned handler-name id) plus a payload pickle of the args only,
  with a one-slot identity cache so a broadcast fan-out serialises its
  payload once per batch rather than once per destination;
- **transport choice** — ``config.mp.transport`` selects full-mesh
  duplex pipes (frames ride ``send_bytes``), full-mesh UNIX-domain
  stream socketpairs (raw scatter writes, bulk ``recv`` reads that can
  pull many frames per syscall; the decoder reassembles split frames),
  or shared-memory SPSC rings (``"shm"``: one ring per directed peer
  edge in a single ``multiprocessing.shared_memory`` arena, frames
  copied in without a kernel crossing, spin-then-``Condition``
  blocking on empty/full — :mod:`repro.platform.shmring`).

Batching never changes message *identity*: the Safra counters below
count messages, not frames — a frame of five counted packets moves the
sender's counter by five and the receiver's by five as each decoded
record is processed, so distributed quiescence detection is exactly as
sound as it was on the one-pickle-per-packet path.

Nothing is shared, so the shared-counter quiescence arithmetic of the
sim backend (and the threaded backend's live count) is unavailable by
construction.  Termination is instead detected with a Safra-style
token ring:

- every worker keeps a message counter ``c`` (counted sends minus
  counted receives; steal/ack chatter is excluded, exactly as in the
  other backends' ``net_idle``) and a colour, *black* after any
  counted receive;
- node 0 coordinates: on a driver request it injects a white token
  carrying a running count; each worker forwards the token only when
  *passive* (no handler running, no live non-``steal.poll`` heap
  entry, no unread pipe data), adds its counter, blackens the token if
  it is black itself, and turns white;
- when the token returns white to a white node 0 with a zero total,
  no counted message is in flight and no worker holds work: node 0
  circulates a *quiesce* flag (stopping the balancers' polls) and
  reports success to the driver.

Determinism is not supported — OS scheduling orders delivery — but
**fault injection is**: each worker builds its own seeded
:class:`~repro.sim.faults.FaultInjector` over a per-node derivation of
the fault seed and consults it on the wire path at frame-record
granularity (drop/dup/delay/reorder on the sending worker, stall
windows on the receiver).  The per-(seed, node) draw *stream* is
deterministic — replaying a seed reproduces the same fault pattern
relative to each node's local send sequence — even though the global
interleaving is not; Safra's counters stay conserved because a dropped
packet is never counted as in flight and a delayed or duplicated copy
is counted at its actual transmit time while a live heap entry keeps
the node non-passive.  With a plan installed the kernels auto-attach
the reliable AM sublayer and protocol watchdogs exactly as on sim, so
``check_invariants`` can audit packet conservation against the
injected-fault budget on merged (exact, per-process) counters.

A payload that does not pickle is a **hard error**
(:class:`~repro.errors.NetworkError` on the sending worker, surfaced
to the driver), where the in-process backends would happily share the
object by reference.
"""

from __future__ import annotations

import heapq
import itertools
import pickle
import socket
import traceback
from multiprocessing import get_context
from multiprocessing.connection import wait as conn_wait
from typing import Any, Callable, Dict, List, Optional

from repro.config import RuntimeConfig
from repro.errors import NetworkError, ReproError, SimulationError
from repro.platform.base import WirePacket
from repro.platform.shmring import attach_arena, create_arena
from repro.platform.threaded import _CHATTER_KINDS, WallClock
from repro.platform.wireformat import FrameDecoder, FrameEncoder, encode_payload
from repro.rng import RngStreams, _derive_seed
from repro.stats import Histogram, StatsRegistry
from repro.topology import Topology, make_topology
from repro.tracing import NullSpanRecorder, NullTraceLog

Callback = Callable[..., None]

#: Heap-entry label of the balancer's poll timers: the only deferred
#: work a passive node may hold (mirrors the chatter exclusion).
_POLL_LABEL = "steal.poll"

#: Per-conn control-command drain cap per loop iteration.
_DRAIN_CAP = 64

#: Handler-burst cadence: every this-many consecutive heap entries the
#: worker flushes outbound batches and peeks at the network.  Checking
#: after *every* handler (PR 5) cost one poll syscall per event; a
#: small power-of-two batch keeps both latency and syscalls low.
_BURST_MASK = 0x07

#: Shm transport: poll iterations before parking on the Condition.
#: The common case (a peer's frame lands within microseconds) never
#: touches the futex-ful cross-process lock.
_SHM_SPIN = 100

#: Shm transport: Condition-wait bound.  The sleeping/writer_wait
#: handshake is a Dekker-style store→load protocol that can miss a
#: wakeup under store buffering; the bounded wait converts that into
#: a <=2 ms stall instead of a hang (DESIGN.md §5f).
_SHM_WAIT_S = 0.002


def _pickling_errors():
    return (TypeError, AttributeError, pickle.PicklingError)


# ======================================================================
# peer channels: one per (worker, peer) pair, transport-specific
# ======================================================================
class _PipeChannel:
    """Peer link over a multiprocessing duplex pipe.  Frames travel as
    whole ``send_bytes`` messages, so the pipe's own message framing
    does the reassembly and the decoder always sees complete frames."""

    __slots__ = ("conn", "encoder", "decoder", "dirty")

    def __init__(self, conn) -> None:
        self.conn = conn
        self.encoder = FrameEncoder()
        self.decoder = FrameDecoder()
        #: True while this channel may hold unflushed outbound bytes.
        self.dirty = False

    @property
    def waitable(self):
        return self.conn

    def send_frame(self, frame: bytes) -> None:
        self.conn.send_bytes(frame)

    def read_available(self) -> None:
        """Feed everything currently readable to the decoder."""
        conn = self.conn
        feed = self.decoder.feed
        feed(conn.recv_bytes())
        while conn.poll():
            feed(conn.recv_bytes())

    def close(self) -> None:
        self.conn.close()


class _SocketChannel:
    """Peer link over a UNIX-domain stream socketpair.

    Unlike the pipe channel there is no message boundary: one ``recv``
    may return half a frame or a dozen frames, and the decoder's
    reassembly buffer absorbs the difference.  Reads are bulk
    (64 KiB), so a burst of small frames costs one syscall, not one
    per frame — the low-syscall half of the transport experiment."""

    __slots__ = ("sock", "encoder", "decoder", "dirty")

    _CHUNK = 1 << 16

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.encoder = FrameEncoder()
        self.decoder = FrameDecoder()
        self.dirty = False

    @property
    def waitable(self):
        return self.sock

    def send_frame(self, frame: bytes) -> None:
        self.sock.sendall(frame)

    def read_available(self) -> None:
        recv = self.sock.recv
        feed = self.decoder.feed
        while True:
            try:
                data = recv(self._CHUNK, socket.MSG_DONTWAIT)
            except BlockingIOError:
                return
            if not data:
                raise EOFError("peer socket closed")
            feed(data)
            if len(data) < self._CHUNK:
                return

    def close(self) -> None:
        self.sock.close()


def _make_channel(end: Any) -> Any:
    """Wrap a transport endpoint in its channel type."""
    if isinstance(end, socket.socket):
        return _SocketChannel(end)
    return _PipeChannel(end)


class _ShmChannel:
    """Peer link over a pair of shared-memory SPSC byte rings (one per
    direction; :mod:`repro.platform.shmring`).

    Unlike the pipe/socket channels there is no OS waitable: readiness
    is a head/tail compare, blocking is spin-then-``Condition``.  A
    full outbound ring raises the ring's ``writer_wait`` flag and
    parks on *this* worker's condition (the consumer notifies after
    freeing space); while waiting, ``drain_hook`` absorbs this
    worker's own inbound rings into their decoders — buffer-only, no
    dispatch, so it is safe mid-handler — which breaks the two-rings-
    both-full write cycle.  Frames larger than the ring cross in
    chunks; the decoder reassembles, exactly as on the socket path."""

    __slots__ = (
        "out_ring", "in_ring", "encoder", "decoder", "dirty",
        "_arena", "_peer", "_my_cond", "_peer_cond", "drain_hook",
    )

    def __init__(self, arena, conds, me: int, peer: int) -> None:
        self.out_ring = arena.ring(me, peer)
        self.in_ring = arena.ring(peer, me)
        self.encoder = FrameEncoder()
        self.decoder = FrameDecoder()
        self.dirty = False
        self._arena = arena
        self._peer = peer
        self._my_cond = conds[me]
        self._peer_cond = conds[peer]
        #: Host-installed: feed *all* inbound rings to their decoders.
        self.drain_hook = None

    def send_frame(self, frame: bytes) -> None:
        mv = memoryview(frame)
        off = 0
        total = len(mv)
        spins = 0
        out = self.out_ring
        while off < total:
            n = out.write_some(mv[off:] if off else mv)
            if n:
                off += n
                spins = 0
                self._wake_peer()
                continue
            # Full ring: keep our own inbound moving, spin, then park.
            hook = self.drain_hook
            if hook is not None:
                hook()
            spins += 1
            if spins < _SHM_SPIN:
                continue
            out.set_writer_wait()
            try:
                if out.writable:
                    continue  # consumer freed space during the spin
                with self._my_cond:
                    self._my_cond.wait(_SHM_WAIT_S)
            finally:
                out.clear_writer_wait()
            spins = 0

    def _wake_peer(self) -> None:
        if self._arena.sleeping(self._peer):
            cond = self._peer_cond
            with cond:
                cond.notify()

    def read_available(self) -> bool:
        """Move every published inbound byte into the decoder; True if
        anything arrived.  Frees ring space as a side effect, so a
        writer parked on the reverse direction gets notified here."""
        got = False
        in_ring = self.in_ring
        feed = self.decoder.feed
        while True:
            data = in_ring.read_some()
            if not data:
                break
            got = True
            feed(data)
            if in_ring.writer_waiting:
                cond = self._peer_cond
                with cond:
                    cond.notify()
        return got

    def close(self) -> None:
        """Nothing to close per channel; the arena is shared."""


# ======================================================================
# worker side: node executor, wire transport, runtime shims
# ======================================================================
class _WorkerTimer:
    """Cancellable handle on a worker heap entry (tombstoning, same
    scheme as the sim and threaded backends)."""

    __slots__ = ("_entry", "label")

    def __init__(self, entry: list, label: str = "") -> None:
        self._entry = entry
        self.label = label

    @property
    def cancelled(self) -> bool:
        return self._entry[2] is None

    def cancel(self) -> None:
        self._entry[2] = None
        self._entry[3] = ()


class _WorkerNode:
    """One worker process's CPU: a single-threaded heap of
    ``[due_us, seq, fn, args, label]`` entries drained by the host
    loop.  Satisfies :class:`~repro.platform.base.NodeExecutor`."""

    __slots__ = (
        "node_id", "clock", "now", "busy_us", "_in_handler", "events_run",
        "_heap", "_seq",
    )

    def __init__(self, node_id: int, clock: WallClock) -> None:
        self.node_id = node_id
        self.clock = clock
        self.now: float = 0.0
        self.busy_us: float = 0.0
        self._in_handler = False
        self.events_run = 0
        self._heap: List[list] = []
        self._seq = itertools.count()

    # ------------------------------------------------------------------
    def _enqueue(self, at: float, fn: Callback, args: tuple, label: str) -> list:
        entry = [at, next(self._seq), fn, args, label]
        heapq.heappush(self._heap, entry)
        return entry

    def execute(self, at: float, fn: Callback, *, label: str = "") -> _WorkerTimer:
        return _WorkerTimer(self._enqueue(at, fn, (), label), label)

    def execute_now(self, fn: Callback, *, label: str = "") -> _WorkerTimer:
        return _WorkerTimer(self._enqueue(self.time(), fn, (), label), label)

    def post(self, at: float, fn: Callback, args: tuple = ()) -> None:
        self._enqueue(at, fn, args, "")

    def post_now(self, fn: Callback, args: tuple = ()) -> None:
        self._enqueue(self.time(), fn, args, "")

    def post_preempting(self, at: float, fn: Callback, args: tuple = ()) -> None:
        self._enqueue(at, fn, args, "")

    def defer(self, fn: Callback, args: tuple = ()) -> None:
        """Inline: the wall clock never diverges the way the
        simulator's lazy charging allows."""
        fn(*args)

    def bootstrap(self, fn: Callable[[], Any]) -> Any:
        if self._in_handler:
            raise SimulationError(
                f"bootstrap on node {self.node_id} during a handler; "
                "use execute_now instead"
            )
        self.now = self.clock.now
        self._in_handler = True
        try:
            return fn()
        finally:
            self._in_handler = False

    def run_entry(self, fn: Callback, args: tuple) -> None:
        """Execute one heap entry or inbound delivery as a handler."""
        self.now = self.clock.now
        self._in_handler = True
        try:
            fn(*args)
        finally:
            self._in_handler = False
            self.events_run += 1

    # ------------------------------------------------------------------
    def charge(self, us: float) -> None:
        if us < 0:
            raise SimulationError(f"negative charge {us}")
        self.now += us
        self.busy_us += us

    @property
    def in_handler(self) -> bool:
        return self._in_handler

    def time(self) -> float:
        return self.now if self._in_handler else self.clock.now

    def passive(self) -> bool:
        """No live heap entry except balancer poll timers."""
        return all(e[2] is None or e[4] == _POLL_LABEL for e in self._heap)

    def live_work(self) -> int:
        return sum(
            1 for e in self._heap if e[2] is not None and e[4] != _POLL_LABEL
        )


class _WireTransport:
    """The worker's view of the interconnect: packets join the
    destination's outbound frame batch (see ``_WorkerHost.send_wire``).
    Supports exactly the AM endpoint's delivery convention
    (``args == (src, handler, payload)``); the callback is never
    invoked on the sending side — the destination process re-binds the
    handler name against its own endpoint."""

    #: Signals the AM endpoint that no peer-endpoint lookup is possible.
    wire_only = True

    def __init__(
        self, host: "_WorkerHost", params, stats: StatsRegistry, faults=None
    ) -> None:
        self.host = host
        self.params = params
        self.stats = stats
        #: Worker-local :class:`~repro.sim.faults.FaultInjector` (or
        #: None).  The AM endpoint caches ``_faults_on`` at
        #: construction, so both are fixed before the kernel is built.
        self.faults = faults
        self._faults_on = faults is not None
        self._c_messages = stats.cell("net.messages")
        self._c_bytes = stats.cell("net.bytes")

    def unicast(
        self,
        src: int,
        dst: int,
        nbytes: int,
        deliver: Callback,
        args: tuple = (),
        *,
        label: str = "",
    ) -> float:
        if src == dst:
            raise NetworkError("unicast requires distinct src/dst; local sends "
                               "bypass the network")
        if nbytes <= 0:
            raise NetworkError(f"message size must be positive, got {nbytes}")
        if len(args) != 3:
            raise NetworkError(
                "the mp wire transport carries AM endpoint packets only "
                f"(src, handler, payload); got {len(args)} args"
            )
        packet = WirePacket(src, dst, args[1], args[2], nbytes, label or args[1])
        self._c_messages.n += 1
        self._c_bytes.n += nbytes
        if self._faults_on:
            faults = self.faults
            rule = faults.rule_for(packet.kind)
            if rule is not None:
                host = self.host
                now = host.node.time()
                extras = faults.sample(rule, packet.kind, src, dst, now)
                # [] = dropped: the sender paid the wire (net.* above,
                # mirroring the sim's faulty path) but the packet never
                # reaches send_wire, so the Safra count never moves and
                # conservation holds by construction.  A delayed or
                # duplicated copy transmits later from the worker heap:
                # the live (non-poll) entry keeps this node non-passive,
                # so the token ring cannot certify quiescence around it,
                # and its count moves at actual transmit time.
                for extra in extras:
                    if extra <= 0.0:
                        host.send_wire(packet)
                    else:
                        host.node.post(now + extra, host.send_wire, (packet,))
                return host.clock.now
        self.host.send_wire(packet)
        return self.host.clock.now

    def reset_contention(self) -> None:
        """No NIC state to forget."""


class _WorkerMachine:
    """The worker-local slice of the platform: exactly the attribute
    surface :class:`~repro.runtime.kernel.Kernel` reads from
    ``runtime.machine``."""

    deterministic = False
    supports_faults = True
    supports_tracing = False
    distributed = True

    def __init__(
        self, host: "_WorkerHost", config: RuntimeConfig, fault_plan=None
    ) -> None:
        self.config = config
        self.stats = StatsRegistry()
        self.trace = NullTraceLog()
        self.spans = NullSpanRecorder()
        self.rng = RngStreams(config.seed)
        self.topology: Topology = make_topology(config.topology, config.num_nodes)
        self.faults = None
        if fault_plan is not None:
            # One injector per worker, seeded per (fault seed, node):
            # each node's draw stream is independent and reproducible
            # against its own send sequence.  Built BEFORE the network
            # and kernel — the endpoint caches ``_faults_on`` and the
            # kernel attaches the reliable sublayer iff
            # ``machine.faults is not None``, both at construction.
            import dataclasses

            from repro.sim.faults import FaultInjector

            base = fault_plan.seed if fault_plan.seed is not None else config.seed
            node_plan = dataclasses.replace(
                fault_plan, seed=_derive_seed(base, f"mp-node-{host.node_id}")
            )
            self.faults = FaultInjector(node_plan, config.seed, self.stats)
        self.network = _WireTransport(
            host, config.network, self.stats, faults=self.faults
        )
        # Keyed by node id so Kernel's ``machine.nodes[node_id]`` works
        # even though only this worker's node exists in-process.
        self.nodes: Dict[int, _WorkerNode] = {host.node_id: host.node}


class _WorkerRuntime:
    """Worker-local stand-in for :class:`~repro.runtime.system.HalRuntime`:
    one kernel, the real :class:`~repro.runtime.frontend.FrontEnd`, and
    the machine shim above.  Protocol code only ever touches this
    surface, so the kernel runs unmodified."""

    def __init__(
        self, host: "_WorkerHost", config: RuntimeConfig, costs, fault_plan=None
    ) -> None:
        from repro.am.broadcast import TreeMulticaster
        from repro.runtime.frontend import FrontEnd
        from repro.runtime.kernel import Kernel

        self.host = host
        self.config = config
        self.costs = costs
        self.machine = _WorkerMachine(host, config, fault_plan)
        self.endpoint_directory: Dict[int, Any] = {}
        self.frontend = FrontEnd(self)
        self.kernels = [Kernel(self, host.node_id)]
        self.multicaster = TreeMulticaster(
            self.machine.topology, self.endpoint_directory
        )
        self.multicaster.install()

    @property
    def num_nodes(self) -> int:
        return self.config.num_nodes

    def quiescent(self) -> bool:
        """The worker's view of global quiescence: the flag the token
        ring's quiesce broadcast sets (reset by any counted receive or
        work-injecting command).  The balancer polls this to stop."""
        return self.host.quiesced


# ======================================================================
# worker host loop + Safra ring
# ======================================================================
class _WorkerHost:
    """The event loop of one worker process: drains the node heap,
    services the control and peer pipes, and participates in the
    token-ring termination protocol."""

    def __init__(
        self,
        node_id: int,
        config: RuntimeConfig,
        costs,
        ctrl,
        peers: Dict[int, Any],
        shm: Optional[tuple] = None,
        fault_plan=None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.ctrl = ctrl
        self.peers = peers
        self.clock = WallClock()
        self.node = _WorkerNode(node_id, self.clock)
        self.quiesced = False
        self._stop = False
        # Safra state: counted sends - counted receives, and the
        # colour (black after any counted receive).  Workers start
        # black: the first round can never falsely succeed.
        self._count = 0
        self._black = True
        self._token: Optional[tuple] = None     # stashed inbound token
        self._detect_rid: Optional[int] = None  # node 0: active request
        self._initiated_rid: Optional[int] = None  # node 0: round launched
        self._arena = None
        if shm is not None:
            # Shm transport: attach the driver's arena (untracked) and
            # build ring channels; there are no OS waitables beyond the
            # control pipe — readiness is a head/tail compare.
            arena_name, conds = shm
            self._arena = attach_arena(
                arena_name, config.num_nodes, config.mp.ring_bytes
            )
            self._my_cond = conds[node_id]
            self.channels: Dict[int, Any] = {
                nid: _ShmChannel(self._arena, conds, node_id, nid)
                for nid in range(config.num_nodes)
                if nid != node_id
            }
            for ch in self.channels.values():
                ch.drain_hook = self._absorb_inbound
            self._by_waitable: Dict[Any, Any] = {}
            self._waitables = [ctrl]
        else:
            self.channels = {
                nid: _make_channel(end) for nid, end in peers.items()
            }
            self._by_waitable = {
                ch.waitable: ch for ch in self.channels.values()
            }
            self._waitables = [ctrl] + [
                self.channels[k].waitable for k in sorted(self.channels)
            ]
        self._chan_list = [self.channels[k] for k in sorted(self.channels)]
        #: Channels that may hold unflushed outbound bytes.
        self._dirty: List[Any] = []
        self._batch_bytes = config.mp.batch_bytes
        self._batch_msgs = config.mp.batch_max_msgs
        #: One-slot payload-bytes cache keyed by args-tuple identity:
        #: a broadcast's tree-forward sends the same tuple to every
        #: child, so the pickle runs once per fan-out, not per child.
        #: The strong reference keeps the identity test sound (a freed
        #: tuple's id could be recycled).
        self._pay_obj: Any = None
        self._pay_bytes: bytes = b""
        self.runtime = _WorkerRuntime(self, config, costs, fault_plan)
        self.kernel = self.runtime.kernels[0]
        #: Worker-local injector (None without a plan); consulted on
        #: the receive path for stall windows.
        self._faults = self.runtime.machine.faults
        stats = self.runtime.machine.stats
        self._c_frames = stats.cell("wire.frames")
        self._c_frame_bytes = stats.cell("wire.frame_bytes")
        self._c_wire_msgs = stats.cell("wire.messages")
        self._c_pay_reuse = stats.cell("wire.payload_reuse")

    # ------------------------------------------------------------------
    # wire
    # ------------------------------------------------------------------
    def send_wire(self, packet: WirePacket) -> None:
        ch = self.channels.get(packet.dst)
        if ch is None:
            raise NetworkError(f"no channel to node {packet.dst}")
        counted = packet.kind not in _CHATTER_KINDS
        if counted:
            self._count += 1
        args = packet.args
        if args is self._pay_obj:
            payload = self._pay_bytes
            self._c_pay_reuse.n += 1
        else:
            try:
                payload = encode_payload(args)
            except _pickling_errors() as exc:
                # The packet never left: the failed send must not count
                # as in flight or quiescence detection would hang.
                if counted:
                    self._count -= 1
                raise NetworkError(
                    f"non-picklable payload in {packet.kind!r} packet "
                    f"{packet.src}->{packet.dst}: {exc}"
                ) from exc
            self._pay_obj = args
            self._pay_bytes = payload
        enc = ch.encoder
        enc.add_message(packet, payload)
        self._c_wire_msgs.n += 1
        if not ch.dirty:
            ch.dirty = True
            self._dirty.append(ch)
        if (
            enc.messages >= self._batch_msgs
            or enc.pending_bytes >= self._batch_bytes
        ):
            self._send_now(ch)

    def _send_now(self, ch) -> None:
        """Seal and transmit the channel's open frame, if any."""
        frame = ch.encoder.take_frame()
        if frame is not None:
            self._c_frames.n += 1
            self._c_frame_bytes.n += len(frame)
            ch.send_frame(frame)

    def _flush_pending(self) -> None:
        """Transmit every channel's open frame.  Runs on the handler
        burst cadence and always before the loop blocks, so a buffered
        message never waits on its destination's behalf."""
        dirty = self._dirty
        if not dirty:
            return
        for ch in dirty:
            ch.dirty = False
            self._send_now(ch)
        dirty.clear()

    def _recv_wire(self, packet: WirePacket) -> None:
        if packet.kind not in _CHATTER_KINDS:
            self._count -= 1
            self._black = True
            self.quiesced = False
        endpoint = self.kernel.endpoint
        faults = self._faults
        if faults is not None and faults.node_faulted(self.node_id):
            # Stall window on this node: the packet *has* arrived (its
            # Safra decrement above already happened — conservation is
            # a wire property, not a dispatch property), but delivery
            # waits out the window on the worker heap.  The live entry
            # keeps this node non-passive, so the token ring cannot
            # certify quiescence across a stalled delivery.
            now = self.clock.now
            shifted = faults.stall_shift(self.node_id, now)
            if shifted > now:
                self.node.post(
                    shifted,
                    endpoint._deliver,
                    (packet.src, packet.handler, packet.args),
                )
                return
        self.node.run_entry(
            endpoint._deliver, (packet.src, packet.handler, packet.args)
        )

    # ------------------------------------------------------------------
    # token ring (Safra)
    # ------------------------------------------------------------------
    def _ring_next(self):
        return self.channels[(self.node_id + 1) % self.config.num_nodes]

    def _send_token(self, rid: int, count: int, black: bool) -> None:
        """Ring-control records flush immediately: the token must not
        sit in a batch waiting for data to keep it company.  They share
        the data stream, so any messages already buffered for the ring
        neighbour flush ahead of the token in FIFO order."""
        ch = self._ring_next()
        ch.encoder.add_token(rid, count, black)
        self._send_now(ch)

    def _send_quiesce(self, rid: int) -> None:
        ch = self._ring_next()
        ch.encoder.add_quiesce(rid)
        self._send_now(ch)

    def _passive(self) -> bool:
        if self.node.in_handler or not self.node.passive():
            return False
        if any(ch.decoder.buffered_bytes for ch in self.channels.values()):
            return False  # a partially-read frame is impending work
        # Unread input is impending work; wait for the loop to drain
        # it (Safra would still be correct without this check — the
        # sender's counter covers in-flight messages — but rounds
        # converge faster when the token never overtakes local input).
        return not self._net_ready()

    def _net_ready(self) -> bool:
        """Unread input exists: published ring bytes (shm) or readable
        waitables (pipe/socket); the control pipe counts either way."""
        if self._arena is not None:
            for ch in self._chan_list:
                if ch.in_ring.readable:
                    return True
            return self.ctrl.poll()
        return bool(conn_wait(self._waitables, 0))

    def _absorb_inbound(self) -> None:
        """Feed every inbound ring to its decoder — buffer only, no
        dispatch, so it is safe mid-handler.  Installed as the shm
        channels' ``drain_hook``: a writer parked on a full outbound
        ring keeps its own consumers' space moving, which breaks the
        both-rings-full write cycle between two busy peers."""
        for ch in self._chan_list:
            ch.read_available()

    def _maybe_advance_ring(self) -> None:
        # One step can unblock the next (dropping a stale token clears
        # the way to initiate the round that superseded it), and the
        # loop blocks in conn_wait right after this returns — so run
        # steps to a fixpoint rather than risking a missed wakeup.
        while self._ring_step():
            pass

    def _ring_step(self) -> bool:
        """Perform at most one ring action; True if state changed."""
        nn = self.config.num_nodes
        # Node 0: start a requested round, exactly once, when passive.
        if (
            self.node_id == 0
            and self._detect_rid is not None
            and self._detect_rid != self._initiated_rid
            and self._token is None
        ):
            if not self._passive():
                return False
            rid = self._detect_rid
            self._initiated_rid = rid
            if nn == 1:
                ok = self._count == 0
                self._finish_round(rid, ok)
                return True
            self._black = False
            self._send_token(rid, 0, False)
            return True
        if self._token is None or not self._passive():
            return False
        rid, count, black = self._token
        self._token = None
        if self.node_id == 0:
            if rid != self._detect_rid:
                return True  # stale token from an abandoned round
            ok = (not black) and (not self._black) and (count + self._count == 0)
            self._finish_round(rid, ok)
        else:
            self._send_token(rid, count + self._count, black or self._black)
            self._black = False
        return True

    def _finish_round(self, rid: int, ok: bool) -> None:
        self._detect_rid = None
        if ok:
            self.quiesced = True
            if self.config.num_nodes > 1:
                self._send_quiesce(rid)
        self.ctrl.send(("detected", rid, ok))

    # ------------------------------------------------------------------
    # commands
    # ------------------------------------------------------------------
    def _do_command(self, payload: tuple):
        from repro.runtime.program import HalProgram

        op = payload[0]
        kernel = self.kernel
        if op == "load":
            _, name, behaviors, tasks = payload
            program = HalProgram(name)
            for cls in behaviors:
                program.behavior(cls)
            program.tasks.update(tasks)
            self.runtime.frontend.load(program)
            if self.node_id != 0:
                # One load, P local links: only node 0 books the
                # program so the merged registry matches the sim's.
                self.machine_stats.incr("load.programs", -1)
            self.quiesced = False
            return None
        if op == "spawn":
            _, cls, args = payload
            self.quiesced = False
            return self.node.bootstrap(
                lambda: kernel.creation.create(cls, args, at=None)
            )
        if op == "spawn_remote":
            _, cls, args, at = payload
            self.quiesced = False
            return self.node.bootstrap(
                lambda: kernel.creation.create(cls, args, at=at)
            )
        if op == "send":
            _, ref, selector, args = payload
            self.quiesced = False
            self.node.bootstrap(
                lambda: kernel.delivery.send_message(ref, selector, args)
            )
            return None
        if op == "grpnew":
            _, cls, n, args, placement = payload
            self.quiesced = False
            return self.node.bootstrap(
                lambda: kernel.groups.grpnew(cls, n, args, placement=placement)
            )
        if op == "broadcast":
            _, group, selector, args = payload
            self.quiesced = False
            self.node.bootstrap(
                lambda: kernel.groups.broadcast(group, selector, args)
            )
            return None
        if op == "task":
            _, fn_name, args = payload
            self.quiesced = False
            self.node.bootstrap(
                lambda: kernel.creation.spawn_task(fn_name, args, at=None)
            )
            return None
        if op == "call":
            _, ref, selector, args, reply_id = payload
            self.quiesced = False

            def make_request():
                target = self._new_collector(reply_id)
                kernel.delivery.send_message(ref, selector, args,
                                             reply_to=target)

            self.node.bootstrap(make_request)
            return None
        if op == "collector":
            _, reply_id = payload
            return self.node.bootstrap(lambda: self._new_collector(reply_id))
        if op == "kick":
            self.quiesced = False
            kernel.balancer.kick()
            return None
        if op == "snap":
            return self._snapshot()
        if op == "audit":
            return self._audit()
        if op == "detect":
            # Only node 0 coordinates; a newer request supersedes any
            # round still waiting to start.
            self._detect_rid = payload[1]
            return None
        if op == "stop":
            self._stop = True
            return None
        raise ReproError(f"worker {self.node_id}: unknown command {op!r}")

    @property
    def machine_stats(self) -> StatsRegistry:
        return self.runtime.machine.stats

    def _new_collector(self, reply_id: int):
        from repro.actors.message import ReplyTarget

        kernel = self.kernel

        def fire(cont) -> None:
            value = cont.values()[0]
            kernel.continuations.discard(cont.cont_id)
            self.ctrl.send(("reply", reply_id, value))

        cont = kernel.continuations.new(1, fire, created_at=kernel.node.now)
        return ReplyTarget(kernel.node_id, cont.cont_id, 0)

    def _audit(self) -> Dict[str, Any]:
        """This worker's slice of the invariant audit: retained-work
        problems and the name-table view (both computed against the
        real kernel, in-process), plus the node's fault ledger — the
        driver chases forwarding chains over the merged tables
        (:func:`repro.sim.invariants.check_invariants`)."""
        from repro.sim.invariants import kernel_audit

        report = kernel_audit(self.kernel)
        report["node"] = self.node_id
        faults = self._faults
        report["ledger"] = list(faults.ledger) if faults is not None else []
        report["fault_summary"] = (
            faults.summary() if faults is not None else {}
        )
        return report

    def _snapshot(self) -> Dict[str, Any]:
        locations = {}
        actors = 0
        for desc in self.kernel.table:
            if desc.is_local and desc.actor is not None:
                actors += 1
                if desc.key is not None:
                    locations[desc.key] = self.node_id
        return {
            "stats": _dump_registry(self.machine_stats),
            "locations": locations,
            "actors": actors,
            "console": [
                (line.time, line.node, line.text)
                for line in self.runtime.frontend.console
            ],
            "busy_us": self.node.busy_us,
            "events_run": self.node.events_run,
            "now": self.clock.now,
            "pending": self.node.live_work(),
            # Safra state (white-box; debugging and tests only).
            "safra": (self._count, self._black, self._passive()),
        }

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _dispatch_ctrl(self, msg: tuple) -> None:
        tag = msg[0]
        if tag == "cmd":
            _, seq, payload = msg
            try:
                value = self._do_command(payload)
            except Exception:
                self.ctrl.send(("err", self.node_id, traceback.format_exc()))
            else:
                self.ctrl.send(("ok", seq, value))
        else:
            self.ctrl.send(
                ("err", self.node_id, f"unknown control tag {tag!r}")
            )

    def _dispatch_record(self, rec: tuple) -> None:
        """Process one decoded wire record.  Errors are reported
        per-record so a poisoned message cannot sink the rest of its
        frame (their Safra decrements must still happen)."""
        tag = rec[0]
        try:
            if tag == "msg":
                self._recv_wire(rec[1])
            elif tag == "tok":
                self._token = rec[1:]
            elif tag == "qsc":
                self.quiesced = True
                nxt = (self.node_id + 1) % self.config.num_nodes
                if nxt != 0:
                    self._send_quiesce(rec[1])
            else:  # pragma: no cover - decoder yields only the above
                raise NetworkError(f"unknown record tag {tag!r}")
        except Exception:
            # Protocol errors inside a handler (e.g. a non-picklable
            # payload on a relayed send) are reported and the worker
            # keeps serving, so shutdown still completes cleanly.
            self.ctrl.send(("err", self.node_id, traceback.format_exc()))

    def _run_ready(self) -> None:
        node = self.node
        heap = node._heap
        ran = 0
        while heap:
            entry = heap[0]
            if entry[2] is None:
                heapq.heappop(heap)
                continue
            if entry[0] > self.clock.now:
                break
            heapq.heappop(heap)
            fn, args = entry[2], entry[3]
            entry[2] = None
            node.run_entry(fn, args)
            ran += 1
            if ran & _BURST_MASK == 0:
                # Burst boundary: push batches out so peers compute
                # while we do, and yield to the network if it's ready.
                self._flush_pending()
                if self._net_ready():
                    break

    def _next_timeout(self) -> Optional[float]:
        heap = self.node._heap
        while heap and heap[0][2] is None:
            heapq.heappop(heap)
        if not heap:
            return None
        return max(0.0, (heap[0][0] - self.clock.now) / 1e6)

    def loop(self) -> None:
        if self._arena is not None:
            self._loop_shm()
        else:
            self._loop_wait()

    def _loop_wait(self) -> None:
        """Pipe/socket event loop: block in ``connection.wait`` on the
        control pipe and every peer waitable."""
        by_waitable = self._by_waitable
        while not self._stop:
            try:
                self._run_ready()
                self._maybe_advance_ring()
                # Everything buffered goes out before we block: a
                # message parked in an encoder while its destination
                # idles would stall the partition (and, because its
                # send was already counted, park the token ring in
                # failed rounds rather than deadlock — but why wait).
                self._flush_pending()
                timeout = self._next_timeout()
                ready = conn_wait(self._waitables, timeout)
                for waitable in ready:
                    ch = by_waitable.get(waitable)
                    if ch is None:  # the control pipe
                        for _ in range(_DRAIN_CAP):
                            if not self.ctrl.poll():
                                break
                            self._dispatch_ctrl(self.ctrl.recv())
                            if self._stop:
                                return
                    else:
                        ch.read_available()
                        for rec in ch.decoder.drain():
                            self._dispatch_record(rec)
            except (EOFError, OSError):
                return  # the driver went away; nothing left to serve
            except Exception:
                try:
                    self.ctrl.send(
                        ("err", self.node_id, traceback.format_exc())
                    )
                except OSError:
                    return

    def _loop_shm(self) -> None:
        """Shm event loop: readiness is a head/tail compare, not a
        waitable — poll the rings and the control pipe, park on this
        worker's Condition (sleeping flag raised) only when nothing
        progressed and no heap entry is due."""
        chans = self._chan_list
        node = self.node
        while not self._stop:
            try:
                before = node.events_run
                self._run_ready()
                self._maybe_advance_ring()
                self._flush_pending()
                progressed = node.events_run != before
                if self.ctrl.poll():
                    progressed = True
                    for _ in range(_DRAIN_CAP):
                        if not self.ctrl.poll():
                            break
                        self._dispatch_ctrl(self.ctrl.recv())
                        if self._stop:
                            return
                for ch in chans:
                    if ch.read_available():
                        progressed = True
                    # A blocked send's drain_hook may have buffered
                    # records behind our back: drain decoders
                    # unconditionally, not just on fresh ring bytes.
                    for rec in ch.decoder.drain():
                        progressed = True
                        self._dispatch_record(rec)
                if progressed:
                    continue
                timeout = self._next_timeout()
                if timeout == 0.0:
                    continue  # a heap entry is already due
                self._sleep_shm(timeout)
            except (EOFError, OSError):
                return  # the driver went away; nothing left to serve
            except Exception:
                try:
                    self.ctrl.send(
                        ("err", self.node_id, traceback.format_exc())
                    )
                except OSError:
                    return

    def _sleep_shm(self, timeout: Optional[float]) -> None:
        """Park with the sleeping flag raised so peers (and the
        driver) notify this worker's Condition.  The readiness recheck
        *inside* the lock shrinks — the bounded wait closes — the
        Dekker window between a peer's tail publish and its read of
        our sleeping flag (DESIGN.md §5f)."""
        wait = _SHM_WAIT_S if timeout is None else min(timeout, _SHM_WAIT_S)
        if wait <= 0.0:
            return
        arena = self._arena
        cond = self._my_cond
        arena.set_sleeping(self.node_id, True)
        try:
            with cond:
                if not self._net_ready():
                    cond.wait(wait)
        finally:
            arena.set_sleeping(self.node_id, False)


def _worker_main(
    node_id: int,
    config: RuntimeConfig,
    costs,
    ctrl,
    peers,
    shm: Optional[tuple] = None,
    fault_plan=None,
) -> None:
    """Process entry point (module-level so a spawn start method can
    pickle it; the fork path just inherits everything)."""
    host = None
    try:
        host = _WorkerHost(node_id, config, costs, ctrl, peers, shm, fault_plan)
        host.loop()
    except BaseException:  # noqa: BLE001 - last-resort report to driver
        try:
            ctrl.send(("err", node_id, traceback.format_exc()))
        except OSError:
            pass
    finally:
        if host is not None and host._arena is not None:
            host._arena.close()


# ======================================================================
# registry marshalling
# ======================================================================
def _dump_registry(reg: StatsRegistry) -> Dict[str, Any]:
    """Raw picklable dump of a worker's registry (including zeros, so
    the driver-side rebuild is a pure accumulate)."""
    return {
        "counters": {k: c.n for k, c in reg._cells.items() if c.n},
        "timers": {
            k: (t.count, t.total_us, t.min_us, t.max_us)
            for k, t in reg.timers.items() if t.count
        },
        "gauges": dict(reg.gauges),
        "hists": {
            k: (list(h.buckets), h.count, h.total, h.min, h.max)
            for k, h in reg.hists.items() if h.count
        },
    }


def _merge_registry(into: StatsRegistry, dump: Dict[str, Any]) -> None:
    for k, n in dump["counters"].items():
        into.incr(k, n)
    for k, (count, total_us, min_us, max_us) in dump["timers"].items():
        t = into.timer(k)
        t.count += count
        t.total_us += total_us
        t.min_us = min(t.min_us, min_us)
        t.max_us = max(t.max_us, max_us)
    for k, v in dump["gauges"].items():
        into.max_gauge(k, v)
    for k, (buckets, _count, total, mn, mx) in dump["hists"].items():
        h = into.hist(k)
        h._fold()  # settle any driver-side staged samples first
        for i, n in enumerate(buckets):
            if n and i < Histogram.NUM_BUCKETS:
                h.buckets[i] += n
        # count is derived from the buckets on read; total/min/max
        # accumulate on the private fields behind the folding
        # properties.
        h._total += total
        h._min = min(h._min, mn)
        h._max = max(h._max, mx)


# ======================================================================
# driver side
# ======================================================================
class _StubNode:
    """Driver-side :class:`~repro.platform.base.NodeExecutor` stand-in.

    The real executor lives in the worker process; this stub satisfies
    the structural protocol (so conformance checks and white-box tests
    can introspect the machine) and refuses actual execution — driver
    work must travel as commands."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.now = 0.0
        self.busy_us = 0.0
        self.events_run = 0

    def _refuse(self) -> "ReproError":
        return ReproError(
            f"node {self.node_id} runs in a worker process; the mp "
            "driver cannot execute on it directly — use runtime commands"
        )

    @property
    def in_handler(self) -> bool:
        return False

    def charge(self, us: float) -> None:
        raise self._refuse()

    def time(self) -> float:
        return self.now

    def execute(self, at: float, fn: Callback, *, label: str = ""):
        raise self._refuse()

    def execute_now(self, fn: Callback, *, label: str = ""):
        raise self._refuse()

    def post(self, at: float, fn: Callback, args: tuple = ()) -> None:
        raise self._refuse()

    def post_now(self, fn: Callback, args: tuple = ()) -> None:
        raise self._refuse()

    def post_preempting(self, at: float, fn: Callback, args: tuple = ()) -> None:
        raise self._refuse()

    def defer(self, fn: Callback, args: tuple = ()) -> None:
        raise self._refuse()

    def bootstrap(self, fn: Callable[[], Any]) -> Any:
        raise self._refuse()


class _StubTransport:
    """Driver-side Transport stand-in (structural conformance only)."""

    def __init__(self, params) -> None:
        self.params = params
        self.faults = None
        self._faults_on = False

    def unicast(self, src, dst, nbytes, deliver, args=(), *, label=""):
        raise ReproError(
            "the mp driver holds no data network; packets travel "
            "between worker processes"
        )

    def reset_contention(self) -> None:
        """Nothing to forget on the driver."""


class MpMachine:
    """A partition of ``config.num_nodes`` worker processes.

    Satisfies :class:`~repro.platform.base.PlatformMachine` with
    ``distributed = True``: the driver side holds stub nodes, a merged
    stats registry (rebuilt from worker snapshots), and the command /
    detection plumbing.  Workers are spawned by :meth:`start_workers`
    (the runtime calls it once it knows the cost model)."""

    deterministic = False
    supports_faults = True
    supports_tracing = False
    distributed = True
    #: Per-process counters are single-threaded (exact) and merged
    #: after quiescence, so conservation arithmetic is trustworthy
    #: even though the machine itself is not deterministic.
    counters_exact = True

    #: Driver wait quantum while a detection round is in flight.
    _POLL_S = 0.0005

    def __init__(
        self,
        config: RuntimeConfig,
        *,
        trace: bool = False,
        faults=None,
    ) -> None:
        self.config = config
        #: The fault plan shipped to every worker (each derives its own
        #: per-node injector seed); None when no faults are injected.
        #: The driver itself holds no injector — ``self.faults`` stays
        #: None and the merged ledger comes back through ``audit()``.
        self.fault_plan = (
            faults
            if faults is not None and not getattr(faults, "empty", True)
            else None
        )
        self.clock = WallClock()
        self.stats = StatsRegistry()
        self.trace = NullTraceLog()
        self.spans = NullSpanRecorder()
        self.rng = RngStreams(config.seed)
        self.topology: Topology = make_topology(config.topology, config.num_nodes)
        self.faults = None
        self.nodes: List[_StubNode] = [
            _StubNode(i) for i in range(config.num_nodes)
        ]
        self.frontend_node = _StubNode(-1)
        self.network = _StubTransport(config.network)
        #: Behaviour names shipped to the workers (the runtime's
        #: on-demand loading consults this instead of a kernel).
        self.loaded_behaviors: set = set()
        self.console_lines: List[tuple] = []
        self._procs: List[Any] = []
        self._ctrl: List[Any] = []
        self._seq = itertools.count(1)
        self._rounds = itertools.count(1)
        self._reply_boxes: Dict[int, List[Any]] = {}
        self._reply_ids = itertools.count(1)
        self._detect_rid: Optional[int] = None
        self._detect_ok: Optional[bool] = None
        self._quiesced = False
        self._pending_hint = 0
        self._locations: Dict[Any, int] = {}
        self._actors = 0
        self._worker_error: Optional[str] = None
        self._shut = False
        self._arena = None
        self._conds: Optional[List[Any]] = None

    # ------------------------------------------------------------------
    # boot / teardown
    # ------------------------------------------------------------------
    def start_workers(self, costs) -> None:
        """Spawn one worker process per node, wired with a control
        pipe each and a full mesh of peer links — duplex pipes or
        UNIX-domain socketpairs per ``config.mp.transport``."""
        if self._procs:
            return
        import multiprocessing as _mp

        methods = _mp.get_all_start_methods()
        ctx = get_context("fork" if "fork" in methods else None)
        nn = self.config.num_nodes
        transport = self.config.mp.transport
        use_sockets = transport == "socket"
        shm_info = None
        peer_ends: List[Dict[int, Any]] = [dict() for _ in range(nn)]
        if transport == "shm":
            # One arena of per-edge rings plus one Condition per worker
            # (park/notify for empty rings, full rings and control
            # commands alike).  Conditions travel as Process args —
            # inheritable under fork and spawn — while the arena goes
            # by *name*: SharedMemory itself does not pickle, and the
            # worker must attach untracked anyway (shmring docstring).
            self._arena = create_arena(nn, self.config.mp.ring_bytes)
            self._conds = [ctx.Condition() for _ in range(nn)]
            shm_info = (self._arena.name, self._conds)
        else:
            for i in range(nn):
                for j in range(i + 1, nn):
                    if use_sockets:
                        a, b = socket.socketpair()
                    else:
                        a, b = ctx.Pipe(duplex=True)
                    peer_ends[i][j] = a
                    peer_ends[j][i] = b
        for i in range(nn):
            parent, child = ctx.Pipe(duplex=True)
            self._ctrl.append(parent)
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    i, self.config, costs, child, peer_ends[i],
                    shm_info, self.fault_plan,
                ),
                name=f"repro-mp-node-{i}",
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
        # The driver holds no end of the data network: drop our copies
        # so a dead worker surfaces as EOF on its peers, not a hang.
        for ends in peer_ends:
            for end in ends.values():
                end.close()

    def _notify_worker(self, node: int) -> None:
        """Shm mode: kick the worker's Condition after a control send —
        a parked worker would otherwise only notice at its next bounded
        wakeup (≤ ``_SHM_WAIT_S``)."""
        if self._conds is not None:
            cond = self._conds[node]
            with cond:
                cond.notify()

    def shutdown(self) -> None:
        """Stop and join every worker process.  Idempotent."""
        if self._shut:
            return
        self._shut = True
        for node, conn in enumerate(self._ctrl):
            try:
                conn.send(("cmd", next(self._seq), ("stop",)))
            except (OSError, ValueError):
                pass
            self._notify_worker(node)
        for proc in self._procs:
            proc.join(timeout=2.0)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._ctrl:
            conn.close()
        if self._arena is not None:
            # Workers have joined (or been killed): release the
            # driver's mapping and destroy the segment.
            self._arena.close()
            self._arena.unlink()
            self._arena = None

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def _raise_worker_error(self) -> None:
        if self._worker_error is not None:
            err, self._worker_error = self._worker_error, None
            raise ReproError(f"mp worker failed:\n{err}")

    def _note_event(self, msg: tuple) -> None:
        """Record an unsolicited control event (reply, detection
        result, worker error)."""
        tag = msg[0]
        if tag == "reply":
            box = self._reply_boxes.get(msg[1])
            if box is not None:
                box.append(msg[2])
        elif tag == "detected":
            if msg[1] == self._detect_rid:
                self._detect_ok = msg[2]
        elif tag == "err":
            self._worker_error = msg[2]

    def _drain_events(self, timeout: float = 0.0) -> bool:
        """Read every available control event; True if any arrived."""
        got = False
        for conn in conn_wait(self._ctrl, timeout):
            while conn.poll():
                self._note_event(conn.recv())
                got = True
        self._raise_worker_error()
        return got

    def command(self, node: int, payload: tuple) -> Any:
        """Send one command to ``node`` and block for its ack, noting
        any interleaved unsolicited events."""
        self._raise_worker_error()
        seq = next(self._seq)
        conn = self._ctrl[node]
        try:
            conn.send(("cmd", seq, payload))
        except _pickling_errors() as exc:
            raise ReproError(
                f"the mp backend requires picklable driver payloads "
                f"(module-level behaviours/tasks, plain-data args): {exc}"
            ) from exc
        self._notify_worker(node)
        while True:
            msg = conn.recv()
            if msg[0] == "ok" and msg[1] == seq:
                return msg[2]
            self._note_event(msg)
            self._raise_worker_error()

    def broadcast_command(self, payload: tuple) -> List[Any]:
        """Send the same command to every worker; wait for all acks."""
        self._raise_worker_error()
        seqs = []
        for node, conn in enumerate(self._ctrl):
            seq = next(self._seq)
            seqs.append(seq)
            try:
                conn.send(("cmd", seq, payload))
            except _pickling_errors() as exc:
                raise ReproError(
                    f"the mp backend requires picklable driver payloads "
                    f"(module-level behaviours/tasks, plain-data args): {exc}"
                ) from exc
            self._notify_worker(node)
        values = []
        for conn, seq in zip(self._ctrl, seqs):
            while True:
                msg = conn.recv()
                if msg[0] == "ok" and msg[1] == seq:
                    values.append(msg[2])
                    break
                self._note_event(msg)
                self._raise_worker_error()
        return values

    # ------------------------------------------------------------------
    # driver operations (used by HalRuntime's distributed branches)
    # ------------------------------------------------------------------
    def load_program(self, program) -> None:
        from repro.actors.behavior import behavior_of

        payload = (
            "load",
            program.name,
            tuple(program.behaviors),
            dict(program.tasks),
        )
        self._quiesced = False
        self.broadcast_command(payload)
        for cls in program.behaviors:
            self.loaded_behaviors.add(behavior_of(cls).name)

    def new_reply_box(self) -> tuple:
        reply_id = next(self._reply_ids)
        box: List[Any] = []
        self._reply_boxes[reply_id] = box
        return reply_id, box

    # ------------------------------------------------------------------
    # execution control + termination detection
    # ------------------------------------------------------------------
    def run(
        self,
        *,
        until: Optional[float] = None,
        until_idle: bool = True,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Drive the partition until the token ring certifies global
        quiescence, a predicate fires, or the wall-clock deadline
        ``until`` (µs) passes.  Workers run continuously; this loop
        only coordinates detection and drains control events."""
        if not self._procs:
            return self.clock.now
        self._quiesced = False
        self.broadcast_command(("kick",))
        self._start_detection()
        try:
            while True:
                if stop_when is not None and stop_when():
                    break
                if until is not None and self.clock.now >= until:
                    break
                self._drain_events(self._POLL_S)
                if self._detect_ok is not None:
                    ok, self._detect_ok = self._detect_ok, None
                    if ok:
                        self._quiesced = True
                        # Late events (a reply raced the detection
                        # result on another pipe) are still owed to the
                        # caller: drain once more before returning.
                        self._drain_events(0.0)
                        break
                    self._start_detection()
        finally:
            self._detect_rid = None
            self._refresh()
        return self.clock.now

    def _start_detection(self) -> None:
        rid = next(self._rounds)
        self._detect_rid = rid
        self._detect_ok = None
        self.command(0, ("detect", rid))

    def quiescent(self) -> bool:
        """True when the token ring certifies no work remains.

        A cached positive verdict is trusted (only driver-issued
        commands can inject new work, and each of those clears it);
        otherwise a fresh detection round runs, bounded by a short
        deadline so a genuinely busy partition answers False promptly
        instead of blocking until its work drains."""
        if self._quiesced:
            return True
        if not self._procs or self._shut:
            return True
        self._start_detection()
        deadline = self.clock.now + 250_000.0  # 0.25 s
        while self.clock.now < deadline:
            self._drain_events(self._POLL_S)
            if self._detect_ok is not None:
                ok, self._detect_ok = self._detect_ok, None
                if ok:
                    self._quiesced = True
                    return True
                # A failed round may just have whitened a ring that
                # was black from earlier traffic; retry until the
                # deadline (the token parks at any busy worker, so a
                # genuinely active partition simply times out).
                self._start_detection()
        return False

    def net_idle(self) -> bool:
        return self.quiescent()

    def register_work_probe(self, probe) -> None:
        """Driver-side probes are meaningless here — worker passivity
        is observed by the token ring inside each process."""

    # ------------------------------------------------------------------
    # observation (snapshot merge)
    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        """Pull a snapshot from every worker and rebuild the merged
        registry, location map and console."""
        if not self._procs or self._shut:
            return
        snaps = self.broadcast_command(("snap",))
        self.stats.reset()
        self._locations = {}
        self._actors = 0
        self._pending_hint = 0
        console: List[tuple] = []
        for nid, snap in enumerate(snaps):
            _merge_registry(self.stats, snap["stats"])
            self._locations.update(snap["locations"])
            self._actors += snap["actors"]
            self._pending_hint += snap["pending"]
            console.extend(snap["console"])
            stub = self.nodes[nid]
            stub.busy_us = snap["busy_us"]
            stub.events_run = snap["events_run"]
            stub.now = snap["now"]
        self.console_lines = sorted(console)

    #: Bound on the reliable-layer settle wait in :meth:`audit`.
    _AUDIT_SETTLE_S = 5.0

    def audit(self) -> List[Dict[str, Any]]:
        """Collect every worker's invariant-audit slice (retained-work
        problems, name-table view, fault ledger) and refresh the merged
        stats, so the driver-side ``check_invariants`` sees exact
        post-quiescence counters.  See ``_WorkerHost._audit``.

        Steal chatter is excluded from Safra counting, so its reliable
        envelopes can be dropped *behind* the token and still be
        mid-retransmit when the ring certifies quiescence.  That
        residue self-heals (retransmit timers keep firing after
        certification; the balancers have stopped, so it strictly
        drains) — settle-wait for it, bounded, and let a *persistent*
        unacked envelope surface as the real violation it is."""
        import time as _time

        deadline = _time.monotonic() + self._AUDIT_SETTLE_S
        while True:
            reports = self.broadcast_command(("audit",))
            if not any(r["rel_pending"] for r in reports):
                break
            if _time.monotonic() >= deadline:  # pragma: no cover
                break
            _time.sleep(0.002)
        self._refresh()
        return reports

    def locate(self, address) -> Optional[int]:
        self._refresh()
        return self._locations.get(address)

    def actor_locations(self) -> Dict[Any, int]:
        self._refresh()
        return dict(self._locations)

    def total_actors(self) -> int:
        self._refresh()
        return self._actors

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.config.num_nodes

    def node(self, node_id: int) -> _StubNode:
        return self.nodes[node_id]

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def pending(self) -> int:
        return 0 if self._quiesced else self._pending_hint

    @property
    def events_executed(self) -> int:
        return sum(n.events_run for n in self.nodes)

    def cpu_utilisation(self) -> List[float]:
        elapsed = self.clock.now or 1.0
        return [min(1.0, n.busy_us / elapsed) for n in self.nodes]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MpMachine(P={self.num_nodes}, topology={self.config.topology}, "
            f"t={self.clock.now:.1f}us)"
        )
