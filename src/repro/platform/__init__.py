"""Execution backends behind one seam.

The runtime builds its machine through :func:`make_machine`, selecting
a backend by name (usually from ``RuntimeConfig.backend``):

``sim``
    The discrete-event simulator — deterministic, fault-injectable,
    the backend every timing table and invariant replay runs on.

``threaded``
    Real time: one OS thread per node, wall-clock time, convergence
    semantics.  Same protocols, no determinism, no fault injection.

``mp``
    Distributed: one OS *process* per node, batched binary frames
    over pipes, sockets or shared-memory rings, token-ring quiescence
    detection.  The only backend where the GIL does not serialise
    node execution; no determinism (fault injection *is* supported,
    with per-(seed, node) deterministic draw streams), and
    non-picklable payloads are hard errors.

``asyncio``
    Cluster: one OS process per node behind a real TCP (or UNIX)
    socket mesh driven by an asyncio event loop — the mp backend's
    frames, Safra ring and fault plans, but over sockets that could
    span hosts, with the reliable-AM sublayer always attached and
    cluster-wide ``(birthplace, descriptor)`` name resolution with
    FIR-style back-patching on the driver.

Backend modules are imported lazily so constructing a sim machine
never pays for ``threading`` machinery and vice versa, and so the
interface module stays import-cycle-free.
"""

from __future__ import annotations

from typing import Optional

from repro.config import RuntimeConfig
from repro.errors import ReproError
from repro.platform.base import (
    Clock,
    NodeExecutor,
    PlatformMachine,
    TimerHandle,
    Transport,
)

#: Names accepted by :func:`make_machine` / ``RuntimeConfig.backend``.
BACKENDS = ("sim", "threaded", "mp", "asyncio")


def make_machine(
    config: RuntimeConfig,
    *,
    backend: Optional[str] = None,
    trace: bool = False,
    faults=None,
) -> PlatformMachine:
    """Construct the partition for ``config`` on the chosen backend.

    ``backend`` defaults to ``config.backend``.  ``faults`` is a
    :class:`~repro.sim.faults.FaultPlan`; passing a non-empty plan to
    a backend without fault support raises :class:`ReproError`.
    """
    name = backend if backend is not None else getattr(config, "backend", "sim")
    if name == "sim":
        from repro.platform.simbackend import SimMachine

        return SimMachine(config, trace=trace, faults=faults)
    if name == "threaded":
        from repro.platform.threaded import ThreadedMachine

        return ThreadedMachine(config, trace=trace, faults=faults)
    if name == "mp":
        from repro.platform.mp import MpMachine

        return MpMachine(config, trace=trace, faults=faults)
    if name == "asyncio":
        from repro.platform.asyncio_net import AsyncioMachine

        return AsyncioMachine(config, trace=trace, faults=faults)
    raise ReproError(
        f"unknown backend {name!r}; expected one of {', '.join(BACKENDS)}"
    )


__all__ = [
    "BACKENDS",
    "Clock",
    "NodeExecutor",
    "PlatformMachine",
    "TimerHandle",
    "Transport",
    "make_machine",
]
