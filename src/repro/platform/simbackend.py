"""The discrete-event backend: the original simulator behind the seam.

:class:`SimMachine` is a thin adapter that assembles the event engine
(:mod:`repro.sim.engine`), the contention/fault network model
(:mod:`repro.sim.network`) and the measurement stack into the
:class:`~repro.platform.base.PlatformMachine` shape.  It deliberately
adds nothing to the per-event path — the PR 1 hot-path representation
(plain list heap entries, bound-method payloads) is untouched, and
runs remain bit-reproducible given a seed.

This is the only backend that supports deterministic replay and fault
injection, which is why it stays the default and the one CI's
fault-fuzz and invariant jobs run on.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import RuntimeConfig
from repro.rng import RngStreams
from repro.sim.engine import SimNode, Simulator
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.network import Network
from repro.stats import StatsRegistry
from repro.topology import Topology, make_topology
from repro.tracing import (
    NullSpanRecorder,
    NullTraceLog,
    SpanRecorder,
    TraceLog,
)


class SimMachine:
    """A simulated partition of ``config.num_nodes`` processing elements.

    The partition manager (front-end) is modelled as a distinguished
    host outside the data network; it is represented by
    :attr:`frontend_node`, a :class:`SimNode` used for program loading
    and I/O (see :class:`repro.runtime.frontend.FrontEnd`).
    """

    #: Given a seed, every run is bit-identical: events fire in
    #: ``(time, seq)`` order and all randomness flows from RngStreams.
    deterministic = True
    supports_faults = True
    supports_tracing = True
    distributed = False

    def __init__(
        self,
        config: RuntimeConfig,
        *,
        trace: bool = False,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.config = config
        self.sim = Simulator(max_events=config.max_events)
        self.stats = StatsRegistry()
        # Untraced machines (the common case) get the inert null log so
        # trace costs are exactly zero on the message hot path.  The
        # span recorder follows the same null-object pattern.
        self.trace = TraceLog(enabled=True) if trace else NullTraceLog()
        self.rng = RngStreams(config.seed)
        # Head-sampling draws come from a dedicated substream so the
        # decision sequence is a pure function of the seed and adding
        # (or removing) tracing never perturbs other RNG consumers.
        self.spans = (
            SpanRecorder(
                enabled=True,
                capacity=config.tracing.span_capacity,
                sample_rate=config.tracing.sample_rate,
                sampler=self.rng.stream("tracing.head"),
            )
            if trace
            else NullSpanRecorder()
        )
        self.topology: Topology = make_topology(config.topology, config.num_nodes)
        self.nodes: List[SimNode] = [
            SimNode(i, self.sim) for i in range(config.num_nodes)
        ]
        # An empty plan degrades to no plan so the fault-free fast
        # paths (one cached boolean in Network and the AM endpoint)
        # stay engaged.
        if faults is not None and faults.empty:
            faults = None
        self.faults: Optional[FaultInjector] = (
            FaultInjector(faults, config.seed, self.stats)
            if faults is not None
            else None
        )
        self.network = Network(
            self.sim, self.topology, self.nodes, config.network, self.stats,
            faults=self.faults,
        )
        #: The partition manager's CPU (not on the data network).
        self.frontend_node = SimNode(-1, self.sim)
        # Quiescence-probe counter cells, bound once (net_idle is
        # polled repeatedly by the load balancer while the machine
        # idles, so cell lookups must not be on that path).
        stats = self.stats
        self._c_am_sends = stats.cell("am.sends")
        self._c_am_delivered = stats.cell("am.delivered")
        # Only the workless req/deny probes are excluded from the
        # in-flight arithmetic.  The symmetric ``steal.proto_*`` audit
        # cells also count grants, which carry real work and must hold
        # quiescence open while in flight.
        self._c_steal_sent = stats.cell("steal.chatter_sent")
        self._c_steal_recv = stats.cell("steal.chatter_recv")
        # Under fault injection the packet books only balance once
        # drops (sent, never delivered) and duplicates (delivered
        # twice) are added back in.
        self._c_dropped = stats.cell("faults.dropped_packets")
        self._c_dup = stats.cell("faults.dup_packets")
        # Reliability acks are pure control traffic; like steal chatter
        # they must not hold quiescence open (idle nodes trading polls
        # always have an ack briefly in flight).
        self._c_ack_sent = stats.cell("rel.ack_sent")
        self._c_ack_recv = stats.cell("rel.ack_recv")
        self._c_ack_dropped = stats.cell("faults.dropped_acks")
        self._c_ack_dup = stats.cell("faults.dup_acks")
        # Work probes: callables the runtime registers (one per
        # dispatcher) so quiescence can see ready-but-unscheduled work.
        self._work_probes: List = []

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.config.num_nodes

    def node(self, node_id: int) -> SimNode:
        return self.nodes[node_id]

    def run(self, **kwargs) -> float:
        """Drain the event heap; returns the final simulated time."""
        return self.sim.run(**kwargs)

    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def pending(self) -> int:
        """Queued (non-cancelled) events.  O(1)."""
        return self.sim.pending

    @property
    def events_executed(self) -> int:
        """Total handler invocations across all nodes."""
        return self.sim.events_executed

    def net_idle(self) -> bool:
        """True when no application message is in flight.

        Computed from global counter arithmetic — sound here because
        the discrete-event machine mutates counters one event at a
        time.  Steal-protocol chatter and reliability acks are control
        traffic and excluded (see the cell comments in ``__init__``).
        """
        inflight = (
            self._c_am_sends.n + self._c_dup.n
            - self._c_dropped.n - self._c_am_delivered.n
        )
        steal_chatter = self._c_steal_sent.n - self._c_steal_recv.n
        ack_chatter = (
            self._c_ack_sent.n + self._c_ack_dup.n
            - self._c_ack_dropped.n - self._c_ack_recv.n
        )
        return inflight - steal_chatter - ack_chatter <= 0

    def register_work_probe(self, probe) -> None:
        """Register a callable reporting True while runnable work is
        held above the platform (a kernel's ready queue)."""
        self._work_probes.append(probe)

    def quiescent(self) -> bool:
        """No message in flight and no probe holding runnable work."""
        if not self.net_idle():
            return False
        return not any(probe() for probe in self._work_probes)

    def cpu_utilisation(self) -> List[float]:
        """Fraction of elapsed simulated time each node spent busy."""
        elapsed = self.sim.now or 1.0
        return [min(1.0, n.busy_us / elapsed) for n in self.nodes]

    def shutdown(self) -> None:
        """Nothing to release: the simulator owns no OS resources."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimMachine(P={self.num_nodes}, topology={self.config.topology}, "
            f"t={self.sim.now:.1f}us)"
        )
