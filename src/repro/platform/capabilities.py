"""The backend capability matrix — one table, every consumer.

PR 7 shipped a fault-rejection message that said "run fault plans on
backend='sim'" from *two* backends while a third was about to start
supporting them: each rejection site hand-wrote its own list of who
supports what, and the lists drifted.  This module is the fix — a
single declarative table that every consumer derives from:

- the backends' class flags (``deterministic`` / ``supports_faults`` /
  ``supports_tracing`` / ``distributed``) are asserted against it by
  ``tests/test_capabilities.py``;
- rejection errors (:func:`unsupported_message`) name the backends
  that *do* support the feature, computed, not transcribed;
- the README's backend matrix embeds :func:`capability_table` verbatim
  (same test pins it), so docs cannot say something the code doesn't.

The table is data, not policy: a backend module never imports this to
decide behaviour — it declares its flags and this module is the
cross-check and the message formatter.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: capability key -> human-readable feature name used in messages.
FEATURES: Dict[str, str] = {
    "deterministic": "deterministic replay",
    "supports_faults": "fault injection",
    "supports_tracing": "span tracing",
    "distributed": "process-per-node execution",
}

#: backend name -> capability flags.  Must match the machine classes'
#: class attributes exactly (SimMachine / ThreadedMachine / MpMachine /
#: AsyncioMachine); ``tests/test_capabilities.py`` fails the build on
#: any divergence.
CAPABILITIES: Dict[str, Dict[str, bool]] = {
    "sim": {
        "deterministic": True,
        "supports_faults": True,
        "supports_tracing": True,
        "distributed": False,
    },
    "threaded": {
        "deterministic": False,
        "supports_faults": False,
        "supports_tracing": True,
        "distributed": False,
    },
    "mp": {
        "deterministic": False,
        "supports_faults": True,
        "supports_tracing": False,
        "distributed": True,
    },
    "asyncio": {
        "deterministic": False,
        "supports_faults": True,
        "supports_tracing": False,
        "distributed": True,
    },
}


def supports(backend: str, capability: str) -> bool:
    return CAPABILITIES[backend][capability]


def backends_supporting(capability: str) -> Tuple[str, ...]:
    """Backends with the capability, in registry order."""
    return tuple(
        name for name, caps in CAPABILITIES.items() if caps[capability]
    )


def unsupported_message(backend: str, capability: str) -> str:
    """The canonical rejection line: names the feature and the
    backends that actually have it, straight from the table."""
    feature = FEATURES[capability]
    alternatives = backends_supporting(capability)
    if alternatives:
        hint = "use --backend " + " or ".join(alternatives)
    else:  # pragma: no cover - every capability has a backend today
        hint = "no backend supports it"
    return (
        f"the {backend} backend does not support {feature} "
        f"({capability}=no); {hint}"
    )


def capability_table() -> str:
    """The matrix as a GitHub-flavoured markdown table (embedded in
    the README and pinned by tests — regenerate, don't hand-edit)."""
    names = list(CAPABILITIES)
    lines = [
        "| capability | " + " | ".join(f"`{n}`" for n in names) + " |",
        "|---|" + "---|" * len(names),
    ]
    for cap, feature in FEATURES.items():
        row = [f"| {feature} (`{cap}`)"]
        for name in names:
            row.append("yes" if CAPABILITIES[name][cap] else "no")
        lines.append(" | ".join(row) + " |")
    return "\n".join(lines)
