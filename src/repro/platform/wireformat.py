"""Compact binary wire format for the distributed backends.

PR 5's mp backend pickled a whole :class:`~repro.platform.base.
WirePacket` per message and paid one pipe syscall per packet — which
is why it lost to the in-process backends despite real parallelism.
This module is the remedy, shaped the way PR 1 reshaped the simulator
hot path: everything that crosses an OS boundary is a *frame* — one
length-prefixed batch of records coalesced per destination — and the
per-message cost shrinks to a ``struct``-packed header plus a payload
pickle of the *args only*.

Frame layout (all integers network byte order)::

    frame   := u32 body_len | body
    body    := record+
    record  := MSG | DEF | TOK | QSC | MSGR
    MSG     := u8 0x01 | i16 src | i16 dst | u16 handler_id
               | u16 kind_id | u32 nbytes | u32 payload_len | payload
    DEF     := u8 0x02 | u16 id | u16 name_len | name (utf-8)
    TOK     := u8 0x03 | u32 rid | i64 count | u8 black
    QSC     := u8 0x04 | u32 rid
    MSGR    := u8 0x05 | i16 src | i16 dst | u16 handler_len
               | u16 kind_len | u32 nbytes | u32 payload_len
               | handler (utf-8) | kind (utf-8) | payload

``handler_id``/``kind_id`` index a **per-connection string table**:
the sender interns each handler name the first time it crosses a given
connection by emitting a ``DEF`` record ahead of the first ``MSG``
that references it, and the receiver's table grows append-only in step
(ids are assigned densely from 0 in emission order).  Hot handler
names — ``deliver_keyed``, ``fir_req``, steal chatter — therefore cost
two bytes per message after their first appearance instead of a
pickled string.  Once a connection's table is full (``MAX_INTERNED``
ids assigned) further *new* names degrade gracefully to ``MSGR``
records carrying both names raw — slower per message, but a long-
lived connection with a pathological name population keeps working
instead of dying with a protocol error.  ``TOK``/``QSC`` carry the
Safra token ring's termination-detection traffic in the same stream,
so control messages keep FIFO order with the data they chase.

The encoder accepts a pre-serialised payload so a broadcast can
pickle its args **once per batch** and reuse the bytes across every
destination (see ``_WorkerHost.send_wire``).  Framing never changes
message *identity*: one frame may carry many messages, and quiescence
accounting must count the messages, not the frames — the decoder
yields one record per message precisely so receivers can keep that
arithmetic honest.

This module is transport machinery: only concrete backends (``repro.
platform.mp`` and its kin) may import it.  ``tools/check_layering.py``
rejects any ``repro.runtime`` / ``repro.am`` import of it, exactly as
for the backend modules themselves.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import NetworkError
from repro.platform.base import WirePacket

#: Pickle protocol for message payloads (args tuples only — never the
#: packet object, whose header travels struct-packed).
PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Record type tags.
MSG, DEF, TOK, QSC, MSGR = 0x01, 0x02, 0x03, 0x04, 0x05

_LEN = struct.Struct("!I")
_MSG = struct.Struct("!BhhHHII")
_DEF = struct.Struct("!BHH")
_TOK = struct.Struct("!BIqB")
_QSC = struct.Struct("!BI")
#: Raw-name message: same header shape as ``_MSG`` but the two u16
#: fields are utf-8 *lengths* of the handler/kind names that follow.
_MSGR = struct.Struct("!BhhHHII")

#: Interning ids are u16: a connection may carry at most this many
#: distinct handler names (a registry holds a few dozen in practice).
MAX_INTERNED = 0xFFFF

#: A decoded record: ``("msg", WirePacket)``, ``("tok", rid, count,
#: black)`` or ``("qsc", rid)``.  ``DEF`` records are consumed by the
#: decoder itself (they mutate the string table, nothing else).
Record = Tuple[Any, ...]


def encode_payload(args: tuple) -> bytes:
    """Serialise a message's args tuple.  Raises whatever pickle
    raises — callers translate to :class:`NetworkError` at the send
    site, where the Safra counter can be rolled back."""
    return pickle.dumps(args, PICKLE_PROTOCOL)


def decode_payload(data: bytes) -> tuple:
    return pickle.loads(data)


class FrameEncoder:
    """Per-connection outbound batch buffer.

    Append messages (and ring-control records) with the ``add_*``
    methods; :meth:`take_frame` seals everything appended so far into
    one length-prefixed frame and resets the buffer.  The interning
    table survives across frames — it is per *connection*, not per
    frame — so a name is defined exactly once per connection lifetime.
    """

    __slots__ = ("_ids", "_buf", "messages")

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._buf = bytearray()
        #: Messages in the open (unsealed) frame.
        self.messages = 0

    # ------------------------------------------------------------------
    def _intern(self, name: str) -> Optional[int]:
        """Id for ``name``, interning it (and emitting its ``DEF``) on
        first sight — or ``None`` when the table is already full, in
        which case the caller falls back to a raw-name record."""
        ident = self._ids.get(name)
        if ident is None:
            ident = len(self._ids)
            if ident > MAX_INTERNED:
                return None
            self._ids[name] = ident
            raw = name.encode("utf-8")
            if len(raw) > 0xFFFF:
                raise NetworkError(f"handler name too long: {name[:32]!r}...")
            self._buf += _DEF.pack(DEF, ident, len(raw))
            self._buf += raw
        return ident

    def add_message(
        self, packet: WirePacket, payload: Optional[bytes] = None
    ) -> None:
        """Append one message.  ``payload`` is the pre-pickled args
        (pass it to share one serialisation across destinations);
        ``None`` pickles ``packet.args`` here."""
        if payload is None:
            payload = encode_payload(packet.args)
        hid = self._intern(packet.handler)
        kid = (
            hid if packet.kind == packet.handler else self._intern(packet.kind)
        )
        if hid is None or kid is None:
            # Intern table full and this message names something new:
            # degrade to a raw-name record rather than killing the
            # connection.  Both names travel explicitly (no sentinel
            # for kind==handler — the overflow path optimises for
            # unambiguity, not bytes).
            hraw = packet.handler.encode("utf-8")
            kraw = packet.kind.encode("utf-8")
            if len(hraw) > 0xFFFF or len(kraw) > 0xFFFF:
                raise NetworkError(
                    f"handler name too long: {packet.handler[:32]!r}..."
                )
            self._buf += _MSGR.pack(
                MSGR, packet.src, packet.dst, len(hraw), len(kraw),
                packet.nbytes, len(payload),
            )
            self._buf += hraw
            self._buf += kraw
        else:
            self._buf += _MSG.pack(
                MSG, packet.src, packet.dst, hid, kid, packet.nbytes,
                len(payload),
            )
        self._buf += payload
        self.messages += 1

    def add_token(self, rid: int, count: int, black: bool) -> None:
        self._buf += _TOK.pack(TOK, rid, count, 1 if black else 0)

    def add_quiesce(self, rid: int) -> None:
        self._buf += _QSC.pack(QSC, rid)

    # ------------------------------------------------------------------
    @property
    def pending_bytes(self) -> int:
        """Bytes accumulated in the open frame (0 when empty)."""
        return len(self._buf)

    def take_frame(self) -> Optional[bytes]:
        """Seal and return the open frame (length prefix included), or
        ``None`` when nothing is buffered."""
        if not self._buf:
            return None
        frame = _LEN.pack(len(self._buf)) + bytes(self._buf)
        self._buf.clear()
        self.messages = 0
        return frame


class FrameDecoder:
    """Per-connection inbound reassembly + record parser.

    Byte-stream transports deliver arbitrary chunks — half a frame,
    three frames and a header, one byte at a time — so :meth:`feed`
    only buffers; :meth:`drain` parses every *complete* frame and
    returns its records, leaving any trailing partial frame buffered
    for the next read.  The string table mirrors the sender's encoder:
    ``DEF`` records grow it append-only and are not surfaced.
    """

    __slots__ = ("_names", "_buf")

    def __init__(self) -> None:
        self._names: List[str] = []
        self._buf = bytearray()

    @property
    def interned(self) -> Tuple[str, ...]:
        """The received string table (white-box for tests)."""
        return tuple(self._names)

    @property
    def buffered_bytes(self) -> int:
        """Bytes held for a not-yet-complete frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> None:
        self._buf += data

    def drain(self) -> List[Record]:
        """Parse and return the records of every complete frame."""
        buf = self._buf
        total = len(buf)
        off = 0
        out: List[Record] = []
        while total - off >= _LEN.size:
            (body_len,) = _LEN.unpack_from(buf, off)
            end = off + _LEN.size + body_len
            if end > total:
                break
            self._parse_body(buf, off + _LEN.size, end, out)
            off = end
        if off:
            del buf[:off]
        return out

    # ------------------------------------------------------------------
    def _parse_body(
        self, buf: bytearray, off: int, end: int, out: List[Record]
    ) -> None:
        names = self._names
        while off < end:
            tag = buf[off]
            if tag == MSG:
                _, src, dst, hid, kid, nbytes, plen = _MSG.unpack_from(buf, off)
                off += _MSG.size
                if off + plen > end:
                    raise NetworkError("message payload overruns its frame")
                args = decode_payload(bytes(buf[off:off + plen]))
                off += plen
                try:
                    handler = names[hid]
                    kind = names[kid]
                except IndexError:
                    raise NetworkError(
                        f"undefined handler-name id {max(hid, kid)} "
                        f"(table holds {len(names)})"
                    ) from None
                out.append(
                    ("msg", WirePacket(src, dst, handler, args, nbytes, kind))
                )
            elif tag == DEF:
                _, ident, name_len = _DEF.unpack_from(buf, off)
                off += _DEF.size
                if off + name_len > end:
                    raise NetworkError("name record overruns its frame")
                name = bytes(buf[off:off + name_len]).decode("utf-8")
                off += name_len
                if ident != len(names):
                    raise NetworkError(
                        f"out-of-order intern definition: id {ident} with "
                        f"{len(names)} names known"
                    )
                names.append(name)
            elif tag == MSGR:
                _, src, dst, hlen, klen, nbytes, plen = _MSGR.unpack_from(
                    buf, off
                )
                off += _MSGR.size
                if off + hlen + klen + plen > end:
                    raise NetworkError("message payload overruns its frame")
                handler = bytes(buf[off:off + hlen]).decode("utf-8")
                off += hlen
                kind = bytes(buf[off:off + klen]).decode("utf-8")
                off += klen
                args = decode_payload(bytes(buf[off:off + plen]))
                off += plen
                out.append(
                    ("msg", WirePacket(src, dst, handler, args, nbytes, kind))
                )
            elif tag == TOK:
                _, rid, count, black = _TOK.unpack_from(buf, off)
                off += _TOK.size
                out.append(("tok", rid, count, bool(black)))
            elif tag == QSC:
                (_, rid) = _QSC.unpack_from(buf, off)
                off += _QSC.size
                out.append(("qsc", rid))
            else:
                raise NetworkError(f"unknown wire record tag {tag:#x}")


def iter_messages(records: List[Record]) -> Iterator[WirePacket]:
    """Convenience for tests: just the packets of a record list."""
    for rec in records:
        if rec[0] == "msg":
            yield rec[1]
