"""The platform seam: interfaces the runtime consumes, backends provide.

The HAL runtime (name tables, FIR chasing, aliases, join
continuations, load balancing) is defined against an abstract active-
message machine, not against a particular execution substrate.  This
module pins down that abstraction as four narrow protocols:

``Clock``
    A monotonic microsecond clock.  The simulator's clock only moves
    when events fire; the threaded backend's is the host's wall clock.

``NodeExecutor``
    One processing element's CPU: serialised handler execution,
    cancellable timers, CPU-time accounting, and a driver-side
    ``bootstrap`` entry point.  The upper layers only ever run code
    *on* a node through this interface.

``Transport``
    The partition interconnect: point-to-point ``unicast`` with a
    byte-cost model, delivering by scheduling the handler on the
    destination node.  Ordering guarantee: per (src, dst) pair,
    delivery is FIFO.

``PlatformMachine``
    The booted partition: N node executors, a transport, the
    observability sinks (stats/trace/spans), RNG streams, topology,
    and execution control (``run`` to a deadline/predicate/idle,
    ``net_idle`` for quiescence detection, ``shutdown``).

These are :class:`typing.Protocol` classes — backends satisfy them
structurally, no registration or inheritance required — which keeps
the simulator's hot-path representation (plain attributes, bound
methods in heap entries) untouched.  The layering lint
(``tools/check_layering.py``) enforces that ``repro.runtime`` and
``repro.am`` import execution machinery only from ``repro.platform``.

Feature support differs per backend and is advertised by flags on the
machine.  The single source of truth is the declarative table in
:mod:`repro.platform.capabilities` (tests pin the class flags, the
rejection messages and the README matrix against it):

========================  ===========  ============  ====  =========
capability                sim          threaded      mp    asyncio
========================  ===========  ============  ====  =========
``deterministic``         yes          no            no    no
``supports_faults``       yes          no            yes   yes
``supports_tracing``      yes          yes           no    no
``distributed``           no           no            yes   yes
========================  ===========  ============  ====  =========

A *distributed* machine runs each node in its own OS process: nothing
is shared, every message crosses an operating-system boundary as a
:class:`WirePacket` — batched per destination into compact binary
frames (:mod:`repro.platform.wireformat`) over a pipe mesh, a
UNIX-domain socket mesh, or shared-memory SPSC rings
(:mod:`repro.platform.shmring`) — and quiescence is detected by a
token-ring protocol rather than shared counters.  The runtime facade
consults the flag to route driver operations as commands instead of
direct calls.  Fault injection on mp is per-worker: each node derives
its own injector seed, so the draw stream per (seed, node) is
reproducible even though the global interleaving is not.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    List,
    NamedTuple,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

Callback = Callable[..., None]


class WirePacket(NamedTuple):
    """The explicit, picklable wire form of an active-message packet.

    On shared-memory backends delivery hands a bound method straight to
    the destination node's heap; on a distributed backend the packet
    must serialise, so the AM layer describes it as plain data: the
    destination re-binds ``handler`` against its own endpoint's handler
    table.  ``kind`` is the logical message kind (the transmit label)
    used for chatter classification and quiescence accounting.

    A packet is the unit of *identity* (quiescence counts packets),
    not the unit of transmission: transports may batch many packets
    into one frame with a struct-packed header and interned handler
    names, serialising only ``args`` (see
    :mod:`repro.platform.wireformat`).
    """

    src: int
    dst: int
    handler: str
    args: tuple
    nbytes: int
    kind: str


@runtime_checkable
class Clock(Protocol):
    """A monotonic microsecond clock."""

    @property
    def now(self) -> float:
        """Current time in microseconds since machine boot."""
        ...


@runtime_checkable
class TimerHandle(Protocol):
    """Handle on deferred work scheduled via :meth:`NodeExecutor.execute`."""

    def cancel(self) -> None:
        """Prevent the work from running.  Idempotent; a no-op once
        the work has started."""
        ...


@runtime_checkable
class NodeExecutor(Protocol):
    """One processing element's CPU.

    All handler execution on a node is serialised: at most one handler
    runs at a time, and within a handler ``now`` is the node-local
    time that :meth:`charge` advances.  The ``post_*`` methods are the
    allocation-lean per-message fast path; ``execute*`` return a
    cancellable handle for timers.
    """

    node_id: int
    #: Node-local clock, valid during a handler execution.  Writable —
    #: the AM layer advances it directly on its hot path.
    now: float
    #: Total microseconds of CPU time charged on this node.
    busy_us: float

    @property
    def in_handler(self) -> bool:
        """True while a handler is executing on this node."""
        ...

    def charge(self, us: float) -> None:
        """Consume ``us`` microseconds of CPU time on this node."""
        ...

    def time(self) -> float:
        """The node's best notion of current time: node-local time
        inside a handler, global platform time otherwise.  Timers arm
        relative to this."""
        ...

    def execute(self, at: float, fn: Callback, *, label: str = "") -> TimerHandle:
        """Run ``fn`` on this node no earlier than time ``at``;
        returns a cancellable handle (the timer primitive)."""
        ...

    def execute_now(self, fn: Callback, *, label: str = "") -> TimerHandle:
        """Run ``fn`` on this node as soon as the CPU is free."""
        ...

    def post(self, at: float, fn: Callback, args: tuple = ()) -> None:
        """Fast path of :meth:`execute`: no handle, args pass-through."""
        ...

    def post_now(self, fn: Callback, args: tuple = ()) -> None:
        """Fast path of :meth:`execute_now`."""
        ...

    def post_preempting(self, at: float, fn: Callback, args: tuple = ()) -> None:
        """Deliver ``fn`` at ``at`` even if the CPU is busy — the
        paper's node manager steals the processor to service network
        requests.  Backends without preemption degrade to :meth:`post`.
        """
        ...

    def defer(self, fn: Callback, args: tuple = ()) -> None:
        """Run ``fn(*args)`` at this node's current local time.

        On the simulator this bridges the node-local clock (which lazy
        charging lets run ahead) back onto the global event heap; on
        real-time backends the clocks never diverge and the call is
        made inline.  The AM send path uses this so message injection
        happens at a consistent global time.
        """
        ...

    def bootstrap(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` on this node synchronously from the external
        driver (front-end program loading, test injection).  Returns
        ``fn``'s value.  Must not be called from inside a handler."""
        ...


@runtime_checkable
class Transport(Protocol):
    """The partition interconnect.

    Delivery contract: ``deliver(*args)`` runs on the *destination*
    node's executor; per (src, dst) pair deliveries are FIFO; the
    return value is the time the sender's NIC finishes injecting (the
    sender's CPU is occupied until then).
    """

    def unicast(
        self,
        src: int,
        dst: int,
        nbytes: int,
        deliver: Callback,
        args: tuple,
        label: str = "",
    ) -> float:
        """Send ``nbytes`` from ``src`` to ``dst``; schedule
        ``deliver(*args)`` on the destination node.  ``label`` names
        the message kind for tracing and quiescence classification.
        Returns injection-done time at the source."""
        ...

    def reset_contention(self) -> None:
        """Forget NIC/pairwise serialisation state (benchmark reruns)."""
        ...


@runtime_checkable
class PlatformMachine(Protocol):
    """A booted partition of ``num_nodes`` processing elements."""

    nodes: Sequence[NodeExecutor]
    #: The partition manager's CPU (not on the data network).
    frontend_node: NodeExecutor
    network: Transport

    #: True when runs are bit-reproducible given a seed.  Invariant
    #: checks that rely on exact global counter arithmetic (packet
    #: conservation) gate on this.
    deterministic: bool
    #: True when a fault plan can be installed on this backend.
    supports_faults: bool
    #: True when nodes run in separate OS processes (nothing shared;
    #: driver operations travel as commands, packets as framed
    #: :class:`WirePacket` data).
    distributed: bool

    @property
    def num_nodes(self) -> int: ...

    @property
    def now(self) -> float:
        """Current platform time in microseconds."""
        ...

    @property
    def pending(self) -> int:
        """Queued work items (events/messages/timers) not yet run."""
        ...

    def node(self, node_id: int) -> NodeExecutor: ...

    def run(
        self,
        *,
        until: Optional[float] = None,
        until_idle: bool = True,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Execute until idle, a deadline, or a predicate.  Returns
        the platform time reached."""
        ...

    def net_idle(self) -> bool:
        """True when no application message is in flight anywhere.

        Pure control chatter — steal-protocol probes and reliability
        acks — is excluded: idle nodes trading polls always have one
        briefly in flight, and it must not hold quiescence open.
        """
        ...

    def register_work_probe(self, probe: Callable[[], bool]) -> None:
        """Register a callable that returns True while its owner still
        holds runnable work (e.g. a dispatcher's ready queue).  The
        machine consults every probe in :meth:`quiescent`; distributed
        backends, whose detection runs remotely, may ignore probes
        registered on the driver."""
        ...

    def quiescent(self) -> bool:
        """True when no work remains anywhere: the network is idle and
        no registered work probe reports runnable items.  On a
        distributed backend this runs a fresh detection round (token
        ring) instead of reading shared counters."""
        ...

    def cpu_utilisation(self) -> List[float]:
        """Fraction of elapsed time each node spent busy."""
        ...

    def shutdown(self) -> None:
        """Release backend resources (threads, queues).  Idempotent."""
        ...
