"""Real-time threaded backend: one OS thread per processing element.

Where the simulator models a CM-5 partition, this backend *is* a tiny
one: every node runs its own worker thread draining a per-node inbound
queue (a priority heap of ``[due_us, seq, fn, args]`` entries, the
same shape the simulator uses), the clock is the host's wall clock in
microseconds, and messages cross between nodes by enqueueing onto the
destination's heap.  The runtime above is unchanged — name tables,
FIR chasing, migration and work stealing execute the same protocol
code over the same :mod:`repro.platform.base` interfaces.

What this backend guarantees:

- **per-node serialisation** — at most one handler runs on a node at a
  time (the worker thread is the node's CPU);
- **per-(src, dst) FIFO** — a global sequence counter orders same-due
  entries, so two sends from one handler arrive in order;
- **sound quiescence** — ``run()`` returns when the machine's live
  count (queued entries + armed timers + running handlers) reaches
  zero.  The count is decremented only *after* a handler returns, and
  new work is only enqueued from counted contexts or the driver, so
  zero can never be observed while a handler might still fan out.

What it does not guarantee: determinism (thread interleaving is the
host scheduler's) and fault injection (the injector needs the modelled
network).  Wire latency, NIC serialisation and back-pressure are not
modelled — delivery is as fast as the host runs — so timing-derived
measurements are meaningless here; use the sim backend for tables.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from time import perf_counter
from typing import Any, Callable, List, Optional

from repro.config import NetworkParams, RuntimeConfig
from repro.errors import NetworkError, ReproError, SimulationError
from repro.rng import RngStreams
from repro.stats import StatsRegistry
from repro.topology import Topology, make_topology
from repro.tracing import (
    NullSpanRecorder,
    NullTraceLog,
    SpanRecorder,
    TraceLog,
)

Callback = Callable[..., None]

#: Pure control chatter: message kinds excluded from the in-flight
#: count so idle nodes trading steal polls (or reliability acks) never
#: hold quiescence open.  Mirrors the counter arithmetic in
#: ``SimMachine.net_idle``.
_CHATTER_KINDS = frozenset({"steal_req", "steal_deny", "__rel_ack__"})


class WallClock:
    """Monotonic host clock in microseconds since construction."""

    __slots__ = ("_t0",)

    def __init__(self) -> None:
        self._t0 = perf_counter()

    @property
    def now(self) -> float:
        return (perf_counter() - self._t0) * 1e6


class _Timer:
    """Cancellable handle on a queued entry (threaded analogue of the
    simulator's :class:`~repro.sim.engine.Event`)."""

    __slots__ = ("_entry", "_node", "label")

    def __init__(self, node: "ThreadedNode", entry: list, label: str = "") -> None:
        self._node = node
        self._entry = entry
        self.label = label

    @property
    def cancelled(self) -> bool:
        return self._entry[2] is None

    def cancel(self) -> None:
        """Prevent the entry from running.  Idempotent; a no-op once
        the worker has started (or consumed) it."""
        node = self._node
        with node._lock:
            entry = self._entry
            if entry[2] is None:
                return
            entry[2] = None
            entry[3] = ()
            node._cv.notify()
        node.machine._dec_live()


class ThreadedNode:
    """A processing element backed by one worker thread.

    Matches the :class:`~repro.platform.base.NodeExecutor` protocol,
    including the writable ``now``/``busy_us`` attributes the AM hot
    path mutates directly.  ``now`` is set from the wall clock at
    handler entry; :meth:`charge` advances it (pure accounting — the
    thread does not sleep, so charged costs do not slow real time).
    """

    __slots__ = (
        "node_id", "machine", "clock", "now", "busy_us", "_in_handler",
        "events_run", "_heap", "_lock", "_cv", "_exec_lock", "_stopped",
        "_thread",
    )

    def __init__(self, node_id: int, machine: "ThreadedMachine") -> None:
        self.node_id = node_id
        self.machine = machine
        self.clock = machine.clock
        #: Node-local clock, valid during a handler execution.
        self.now: float = 0.0
        #: Total microseconds of CPU time charged on this node.
        self.busy_us: float = 0.0
        self._in_handler = False
        #: Entries executed by this node's worker (read for the
        #: machine-wide events_executed total; written only by the
        #: owning worker thread, so the sum is exact at quiescence).
        self.events_run: int = 0
        self._heap: list[list] = []
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        #: Serialises handler execution against driver-side bootstrap.
        self._exec_lock = threading.Lock()
        self._stopped = False
        self._thread = threading.Thread(
            target=self._worker, name=f"repro-node-{node_id}", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # scheduling (thread-safe: called from any node's worker or driver)
    # ------------------------------------------------------------------
    def _enqueue(self, at: float, fn: Callback, args: tuple) -> list:
        self.machine._inc_live()
        entry = [at, next(self.machine._seq), fn, args]
        with self._lock:
            heapq.heappush(self._heap, entry)
            self._cv.notify()
        return entry

    def execute(self, at: float, fn: Callback, *, label: str = "") -> _Timer:
        """Run ``fn`` on this node no earlier than wall time ``at``."""
        return _Timer(self, self._enqueue(at, fn, ()), label)

    def execute_now(self, fn: Callback, *, label: str = "") -> _Timer:
        return _Timer(self, self._enqueue(self.time(), fn, ()), label)

    def post(self, at: float, fn: Callback, args: tuple = ()) -> None:
        self._enqueue(at, fn, args)

    def post_now(self, fn: Callback, args: tuple = ()) -> None:
        self._enqueue(self.time(), fn, args)

    def post_preempting(self, at: float, fn: Callback, args: tuple = ()) -> None:
        """No preemption in real time: the entry queues like any other
        (the worker is between handlers often enough that network
        servicing is not starved)."""
        self._enqueue(at, fn, args)

    def defer(self, fn: Callback, args: tuple = ()) -> None:
        """Inline: the wall clock and the node clock never diverge the
        way the simulator's lazy charging lets them."""
        fn(*args)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        heap = self._heap
        cv = self._cv
        clock = self.clock
        while True:
            with cv:
                fn: Optional[Callback] = None
                while fn is None:
                    if self._stopped:
                        return
                    if heap:
                        entry = heap[0]
                        if entry[2] is None:  # tombstone
                            heapq.heappop(heap)
                            continue
                        wait_us = entry[0] - clock.now
                        if wait_us <= 0:
                            heapq.heappop(heap)
                            # Consume under the lock so a late cancel()
                            # through a handle is a no-op.
                            fn = entry[2]
                            args = entry[3]
                            entry[2] = None
                            break
                        cv.wait(timeout=wait_us / 1e6)
                    else:
                        cv.wait()
            with self._exec_lock:
                self.now = clock.now
                self._in_handler = True
                try:
                    fn(*args)
                finally:
                    self._in_handler = False
                    self.events_run += 1
            self.machine._dec_live()

    def bootstrap(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` on this node synchronously from the driver thread,
        serialised against the worker (the driver borrows the node's
        CPU, exactly like the simulator's driver-side bootstrap)."""
        if self._in_handler and threading.current_thread() is self._thread:
            raise SimulationError(
                f"bootstrap on node {self.node_id} during a handler; "
                "use execute_now instead"
            )
        with self._exec_lock:
            self.now = self.clock.now
            self._in_handler = True
            try:
                return fn()
            finally:
                self._in_handler = False

    # ------------------------------------------------------------------
    def charge(self, us: float) -> None:
        """Account ``us`` microseconds of modelled CPU time.  Advances
        the node-local clock but never sleeps — modelled costs are
        bookkeeping here, not real time."""
        if us < 0:
            raise SimulationError(f"negative charge {us}")
        self.now += us
        self.busy_us += us

    @property
    def in_handler(self) -> bool:
        return self._in_handler

    def time(self) -> float:
        return self.now if self._in_handler else self.clock.now

    def stop(self) -> None:
        with self._lock:
            self._stopped = True
            self._cv.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadedNode({self.node_id})"


class ThreadedTransport:
    """Inter-thread message passing shaped like the sim's ``Network``.

    ``unicast`` enqueues the delivery on the destination node's heap.
    No latency, serialisation or congestion is modelled — the point of
    this backend is protocol execution on a real substrate, not
    timing.  Application messages (everything but steal/ack chatter)
    are counted in flight from injection until their delivery handler
    *returns*, which is what makes :meth:`ThreadedMachine.net_idle`
    exact rather than a racy counter difference.
    """

    def __init__(
        self,
        machine: "ThreadedMachine",
        topology: Topology,
        nodes: List["ThreadedNode"],
        params: NetworkParams,
        stats: StatsRegistry,
    ) -> None:
        self.machine = machine
        self.topology = topology
        self.nodes = nodes
        self.params = params
        self.stats = stats
        self.faults = None
        self._faults_on = False
        self._c_messages = stats.cell("net.messages")
        self._c_bytes = stats.cell("net.bytes")
        self._lock = threading.Lock()
        #: Application messages in flight (injected, handler not yet
        #: returned).  Exact: guarded by ``_lock``.
        self._msgs = 0

    # ------------------------------------------------------------------
    def unicast(
        self,
        src: int,
        dst: int,
        nbytes: int,
        deliver: Callback,
        args: tuple = (),
        *,
        label: str = "",
    ) -> float:
        if src == dst:
            raise NetworkError("unicast requires distinct src/dst; local sends "
                               "bypass the network")
        if nbytes <= 0:
            raise NetworkError(f"message size must be positive, got {nbytes}")
        self._c_messages.n += 1
        self._c_bytes.n += nbytes
        now = self.machine.clock.now
        node = self.nodes[dst]
        if label in _CHATTER_KINDS:
            node.post_preempting(now, deliver, args)
        else:
            with self._lock:
                self._msgs += 1
            node.post_preempting(now, self._deliver_counted, (deliver, args))
        return now

    def _deliver_counted(self, deliver: Callback, args: tuple) -> None:
        try:
            deliver(*args)
        finally:
            with self._lock:
                self._msgs -= 1

    # ------------------------------------------------------------------
    def in_flight(self) -> int:
        with self._lock:
            return self._msgs

    def reset_contention(self) -> None:
        """No NIC state to forget."""


class ThreadedMachine:
    """A partition of ``config.num_nodes`` worker threads.

    Satisfies :class:`~repro.platform.base.PlatformMachine`.  Stats
    counters are written from many threads without locks — under the
    GIL increments can race and lose updates, which is acceptable for
    diagnostics but is exactly why quiescence here rests on the exact
    ``_live`` / transport counts instead of counter arithmetic.
    """

    deterministic = False
    supports_faults = False
    supports_tracing = True
    distributed = False

    #: Driver poll interval while waiting on a predicate or deadline.
    _POLL_S = 0.0005

    def __init__(
        self,
        config: RuntimeConfig,
        *,
        trace: bool = False,
        faults=None,
    ) -> None:
        if faults is not None and not getattr(faults, "empty", False):
            from repro.platform.capabilities import unsupported_message

            raise ReproError(unsupported_message("threaded", "supports_faults"))
        self.config = config
        self.clock = WallClock()
        self.stats = StatsRegistry()
        self.trace = TraceLog(enabled=True) if trace else NullTraceLog()
        self.rng = RngStreams(config.seed)
        # Same dedicated sampling substream as the sim backend; on this
        # backend the draw sequence is still deterministic even though
        # interleaving is not, so which *rooting order* wins a draw may
        # differ run to run.
        self.spans = (
            SpanRecorder(
                enabled=True,
                capacity=config.tracing.span_capacity,
                sample_rate=config.tracing.sample_rate,
                sampler=self.rng.stream("tracing.head"),
            )
            if trace
            else NullSpanRecorder()
        )
        self.topology: Topology = make_topology(config.topology, config.num_nodes)
        self.faults = None
        # Live-work accounting: queued entries + armed timers + running
        # handlers.  Zero is a sound termination signal because the
        # count is only decremented after a handler returns, and only
        # counted contexts (or the driver, before run()) enqueue.
        self._live = 0
        self._live_cv = threading.Condition()
        self._work_probes: List = []
        self._seq = itertools.count()
        self._shut = False
        self.nodes: List[ThreadedNode] = [
            ThreadedNode(i, self) for i in range(config.num_nodes)
        ]
        self.network = ThreadedTransport(
            self, self.topology, self.nodes, config.network, self.stats
        )
        #: The partition manager's CPU (not on the data network).
        self.frontend_node = ThreadedNode(-1, self)

    # ------------------------------------------------------------------
    # live-work accounting
    # ------------------------------------------------------------------
    def _inc_live(self) -> None:
        with self._live_cv:
            self._live += 1

    def _dec_live(self) -> None:
        with self._live_cv:
            self._live -= 1
            if self._live <= 0:
                self._live_cv.notify_all()

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.config.num_nodes

    def node(self, node_id: int) -> ThreadedNode:
        return self.nodes[node_id]

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def pending(self) -> int:
        with self._live_cv:
            return max(0, self._live)

    @property
    def events_executed(self) -> int:
        return sum(n.events_run for n in self.nodes) + self.frontend_node.events_run

    def run(
        self,
        *,
        until: Optional[float] = None,
        until_idle: bool = True,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Wait until the machine drains (live count zero), a predicate
        fires, or the wall-clock deadline ``until`` (µs) passes.  The
        workers run continuously; this only blocks the driver."""
        clock = self.clock
        with self._live_cv:
            while True:
                if stop_when is not None and stop_when():
                    break
                # A drained machine returns even when a predicate never
                # fires (e.g. a lost reply): there is nothing left that
                # could make it true.
                if self._live <= 0:
                    break
                if until is not None and clock.now >= until:
                    break
                if stop_when is not None or until is not None:
                    self._live_cv.wait(timeout=self._POLL_S)
                else:
                    self._live_cv.wait()
        return clock.now

    def net_idle(self) -> bool:
        """True when no application message is in flight (exact count
        held by the transport; chatter excluded by construction)."""
        return self.network.in_flight() == 0

    def register_work_probe(self, probe) -> None:
        """Register a callable reporting True while runnable work is
        held above the platform (a kernel's ready queue)."""
        self._work_probes.append(probe)

    def quiescent(self) -> bool:
        """No message in flight and no probe holding runnable work."""
        if not self.net_idle():
            return False
        return not any(probe() for probe in self._work_probes)

    def cpu_utilisation(self) -> List[float]:
        """Fraction of elapsed wall time each node spent charged busy.
        Indicative only: charges are modelled costs, not host CPU."""
        elapsed = self.clock.now or 1.0
        return [min(1.0, n.busy_us / elapsed) for n in self.nodes]

    def shutdown(self) -> None:
        """Stop and join every worker thread.  Idempotent."""
        if self._shut:
            return
        self._shut = True
        for n in self.nodes:
            n.stop()
        self.frontend_node.stop()
        for n in self.nodes:
            n._thread.join(timeout=2.0)
        self.frontend_node._thread.join(timeout=2.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ThreadedMachine(P={self.num_nodes}, "
            f"topology={self.config.topology}, t={self.clock.now:.1f}us)"
        )
