"""Plain-text table rendering shared by the benchmark harness and the
``python -m repro`` command-line interface."""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    note: str = "",
) -> str:
    """Render an aligned text table with a title rule and an optional
    trailing note."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in str_rows)) if str_rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def render_hists(stats, title: str = "Latency histograms (simulated us)") -> str:
    """Render every populated histogram of a :class:`StatsRegistry`
    (duck-typed: anything with a ``hists`` mapping of Histogram-like
    objects) as one table row with its percentile estimates."""
    rows = []
    for name, h in sorted(stats.hists.items()):
        if not h.count:
            continue
        rows.append((name, h.count, fmt_us(h.min), fmt_us(h.p50),
                     fmt_us(h.p95), fmt_us(h.p99), fmt_us(h.max),
                     fmt_us(h.mean)))
    if not rows:
        return f"{title}\n{'=' * len(title)}\n(no samples recorded)"
    return render_table(
        title,
        ["histogram", "count", "min", "p50", "p95", "p99", "max", "mean"],
        rows,
        note="percentiles are estimated from power-of-two buckets, "
             "clamped to the observed [min, max]",
    )


def fmt_us(us: float) -> str:
    return f"{us:.2f}"


def fmt_ms(us: float) -> str:
    return f"{us / 1000.0:.2f}"


def fmt_s(us: float) -> str:
    return f"{us / 1e6:.3f}"
