"""Dispatch-plan selection (§6.3).

For every send site the compiler chooses one of three mechanisms:

- ``static``  — a unique receiver type was inferred: emit a static
  method dispatch guarded by the runtime's locality-check routine;
- ``lookup``  — finitely many receiver types: the emitted code also
  obtains the function pointer via the runtime's method-lookup routine;
- ``generic`` — unknown receiver: the generic buffered send.

Receivers whose behaviour ever executes ``become`` are demoted from
``static`` to ``lookup`` (the method table may change under our feet).
Static type checking happens here too: a send to a known receiver set
lacking the selector is a compile error — HAL is untyped but
statically type-checked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.actors.behavior import Behavior
from repro.errors import TypeInferenceError
from repro.hal.dependence import DependenceResult
from repro.hal.inference import InferenceResult, SendSite

PlanKind = str  # "static" | "lookup" | "generic"


@dataclass
class SitePlan:
    """The verdict for one (sender method, selector) send group."""

    kind: PlanKind
    receivers: Optional[FrozenSet[str]]
    reason: str


@dataclass
class BehaviorPlans:
    """All plans of one behaviour, keyed by (method, selector)."""

    behavior: str
    plans: Dict[Tuple[str, str], SitePlan] = field(default_factory=dict)

    def plan_for(self, method: str, selector: str) -> PlanKind:
        plan = self.plans.get((method, selector))
        return plan.kind if plan is not None else "generic"


def select_plans(
    behaviors: Dict[str, Behavior],
    inference: InferenceResult,
    dependence: DependenceResult,
    *,
    strict: bool = True,
) -> Tuple[Dict[str, BehaviorPlans], List[str]]:
    """Produce per-behaviour dispatch plans and type diagnostics."""
    diags: List[str] = []
    becomers = {
        b for (b, _), p in dependence.purity.items() if p.becomes
    }
    out: Dict[str, BehaviorPlans] = {
        name: BehaviorPlans(name) for name in behaviors
    }

    # Group sites by (sender behavior, sender method, selector): the
    # runtime consults plans at that granularity.
    grouped: Dict[Tuple[str, str, str], List[SendSite]] = {}
    for site in inference.sites:
        if site.selector is None:
            continue  # dynamic selector: stays generic
        grouped.setdefault((site.behavior, site.method, site.selector), []).append(site)

    for (bname, mname, selector), sites in grouped.items():
        receivers = _merge_receivers(sites)
        plan = _plan_for_receivers(
            bname, mname, selector, receivers, behaviors, becomers, diags,
            strict=strict,
        )
        out[bname].plans[(mname, selector)] = plan

    return out, diags


def _merge_receivers(sites: List[SendSite]) -> Optional[FrozenSet[str]]:
    merged: set = set()
    for s in sites:
        if s.receivers is None:
            return None
        merged |= s.receivers
    return frozenset(merged)


def _plan_for_receivers(
    bname: str,
    mname: str,
    selector: str,
    receivers: Optional[FrozenSet[str]],
    behaviors: Dict[str, Behavior],
    becomers: FrozenSet[str] | set,
    diags: List[str],
    *,
    strict: bool,
) -> SitePlan:
    if receivers is None:
        return SitePlan("generic", None, "receiver type unknown (top)")
    if not receivers:
        return SitePlan("generic", receivers, "no type information reached site")
    missing = [
        r for r in receivers
        if r in behaviors and not behaviors[r].has_method(selector)
    ]
    if missing:
        msg = (
            f"{bname}.{mname}: send of {selector!r} to behaviour(s) "
            f"{sorted(missing)} which declare no such method"
        )
        if strict:
            raise TypeInferenceError(msg)
        diags.append(f"warning: {msg}")
        return SitePlan("generic", receivers, "selector missing on receiver")
    unknown = [r for r in receivers if r not in behaviors]
    if unknown:
        return SitePlan("lookup", receivers, f"unloaded receiver(s) {unknown}")
    if len(receivers) == 1:
        (only,) = receivers
        if only in becomers:
            return SitePlan(
                "lookup", receivers,
                f"{only} uses become; method table not fixed",
            )
        return SitePlan("static", receivers, f"unique receiver type {only}")
    return SitePlan("lookup", receivers, f"{len(receivers)} possible types")
