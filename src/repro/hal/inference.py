"""Constraint-based type inference over behaviour method ASTs (§2, [27]).

The compiler analyses each ``@method`` body (obtained with
``inspect.getsource``) and computes, for every *send site*, the set of
behaviours the receiver may have at runtime.  Inference is a classic
monotone fixpoint:

- type variables exist for behaviour attributes (``self.x``), method
  parameters, method locals and method return values;
- ``ctx.new(B, ...)`` / ``ctx.grpnew(B, ...)`` / ``ctx.me`` /
  ``group.member(i)`` introduce reference atoms;
- ``ctx.send(r, "sel", a1..)`` and ``yield ctx.request(...)`` flow the
  argument types into the receiver behaviour's parameters and flow the
  receiver method's return type back to the requester;
- joins happen at assignments; everything unanalysable is ⊤ (``ANY``).

The result is deliberately *advisory*: dispatch plans derived from it
select cost paths, while the runtime still resolves methods by name,
so an over-optimistic inference can never produce wrong behaviour —
only a mis-charged microsecond (the same property the paper's
locality-check-guarded static dispatch has).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.actors.behavior import Behavior
from repro.errors import CompileError
from repro.hal.lower import walk_scope
from repro.hal.types import (
    ANY,
    BOTTOM,
    GroupOf,
    RefOf,
    SCALAR,
    TypeVal,
    atom,
    join,
    join_all,
    ref_behaviors,
)

#: Fixpoint iteration cap (the capped lattice converges long before).
MAX_ROUNDS = 64


@dataclass
class SendSite:
    """One ``ctx.send`` / ``ctx.request`` occurrence."""

    behavior: str
    method: str
    selector: Optional[str]  # None when not a string literal
    lineno: int
    is_request: bool
    #: Receiver behaviours inferred at fixpoint (None = ⊤).
    receivers: Optional[frozenset] = None


@dataclass
class MethodAnalysis:
    """Parsed form of one behaviour method.

    ``node`` carries *absolute* line numbers (the parse re-anchors the
    dedented snippet at the function's position in its source file), so
    every downstream diagnostic and report line points into the real
    file.  For methods the AST frontend lowered, ``node`` is the stored
    post-lowering AST — re-reading source would see the original
    plain-def body, not the generator the runtime executes.
    """

    behavior: str
    name: str
    params: List[str]
    node: ast.FunctionDef
    has_yield: bool
    analyzable: bool
    #: True when the body came out of the AST lowering frontend
    #: (plain-def source, compiler-inserted split points).
    lowered: bool = False


@dataclass
class InferenceResult:
    """Everything downstream passes need."""

    sites: List[SendSite] = field(default_factory=list)
    methods: Dict[Tuple[str, str], MethodAnalysis] = field(default_factory=dict)
    #: (behavior, method) pairs whose source could not be analysed.
    opaque_methods: List[Tuple[str, str]] = field(default_factory=list)
    diagnostics: List[str] = field(default_factory=list)

    def sites_of(self, behavior: str, method: str) -> List[SendSite]:
        return [
            s for s in self.sites
            if s.behavior == behavior and s.method == method
        ]


def _parse_method(behavior_name: str, name: str, fn) -> MethodAnalysis:
    """Parse one method into an AST, tolerating failure.

    Lowered methods hand back their stored post-lowering AST:
    ``inspect`` would return the *original* plain-def source (the
    rewritten code object deliberately keeps the original file and
    line numbers), which no longer matches what the runtime executes.
    """
    lowered_ast = getattr(fn, "__hal_lowered_ast__", None)
    if lowered_ast is not None:
        func = lowered_ast  # already absolute-lineno'd by the lowerer
        lowered = True
    else:
        try:
            lines, firstlineno = inspect.getsourcelines(fn)
            tree = ast.parse(textwrap.dedent("".join(lines)))
        except (OSError, TypeError, SyntaxError, IndentationError):
            return MethodAnalysis(behavior_name, name, [], None, False, False)  # type: ignore[arg-type]
        func = next(
            (n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)), None
        )
        if func is None:
            return MethodAnalysis(behavior_name, name, [], None, False, False)  # type: ignore[arg-type]
        ast.increment_lineno(func, firstlineno - 1)
        lowered = False
    arg_names = [a.arg for a in func.args.args]
    # skip (self, ctx)
    params = arg_names[2:] if len(arg_names) >= 2 else []
    has_yield = any(
        isinstance(n, (ast.Yield, ast.YieldFrom)) for n in walk_scope(func)
    )
    return MethodAnalysis(
        behavior_name, name, params, func, has_yield, True, lowered=lowered
    )


class Inference:
    """The whole-program fixpoint."""

    def __init__(self, behaviors: Dict[str, Behavior]) -> None:
        self.behaviors = behaviors
        self.vars: Dict[tuple, TypeVal] = {}
        self.result = InferenceResult()
        self._changed = False
        for bname, beh in behaviors.items():
            for mname, fn in beh.methods.items():
                ma = _parse_method(bname, mname, fn)
                self.result.methods[(bname, mname)] = ma
                if not ma.analyzable:
                    self.result.opaque_methods.append((bname, mname))

    # ------------------------------------------------------------------
    # variable store
    # ------------------------------------------------------------------
    def _get(self, key: tuple) -> TypeVal:
        return self.vars.get(key, BOTTOM)

    def _flow(self, key: tuple, val: TypeVal) -> None:
        old = self.vars.get(key, BOTTOM)
        new = join(old, val)
        if new != old:
            self.vars[key] = new
            self._changed = True

    # ------------------------------------------------------------------
    def run(self) -> InferenceResult:
        for _ in range(MAX_ROUNDS):
            self._changed = False
            self.result.sites.clear()
            for (bname, mname), ma in self.result.methods.items():
                if ma.analyzable:
                    _MethodWalker(self, ma).walk()
            if not self._changed:
                break
        else:  # pragma: no cover - capped lattice converges quickly
            self.result.diagnostics.append(
                f"inference did not converge in {MAX_ROUNDS} rounds"
            )
        # Resolve final receiver sets on sites.
        for site in self.result.sites:
            pass  # receivers already resolved during the final round
        return self.result

    # ------------------------------------------------------------------
    # cross-method flows
    # ------------------------------------------------------------------
    def flow_send(self, receivers: Optional[frozenset], selector: Optional[str],
                  arg_vals: List[TypeVal]) -> None:
        """Flow argument types into the receiver methods' parameters."""
        if receivers is None or selector is None:
            return
        for bname in receivers:
            beh = self.behaviors.get(bname)
            if beh is None or selector not in beh.methods:
                continue
            ma = self.result.methods.get((bname, selector))
            if ma is None or not ma.analyzable:
                continue
            for pname, aval in zip(ma.params, arg_vals):
                self._flow(("param", bname, selector, pname), aval)

    def return_type(self, receivers: Optional[frozenset],
                    selector: Optional[str]) -> TypeVal:
        """Join of the receiver methods' return types (⊤ if unknown)."""
        if receivers is None or selector is None:
            return ANY
        vals = []
        for bname in receivers:
            if (bname, selector) in self.result.methods:
                if not self.result.methods[(bname, selector)].analyzable:
                    return ANY
                vals.append(self._get(("ret", bname, selector)))
            else:
                return ANY
        return join_all(vals) if vals else ANY


class _MethodWalker:
    """Abstract interpretation of one method body."""

    def __init__(self, inf: Inference, ma: MethodAnalysis) -> None:
        self.inf = inf
        self.ma = ma
        self.B = ma.behavior
        self.M = ma.name

    # -- variable helpers ------------------------------------------------
    def _local(self, name: str) -> tuple:
        if name in self.ma.params:
            return ("param", self.B, self.M, name)
        return ("local", self.B, self.M, name)

    def _attr(self, name: str) -> tuple:
        return ("attr", self.B, name)

    # ------------------------------------------------------------------
    def walk(self) -> None:
        for stmt in self.ma.node.body:
            self._stmt(stmt)

    # ------------------------------------------------------------------
    def _stmt(self, s: ast.stmt) -> None:
        if isinstance(s, ast.Assign):
            val = self._assign_value(s.value, s.targets)
            for t in s.targets:
                self._bind(t, val, s.value)
        elif isinstance(s, ast.AnnAssign) and s.value is not None:
            self._bind(s.target, self._expr(s.value), s.value)
        elif isinstance(s, ast.AugAssign):
            val = self._expr(s.value)
            if isinstance(s.target, ast.Name):
                self.inf._flow(self._local(s.target.id), join(val, SCALAR_SET))
            elif self._is_self_attr(s.target):
                self.inf._flow(self._attr(s.target.attr), join(val, SCALAR_SET))
        elif isinstance(s, ast.Expr):
            self._expr(s.value)
        elif isinstance(s, ast.Return):
            if s.value is not None:
                self.inf._flow(("ret", self.B, self.M), self._expr(s.value))
        elif isinstance(s, (ast.If, ast.While)):
            self._expr(s.test)
            for sub in s.body + s.orelse:
                self._stmt(sub)
        elif isinstance(s, ast.For):
            elem = self._iter_elem(s.iter)
            self._bind(s.target, elem, None)
            for sub in s.body + s.orelse:
                self._stmt(sub)
        elif isinstance(s, (ast.With,)):
            for sub in s.body:
                self._stmt(sub)
        elif isinstance(s, ast.Try):
            for sub in s.body + s.orelse + s.finalbody:
                self._stmt(sub)
            for h in s.handlers:
                for sub in h.body:
                    self._stmt(sub)
        # pass/break/continue/raise/import: nothing to do

    # ------------------------------------------------------------------
    def _assign_value(self, value: ast.expr, targets: List[ast.expr]) -> TypeVal:
        """Evaluate an assignment RHS; yields are request results."""
        if isinstance(value, ast.Yield):
            return self._yield_value(value, targets)
        return self._expr(value)

    def _yield_value(self, y: ast.Yield, targets: List[ast.expr]) -> TypeVal:
        inner = y.value
        if inner is None:
            return SCALAR_SET
        if isinstance(inner, (ast.List, ast.Tuple)):
            elem_types = [self._request_result(e) for e in inner.elts]
            # Tuple-unpack targets get element-wise types.
            if (
                len(targets) == 1
                and isinstance(targets[0], (ast.Tuple, ast.List))
                and len(targets[0].elts) == len(elem_types)
            ):
                for t, tv in zip(targets[0].elts, elem_types):
                    self._bind(t, tv, None)
                return _CONSUMED
            return join_all(elem_types)
        return self._request_result(inner)

    def _request_result(self, e: ast.expr) -> TypeVal:
        """Type of one yielded request's reply."""
        if isinstance(e, ast.Call) and self._is_ctx_call(e, "request"):
            if not e.args:
                return ANY
            recv = self._expr(e.args[0])
            selector = self._literal_selector(e, arg_index=1)
            receivers = ref_behaviors(recv)
            arg_vals = [self._expr(a) for a in e.args[2:]]
            self.inf.flow_send(receivers, selector, arg_vals)
            self.inf.result.sites.append(SendSite(
                self.B, self.M, selector, e.lineno, True,
                receivers=receivers,
            ))
            return self.inf.return_type(receivers, selector)
        if isinstance(e, ast.Call) and self._is_ctx_call(e, "request_create"):
            bname = self._behavior_name(e.args[0]) if e.args else None
            return atom(RefOf(bname)) if bname else ANY
        # Yielding something we don't model.
        self._expr(e)
        return ANY

    # ------------------------------------------------------------------
    def _bind(self, target: ast.expr, val: TypeVal, rhs) -> None:
        if val is _CONSUMED:
            return
        if isinstance(target, ast.Name):
            self.inf._flow(self._local(target.id), val)
        elif self._is_self_attr(target):
            self.inf._flow(self._attr(target.attr), val)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for t in target.elts:
                self._bind(t, ANY if val is ANY else self._elem_of(val), rhs)
        # Subscript / attribute-of-other: ignored (heap-allocated).

    @staticmethod
    def _elem_of(val: TypeVal) -> TypeVal:
        # Unpacking an unknown container: be conservative.
        return ANY

    def _iter_elem(self, it: ast.expr) -> TypeVal:
        """Element type of an iterated expression."""
        if isinstance(it, ast.Call):
            # range(...) and friends iterate scalars.
            if isinstance(it.func, ast.Name) and it.func.id in (
                "range", "enumerate", "zip", "sorted", "reversed",
            ):
                for a in it.args:
                    self._expr(a)
                return SCALAR_SET if it.func.id == "range" else ANY
            # group.members() iterates member references.
            if isinstance(it.func, ast.Attribute) and it.func.attr == "members":
                base = self._expr(it.func.value)
                names = _group_behaviors(base)
                if names is not None:
                    return join_all(atom(RefOf(n)) for n in names) or BOTTOM
            self._expr(it)
            return ANY
        self._expr(it)
        return ANY

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _expr(self, e: ast.expr) -> TypeVal:
        if isinstance(e, ast.Constant):
            return SCALAR_SET
        if isinstance(e, ast.Name):
            if e.id == "self" or e.id == "ctx":
                return ANY
            return self.inf._get(self._local(e.id))
        if isinstance(e, ast.Attribute):
            if self._is_self_attr(e):
                return self.inf._get(self._attr(e.attr))
            if isinstance(e.value, ast.Name) and e.value.id == "ctx":
                if e.attr == "me":
                    return atom(RefOf(self.B))
                return ANY
            self._expr(e.value)
            return ANY
        if isinstance(e, ast.Call):
            return self._call(e)
        if isinstance(e, ast.BinOp):
            self._expr(e.left); self._expr(e.right)
            return SCALAR_SET
        if isinstance(e, (ast.Compare, ast.UnaryOp)):
            for sub in ast.iter_child_nodes(e):
                if isinstance(sub, ast.expr):
                    self._expr(sub)
            return SCALAR_SET
        if isinstance(e, ast.BoolOp):
            return join_all(self._expr(v) for v in e.values)
        if isinstance(e, ast.IfExp):
            self._expr(e.test)
            return join(self._expr(e.body), self._expr(e.orelse))
        if isinstance(e, (ast.List, ast.Tuple, ast.Set)):
            for el in e.elts:
                self._expr(el)
            return ANY
        if isinstance(e, ast.Dict):
            for k in e.keys:
                if k is not None:
                    self._expr(k)
            for v in e.values:
                self._expr(v)
            return ANY
        if isinstance(e, ast.Subscript):
            self._expr(e.value)
            return ANY
        if isinstance(e, ast.JoinedStr):
            return SCALAR_SET
        if isinstance(e, ast.Yield):
            # bare `yield req` used for its value in an expression
            return self._yield_value(e, [])
        # Lambdas, comprehensions, starred, etc.
        for sub in ast.walk(e):
            if isinstance(sub, ast.Call):
                self._call(sub)
        return ANY

    # ------------------------------------------------------------------
    def _call(self, e: ast.Call) -> TypeVal:
        if self._is_ctx_call(e, "send"):
            recv = self._expr(e.args[0]) if e.args else BOTTOM
            selector = self._literal_selector(e, arg_index=1)
            receivers = ref_behaviors(recv)
            arg_vals = [self._expr(a) for a in e.args[2:]]
            self.inf.flow_send(receivers, selector, arg_vals)
            self.inf.result.sites.append(SendSite(
                self.B, self.M, selector, e.lineno, False,
                receivers=receivers,
            ))
            return SCALAR_SET
        if self._is_ctx_call(e, "new"):
            bname = self._behavior_name(e.args[0]) if e.args else None
            for a in e.args[1:]:
                self._expr(a)
            return atom(RefOf(bname)) if bname else ANY
        if self._is_ctx_call(e, "grpnew"):
            bname = self._behavior_name(e.args[0]) if e.args else None
            for a in e.args[1:]:
                self._expr(a)
            return atom(GroupOf(bname)) if bname else ANY
        if self._is_ctx_call(e, "reply"):
            if e.args:
                self.inf._flow(("ret", self.B, self.M), self._expr(e.args[0]))
            return SCALAR_SET
        if self._is_ctx_call(e, "broadcast"):
            for a in e.args:
                self._expr(a)
            return SCALAR_SET
        # group.member(i) -> a member reference
        if (
            isinstance(e.func, ast.Attribute)
            and e.func.attr == "member"
            and e.args
        ):
            base = self._expr(e.func.value)
            self._expr(e.args[0])
            names = _group_behaviors(base)
            if names is not None:
                return join_all(atom(RefOf(n)) for n in names) or BOTTOM
            return ANY
        # Anything else: evaluate sub-expressions, result unknown.
        for a in e.args:
            self._expr(a)
        for kw in e.keywords:
            if kw.value is not None:
                self._expr(kw.value)
        if isinstance(e.func, ast.Attribute):
            self._expr(e.func.value)
        return ANY

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _is_self_attr(e: ast.expr) -> bool:
        return (
            isinstance(e, ast.Attribute)
            and isinstance(e.value, ast.Name)
            and e.value.id == "self"
        )

    @staticmethod
    def _is_ctx_call(e: ast.Call, name: str) -> bool:
        return (
            isinstance(e.func, ast.Attribute)
            and e.func.attr == name
            and isinstance(e.func.value, ast.Name)
            and e.func.value.id == "ctx"
        )

    @staticmethod
    def _literal_selector(e: ast.Call, arg_index: int) -> Optional[str]:
        if len(e.args) > arg_index:
            sel = e.args[arg_index]
            if isinstance(sel, ast.Constant) and isinstance(sel.value, str):
                return sel.value
        return None

    def _behavior_name(self, e: ast.expr) -> Optional[str]:
        """Resolve a behaviour-class expression to a loaded name."""
        name = None
        if isinstance(e, ast.Name):
            name = e.id
        elif isinstance(e, ast.Attribute):
            name = e.attr
        if name is not None and name in self.inf.behaviors:
            return name
        return None


def _group_behaviors(val: TypeVal):
    if val is ANY:
        return None
    names = set()
    for a in val:
        if isinstance(a, GroupOf) and a.behavior:
            names.add(a.behavior)
        else:
            return None
    return frozenset(names)


SCALAR_SET = atom(SCALAR)
_CONSUMED = object()  # sentinel: value already bound element-wise


def infer_program(behaviors: Dict[str, Behavior]) -> InferenceResult:
    """Run whole-program inference and return the annotated result."""
    return Inference(behaviors).run()
