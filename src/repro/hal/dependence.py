"""Dependence analysis of request/reply methods (§6.2) and purity
detection (§7.2).

The HAL compiler transforms a ``request`` send into an asynchronous
send and separates out its continuation through dependence analysis;
independent sends are grouped to share one continuation.  Both
frontends flow through here: in the explicit-yield DSL the split
points are hand-written ``yield``s, while plain-def methods arrive
*after* the AST frontend (:mod:`repro.hal.lower`) has inserted theirs
— so the two styles are held to the same rules and report the same
continuation structure (:attr:`ContinuationPlan.shape` pins the
equivalence in tests).  The static analysis has three jobs:

1. **validate** generator methods — every yield must be a request or a
   group of requests (anything else would deadlock the continuation);
   violations raise :class:`~repro.errors.CompileError` carrying
   behaviour, method and the absolute source line;
2. **summarise** the continuation structure (how many split points,
   how many slots per join) for the compiler report and for tests;
3. **detect purely functional behaviours** — methods that never write
   ``self``, never ``become`` and never ``migrate``.  For those, actor
   creation can be optimised away into lightweight tasks, the
   optimisation the paper applies to the Fibonacci benchmark
   ("since Fibonacci actors are purely functional, actor creations
   were optimized away").
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError
from repro.hal.inference import InferenceResult, MethodAnalysis
from repro.hal.lower import is_request_call, walk_scope


@dataclass(frozen=True)
class JoinPoint:
    """One yield: a join of ``slots`` grouped requests."""

    lineno: int
    slots: int
    grouped: bool


@dataclass
class ContinuationPlan:
    """Continuation structure of one method."""

    behavior: str
    method: str
    is_generator: bool
    joins: List[JoinPoint] = field(default_factory=list)
    #: True when the split points were inserted by the AST frontend.
    lowered: bool = False

    @property
    def split_points(self) -> int:
        return len(self.joins)

    @property
    def shape(self) -> Tuple[Tuple[int, bool], ...]:
        """Position-independent continuation structure — what the two
        frontends must agree on for twin methods: the ``(slots,
        grouped)`` sequence of every split point, in order."""
        return tuple((j.slots, j.grouped) for j in self.joins)


@dataclass
class PurityInfo:
    """Write-effects of one method."""

    writes_state: bool
    becomes: bool
    migrates: bool

    @property
    def pure(self) -> bool:
        return not (self.writes_state or self.becomes or self.migrates)


def _split_error(ma: MethodAnalysis, node: ast.AST, msg: str) -> CompileError:
    """A validation failure, pinned to its absolute source position."""
    lineno = getattr(node, "lineno", None)
    where = f" (line {lineno})" if lineno is not None else ""
    return CompileError(
        f"{ma.behavior}.{ma.name}{where}: {msg}",
        behavior=ma.behavior, method=ma.name, lineno=lineno,
    )


def analyze_continuations(ma: MethodAnalysis) -> ContinuationPlan:
    """Compute (and validate) the continuation structure of a method."""
    plan = ContinuationPlan(ma.behavior, ma.name, ma.has_yield,
                            lowered=ma.lowered)
    if not ma.analyzable or not ma.has_yield:
        return plan
    # Own-scope walk: a nested helper generator's yields are not HAL
    # split points and must not be validated as such.
    for node in walk_scope(ma.node):
        if isinstance(node, ast.YieldFrom):
            raise _split_error(
                ma, node,
                "`yield from` is not a HAL construct; yield individual "
                "requests",
            )
        if not isinstance(node, ast.Yield):
            continue
        inner = node.value
        if inner is None:
            raise _split_error(
                ma, node,
                "bare yield; a method may only yield ctx.request(...) "
                "values",
            )
        if isinstance(inner, (ast.List, ast.Tuple)):
            elts = inner.elts
            bad = [e for e in elts if not is_request_call(e)]
            if bad or not elts:
                raise _split_error(
                    ma, bad[0] if bad else node,
                    "malformed grouped request: a grouped yield must "
                    "contain only ctx.request(...) calls",
                )
            plan.joins.append(JoinPoint(node.lineno, len(elts), True))
        elif is_request_call(inner):
            plan.joins.append(JoinPoint(node.lineno, 1, False))
        elif isinstance(inner, (ast.Constant, ast.BinOp, ast.Compare,
                                ast.JoinedStr, ast.Dict, ast.Set)):
            raise _split_error(
                ma, node,
                "a method may only yield ctx.request(...) values, not "
                f"{ast.dump(inner)[:40]}...",
            )
        else:
            # A dynamic expression (e.g. a pre-built list variable) —
            # slots unknown statically; the runtime validates at the
            # split point.  Record it as a dynamic join.
            plan.joins.append(JoinPoint(node.lineno, -1, True))
    return plan


def analyze_purity(ma: MethodAnalysis) -> PurityInfo:
    """Determine whether a method writes its actor's state."""
    if not ma.analyzable:
        return PurityInfo(True, True, True)  # unknown: assume impure
    writes = becomes = migrates = False
    for node in ast.walk(ma.node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for t in targets:
                for sub in ast.walk(t):
                    if (
                        isinstance(sub, ast.Attribute)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "self"
                    ):
                        writes = True
                    if (
                        isinstance(sub, ast.Subscript)
                        and isinstance(sub.value, ast.Attribute)
                        and isinstance(sub.value.value, ast.Name)
                        and sub.value.value.id == "self"
                    ):
                        writes = True
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if isinstance(node.func.value, ast.Name) and node.func.value.id == "ctx":
                if node.func.attr == "become":
                    becomes = True
                elif node.func.attr == "migrate":
                    migrates = True
            # self.items.append(...) style mutation
            if (
                isinstance(node.func.value, ast.Attribute)
                and isinstance(node.func.value.value, ast.Name)
                and node.func.value.value.id == "self"
                and node.func.attr in (
                    "append", "extend", "insert", "pop", "remove", "clear",
                    "add", "discard", "update", "setdefault", "popleft",
                    "appendleft",
                )
            ):
                writes = True
    return PurityInfo(writes, becomes, migrates)


@dataclass
class DependenceResult:
    continuations: Dict[Tuple[str, str], ContinuationPlan]
    purity: Dict[Tuple[str, str], PurityInfo]

    def behavior_is_functional(self, behavior: str) -> bool:
        """True when *every* analysed method of the behaviour is pure."""
        infos = [p for (b, _), p in self.purity.items() if b == behavior]
        return bool(infos) and all(p.pure for p in infos)


def analyze_dependence(inference: InferenceResult) -> DependenceResult:
    continuations: Dict[Tuple[str, str], ContinuationPlan] = {}
    purity: Dict[Tuple[str, str], PurityInfo] = {}
    for key, ma in inference.methods.items():
        continuations[key] = analyze_continuations(ma)
        purity[key] = analyze_purity(ma)
    return DependenceResult(continuations, purity)
