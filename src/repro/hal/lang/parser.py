"""Parser: tokens → s-expression trees → behaviour declarations.

The generic reader produces nested lists of atoms; a small structural
pass then validates the top-level forms (``defbehavior`` with
``method`` bodies and optional ``disable-when`` clauses) into typed
declaration records the code generator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple, Union

from repro.errors import CompileError
from repro.hal.lang.lexer import Token, tokenize


@dataclass(frozen=True)
class Symbol:
    name: str
    line: int = 0

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Keyword:
    name: str
    line: int = 0

    def __repr__(self) -> str:
        return f":{self.name}"


#: An s-expression: atom or list of s-expressions.
Sexp = Union[Symbol, Keyword, int, float, str, list]


def read(source: str) -> List[Sexp]:
    """Read every top-level form in ``source``."""
    tokens = tokenize(source)
    forms: List[Sexp] = []
    pos = 0
    while pos < len(tokens):
        form, pos = _read_form(tokens, pos)
        forms.append(form)
    return forms


def _read_form(tokens: List[Token], pos: int) -> Tuple[Sexp, int]:
    if pos >= len(tokens):
        raise CompileError("unexpected end of input")
    tok = tokens[pos]
    if tok.kind == "(":
        items: list = []
        pos += 1
        while True:
            if pos >= len(tokens):
                raise CompileError(
                    f"line {tok.line}: unclosed '(' opened here"
                )
            if tokens[pos].kind == ")":
                return items, pos + 1
            item, pos = _read_form(tokens, pos)
            items.append(item)
    if tok.kind == ")":
        raise CompileError(f"line {tok.line}: unexpected ')'")
    if tok.kind == "symbol":
        return Symbol(str(tok.value), tok.line), pos + 1
    if tok.kind == "keyword":
        return Keyword(str(tok.value), tok.line), pos + 1
    return tok.value, pos + 1


# ----------------------------------------------------------------------
# structural validation
# ----------------------------------------------------------------------
@dataclass
class MethodDecl:
    name: str
    params: List[str]
    disable_when: Optional[Sexp]
    body: List[Sexp]
    line: int


@dataclass
class BehaviorDecl:
    name: str
    state_vars: List[str]
    methods: List[MethodDecl] = field(default_factory=list)
    line: int = 0


def _expect_symbol(x: Sexp, what: str) -> Symbol:
    if not isinstance(x, Symbol):
        raise CompileError(f"expected {what}, got {x!r}")
    return x


def parse(source: str) -> List[BehaviorDecl]:
    """Parse HAL source into behaviour declarations."""
    decls: List[BehaviorDecl] = []
    for form in read(source):
        if not (isinstance(form, list) and form
                and isinstance(form[0], Symbol)):
            raise CompileError(f"top-level form must be a list, got {form!r}")
        head = form[0]
        if head.name != "defbehavior":
            raise CompileError(
                f"line {head.line}: unknown top-level form {head.name!r} "
                "(only defbehavior is allowed)"
            )
        decls.append(_parse_behavior(form))
    if not decls:
        raise CompileError("empty HAL program")
    names = [d.name for d in decls]
    dupes = {n for n in names if names.count(n) > 1}
    if dupes:
        raise CompileError(f"duplicate behaviour name(s): {sorted(dupes)}")
    return decls


def _parse_behavior(form: list) -> BehaviorDecl:
    if len(form) < 3:
        raise CompileError(
            f"line {form[0].line}: defbehavior needs a name, a state-var "
            "list and at least one method"
        )
    name = _expect_symbol(form[1], "behaviour name")
    if not isinstance(form[2], list):
        raise CompileError(
            f"line {name.line}: defbehavior {name.name}: second argument "
            "must be the state-variable list"
        )
    state_vars = [
        _expect_symbol(sv, "state variable").name for sv in form[2]
    ]
    decl = BehaviorDecl(name.name, state_vars, line=name.line)
    for body_form in form[3:]:
        if not (isinstance(body_form, list) and body_form
                and isinstance(body_form[0], Symbol)
                and body_form[0].name == "method"):
            raise CompileError(
                f"defbehavior {name.name}: expected (method ...), got "
                f"{body_form!r}"
            )
        decl.methods.append(_parse_method(name.name, body_form))
    if not decl.methods:
        raise CompileError(f"behaviour {name.name} declares no methods")
    return decl


def _parse_method(behavior: str, form: list) -> MethodDecl:
    if len(form) < 3:
        raise CompileError(
            f"{behavior}: method needs a name, a parameter list and a body"
        )
    mname = _expect_symbol(form[1], "method name")
    if not isinstance(form[2], list):
        raise CompileError(
            f"{behavior}.{mname.name}: parameter list must be a list"
        )
    params = [_expect_symbol(p, "parameter").name for p in form[2]]
    body = list(form[3:])
    disable: Optional[Sexp] = None
    if body and isinstance(body[0], list) and body[0] and \
            isinstance(body[0][0], Symbol) and body[0][0].name == "disable-when":
        clause = body.pop(0)
        if len(clause) != 2:
            raise CompileError(
                f"{behavior}.{mname.name}: disable-when takes exactly one "
                "predicate expression"
            )
        disable = clause[1]
    if not body:
        raise CompileError(f"{behavior}.{mname.name}: empty method body")
    return MethodDecl(mname.name, params, disable, body, mname.line)
