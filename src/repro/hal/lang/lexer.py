"""Tokenizer for mini-HAL s-expressions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Union

from repro.errors import CompileError


@dataclass(frozen=True)
class Token:
    """One lexeme with its source position (for error messages)."""

    kind: str  # "(" | ")" | "symbol" | "number" | "string" | "keyword"
    value: Union[str, int, float]
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}({self.value!r})@{self.line}:{self.col}"


_DELIMS = "()"
_WS = " \t\r\n"


def tokenize(source: str) -> List[Token]:
    """Split HAL source into tokens.  Comments run from ``;`` to end
    of line.  Keywords are ``:name`` atoms (used for ``:at`` etc.)."""
    tokens: List[Token] = []
    line, col = 1, 1
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in _WS:
            i += 1
            col += 1
            continue
        if ch == ";":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch in _DELIMS:
            tokens.append(Token(ch, ch, line, col))
            i += 1
            col += 1
            continue
        if ch == '"':
            j = i + 1
            buf = []
            while j < n and source[j] != '"':
                if source[j] == "\\" and j + 1 < n:
                    buf.append(source[j + 1])
                    j += 2
                else:
                    buf.append(source[j])
                    j += 1
            if j >= n:
                raise CompileError(f"line {line}: unterminated string")
            tokens.append(Token("string", "".join(buf), line, col))
            col += j - i + 1
            i = j + 1
            continue
        # atom: symbol / number / keyword
        j = i
        while j < n and source[j] not in _WS + _DELIMS + ";":
            j += 1
        atom = source[i:j]
        tokens.append(_classify(atom, line, col))
        col += j - i
        i = j
    return tokens


def _classify(atom: str, line: int, col: int) -> Token:
    if atom.startswith(":") and len(atom) > 1:
        return Token("keyword", atom[1:], line, col)
    try:
        return Token("number", int(atom), line, col)
    except ValueError:
        pass
    try:
        return Token("number", float(atom), line, col)
    except ValueError:
        pass
    return Token("symbol", atom, line, col)
