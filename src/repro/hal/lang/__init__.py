"""A textual front-end for HAL (the mini-HAL language).

HAL [15] descends from the Rosette/Acore family, so the surface syntax
here is s-expressions::

    (defbehavior counter (value)
      (method incr (by)
        (set! value (+ value by)))
      (method get ()
        (reply value)))

:func:`compile_hal` turns HAL source into a loadable
:class:`~repro.runtime.program.HalProgram`: the code generator emits
Python behaviour classes (mirroring the real compiler, which "generates
C code as its output") and registers the generated source with
``linecache`` so the *whole* analysis pipeline — constraint-based type
inference, dependence analysis, dispatch-plan selection — runs on
mini-HAL programs exactly as on the embedded DSL.
"""

from repro.hal.lang.codegen import compile_hal, generate_python
from repro.hal.lang.lexer import tokenize
from repro.hal.lang.parser import parse

__all__ = ["compile_hal", "generate_python", "tokenize", "parse"]
