"""Code generator: mini-HAL declarations → Python behaviour classes.

Mirrors the real HAL compiler's structure ("The compiler ... generates
C code as its output"): each behaviour becomes a generated Python
class using the embedded DSL; ``request`` forms compile to ``yield``
expressions, so the dependence analysis sees the same split points;
``disable-when`` clauses become :func:`disable_when` guards.  The
generated source is registered with :mod:`linecache` under a synthetic
filename so ``inspect.getsource`` — and therefore the whole inference
pipeline — works on mini-HAL programs.
"""

from __future__ import annotations

import itertools
import linecache
from typing import Dict, List, Optional, Set

from repro.errors import CompileError
from repro.hal.lang.parser import BehaviorDecl, Keyword, MethodDecl, Sexp, Symbol, parse
from repro.runtime.program import HalProgram

_counter = itertools.count(1)

#: Binary/variadic operators: HAL symbol -> Python operator.
_BINOPS = {
    "+": "+", "-": "-", "*": "*", "/": "/", "mod": "%",
    "<": "<", ">": ">", "<=": "<=", ">=": ">=",
    "=": "==", "!=": "!=",
}

#: Simple function-call builtins: HAL symbol -> Python callable text.
_BUILTINS = {
    "len": "len", "abs": "abs", "min": "min", "max": "max",
    "int": "int", "float": "float", "str-of": "str",
    "sqrt": "math.sqrt", "floor": "math.floor", "ceil": "math.ceil",
}


def mangle(name: str) -> str:
    """HAL identifier → Python identifier."""
    out = name.replace("-", "_").replace("?", "_p").replace("!", "_x")
    out = out.replace("*", "_star").replace("/", "_slash")
    if not out.isidentifier():
        raise CompileError(f"cannot mangle identifier {name!r}")
    return out


class _Scope:
    """Tracks which names are state variables vs locals."""

    def __init__(self, state_vars: Set[str], behaviors: Set[str]) -> None:
        self.state = state_vars
        self.behaviors = behaviors
        self.locals: Set[str] = set()

    def reference(self, name: str) -> str:
        if name in self.locals:
            return mangle(name)
        if name in self.state:
            return f"self.{mangle(name)}"
        raise CompileError(
            f"unbound variable {name!r} (declare it as a state variable "
            "or bind it with let)"
        )


class _MethodGen:
    """Compiles one method body."""

    def __init__(self, decl: BehaviorDecl, m: MethodDecl,
                 behaviors: Set[str]) -> None:
        self.decl = decl
        self.m = m
        self.scope = _Scope(set(decl.state_vars), behaviors)
        self.scope.locals.update(m.params)
        self.lines: List[str] = []

    def err(self, msg: str) -> CompileError:
        return CompileError(f"{self.decl.name}.{self.m.name}: {msg}")

    # ------------------------------------------------------------------
    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def generate(self) -> List[str]:
        params = "".join(f", {mangle(p)}" for p in self.m.params)
        self.emit(1, "@method")
        if self.m.disable_when is not None:
            guard = self.guard_name()
            self.emit(1, f"@disable_when({guard})")
        self.emit(1, f"def {mangle(self.m.name)}(self, ctx{params}):")
        for form in self.m.body:
            self.stmt(form, 2)
        return self.lines

    def guard_name(self) -> str:
        return f"_guard_{mangle(self.decl.name)}_{mangle(self.m.name)}"

    def generate_guard(self) -> List[str]:
        """The disable-when predicate as a module-level function."""
        expr = _GuardGen(self.decl).expr(self.m.disable_when)
        return [
            f"def {self.guard_name()}(self, msg):",
            f"    return {expr}",
        ]

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def stmt(self, form: Sexp, ind: int) -> None:
        if not isinstance(form, list) or not form:
            # bare expression statement (rarely useful, but legal)
            self.emit(ind, self.expr(form))
            return
        head = form[0]
        if isinstance(head, Symbol):
            h = head.name
            if h == "set!":
                if len(form) != 3 or not isinstance(form[1], Symbol):
                    raise self.err("(set! var expr)")
                target = self.scope.reference(form[1].name)
                self.emit(ind, f"{target} = {self.expr(form[2])}")
                return
            if h == "let":
                if len(form) < 3 or not isinstance(form[1], list):
                    raise self.err("(let ((var expr) ...) body ...)")
                for binding in form[1]:
                    if not (isinstance(binding, list) and len(binding) == 2
                            and isinstance(binding[0], Symbol)):
                        raise self.err(f"bad let binding {binding!r}")
                    value = self.expr(binding[1])
                    self.scope.locals.add(binding[0].name)
                    self.emit(ind, f"{mangle(binding[0].name)} = {value}")
                for sub in form[2:]:
                    self.stmt(sub, ind)
                return
            if h == "begin":
                for sub in form[1:]:
                    self.stmt(sub, ind)
                return
            if h == "if":
                if len(form) not in (3, 4):
                    raise self.err("(if cond then [else])")
                self.emit(ind, f"if {self.expr(form[1])}:")
                self.stmt(form[2], ind + 1)
                if len(form) == 4:
                    self.emit(ind, "else:")
                    self.stmt(form[3], ind + 1)
                return
            if h == "while":
                if len(form) < 3:
                    raise self.err("(while cond body ...)")
                self.emit(ind, f"while {self.expr(form[1])}:")
                for sub in form[2:]:
                    self.stmt(sub, ind + 1)
                return
            if h == "dotimes":
                if (len(form) < 3 or not isinstance(form[1], list)
                        or len(form[1]) != 2
                        or not isinstance(form[1][0], Symbol)):
                    raise self.err("(dotimes (i n) body ...)")
                var = form[1][0].name
                self.scope.locals.add(var)
                self.emit(
                    ind,
                    f"for {mangle(var)} in range({self.expr(form[1][1])}):",
                )
                for sub in form[2:]:
                    self.stmt(sub, ind + 1)
                return
            if h == "reply":
                if len(form) != 2:
                    raise self.err("(reply expr)")
                self.emit(ind, f"return {self.expr(form[1])}")
                return
            if h == "send":
                self.emit(ind, self._send_expr(form))
                return
            if h == "broadcast":
                if len(form) < 3 or not isinstance(form[2], Symbol):
                    raise self.err("(broadcast group selector args ...)")
                args = "".join(f", {self.expr(a)}" for a in form[3:])
                self.emit(
                    ind,
                    f"ctx.broadcast({self.expr(form[1])}, "
                    f"\"{mangle(form[2].name)}\"{args})",
                )
                return
            if h == "become":
                if len(form) < 2 or not isinstance(form[1], Symbol):
                    raise self.err("(become Behavior args ...)")
                args = "".join(f", {self.expr(a)}" for a in form[2:])
                self.emit(ind, f"ctx.become({mangle(form[1].name)}{args})")
                return
            if h == "migrate":
                if len(form) != 2:
                    raise self.err("(migrate node-expr)")
                self.emit(ind, f"ctx.migrate({self.expr(form[1])})")
                return
            if h in ("io", "charge", "flops"):
                if len(form) != 2:
                    raise self.err(f"({h} expr)")
                arg = self.expr(form[1])
                if h == "io":
                    arg = f"str({arg})"
                self.emit(ind, f"ctx.{h}({arg})")
                return
            if h == "append!":
                if len(form) != 3:
                    raise self.err("(append! list-expr value)")
                self.emit(
                    ind,
                    f"{self.expr(form[1])}.append({self.expr(form[2])})",
                )
                return
        # fallthrough: expression statement (request for effect, etc.)
        self.emit(ind, self.expr(form))

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def expr(self, form: Sexp) -> str:
        if isinstance(form, (int, float)):
            return repr(form)
        if isinstance(form, str):
            return repr(form)
        if isinstance(form, Keyword):
            raise self.err(f"keyword :{form.name} outside a call")
        if isinstance(form, Symbol):
            return self._atom(form.name)
        if not form:
            return "None"
        head = form[0]
        if not isinstance(head, Symbol):
            raise self.err(f"cannot call {head!r}")
        h = head.name
        if h in _BINOPS:
            if len(form) < 3:
                raise self.err(f"operator {h} needs two operands")
            op = _BINOPS[h]
            return "(" + f" {op} ".join(self.expr(a) for a in form[1:]) + ")"
        if h in _BUILTINS:
            args = ", ".join(self.expr(a) for a in form[1:])
            return f"{_BUILTINS[h]}({args})"
        if h == "and":
            return "(" + " and ".join(self.expr(a) for a in form[1:]) + ")"
        if h == "or":
            return "(" + " or ".join(self.expr(a) for a in form[1:]) + ")"
        if h == "not":
            return f"(not {self.expr(form[1])})"
        if h == "if":
            if len(form) != 4:
                raise self.err("expression (if cond then else)")
            return (f"({self.expr(form[2])} if {self.expr(form[1])} "
                    f"else {self.expr(form[3])})")
        if h == "list":
            return "[" + ", ".join(self.expr(a) for a in form[1:]) + "]"
        if h == "nth":
            return f"{self.expr(form[1])}[{self.expr(form[2])}]"
        if h == "pop!":
            return f"{self.expr(form[1])}.pop(0)"
        if h == "empty?":
            return f"(len({self.expr(form[1])}) == 0)"
        if h == "str":
            return "(" + " + ".join(f"str({self.expr(a)})" for a in form[1:]) + ")"
        if h == "new":
            return self._new_expr(form)
        if h == "grpnew":
            return self._grpnew_expr(form)
        if h == "member":
            if len(form) != 3:
                raise self.err("(member group index)")
            return f"{self.expr(form[1])}.member({self.expr(form[2])})"
        if h == "request":
            if len(form) < 3 or not isinstance(form[2], Symbol):
                raise self.err("(request ref selector args ...)")
            args = "".join(f", {self.expr(a)}" for a in form[3:])
            return (f"(yield ctx.request({self.expr(form[1])}, "
                    f"\"{mangle(form[2].name)}\"{args}))")
        if h == "request-create":
            call, at = self._split_at(form[1:], "request-create")
            if not call or not isinstance(call[0], Symbol):
                raise self.err("(request-create Behavior args ... :at node)")
            if at is None:
                raise self.err("request-create requires :at")
            args = "".join(f", {self.expr(a)}" for a in call[1:])
            return (f"(yield ctx.request_create({mangle(call[0].name)}"
                    f"{args}, at={at}))")
        if h == "send":
            return self._send_expr(form)
        raise self.err(f"unknown form ({h} ...)")

    def _atom(self, name: str) -> str:
        if name == "self":
            return "ctx.me"
        if name == "node":
            return "ctx.node"
        if name == "num-nodes":
            return "ctx.num_nodes"
        if name == "now":
            return "ctx.now"
        if name == "nil":
            return "None"
        if name == "true":
            return "True"
        if name == "false":
            return "False"
        return self.scope.reference(name)

    def _send_expr(self, form: list) -> str:
        if len(form) < 3 or not isinstance(form[2], Symbol):
            raise self.err("(send ref selector args ...)")
        args = "".join(f", {self.expr(a)}" for a in form[3:])
        return (f"ctx.send({self.expr(form[1])}, "
                f"\"{mangle(form[2].name)}\"{args})")

    def _split_at(self, items: list, what: str):
        """Split off a trailing ``:at expr`` pair."""
        at = None
        out = list(items)
        for i, item in enumerate(out):
            if isinstance(item, Keyword):
                if item.name != "at" or i + 1 >= len(out):
                    raise self.err(f"{what}: bad keyword :{item.name}")
                at = self.expr(out[i + 1])
                out = out[:i] + out[i + 2:]
                break
        return out, at

    def _new_expr(self, form: list) -> str:
        call, at = self._split_at(form[1:], "new")
        if not call or not isinstance(call[0], Symbol):
            raise self.err("(new Behavior args ... [:at node])")
        bname = call[0].name
        if bname not in self.scope.behaviors:
            raise self.err(f"new of unknown behaviour {bname!r}")
        args = "".join(f", {self.expr(a)}" for a in call[1:])
        at_kw = f", at={at}" if at is not None else ""
        return f"ctx.new({mangle(bname)}{args}{at_kw})"

    def _grpnew_expr(self, form: list) -> str:
        call, _ = self._split_at(form[1:], "grpnew")
        if len(call) < 2 or not isinstance(call[0], Symbol):
            raise self.err("(grpnew Behavior n args ...)")
        bname = call[0].name
        if bname not in self.scope.behaviors:
            raise self.err(f"grpnew of unknown behaviour {bname!r}")
        args = "".join(f", {self.expr(a)}" for a in call[1:])
        return f"ctx.grpnew({mangle(bname)}{args})"


class _GuardGen(_MethodGen):
    """Expression compiler for disable-when predicates: state vars map
    to ``self.<var>``; ``(msg-arg i)`` reads the pending message."""

    def __init__(self, decl: BehaviorDecl) -> None:
        self.decl = decl
        self.m = MethodDecl("<guard>", [], None, [], decl.line)
        self.scope = _Scope(set(decl.state_vars), set())
        self.lines = []

    def expr(self, form: Sexp) -> str:
        if (isinstance(form, list) and form and isinstance(form[0], Symbol)
                and form[0].name == "msg-arg"):
            if len(form) != 2:
                raise self.err("(msg-arg index)")
            return f"msg.args[{super().expr(form[1])}]"
        return super().expr(form)


# ----------------------------------------------------------------------
# whole-program generation
# ----------------------------------------------------------------------
def generate_python(source: str, program_name: str = "hal") -> str:
    """Compile HAL source to Python module text."""
    decls = parse(source)
    behavior_names = {d.name for d in decls}
    lines: List[str] = [
        f'"""Generated by the mini-HAL compiler from program '
        f'{program_name!r}."""',
        "import math",
        "from repro.actors.behavior import behavior, method",
        "from repro.actors.constraints import disable_when",
        "",
    ]
    for decl in decls:
        # guards first (module level)
        for m in decl.methods:
            if m.disable_when is not None:
                gen = _MethodGen(decl, m, behavior_names)
                lines.extend(gen.generate_guard())
                lines.append("")
        lines.append("@behavior")
        lines.append(f"class {mangle(decl.name)}:")
        ctor_params = "".join(f", {mangle(v)}" for v in decl.state_vars)
        lines.append(f"    def __init__(self{ctor_params}):")
        if decl.state_vars:
            for v in decl.state_vars:
                lines.append(f"        self.{mangle(v)} = {mangle(v)}")
        else:
            lines.append("        pass")
        lines.append("")
        for m in decl.methods:
            gen = _MethodGen(decl, m, behavior_names)
            lines.extend(gen.generate())
            lines.append("")
    return "\n".join(lines) + "\n"


def compile_hal(source: str, program_name: str = "hal") -> HalProgram:
    """Compile HAL source into a loadable program.

    The generated Python is registered with :mod:`linecache`, so the
    inference/dependence/dispatch pipeline analyses it at load time
    like any hand-written behaviour.
    """
    text = generate_python(source, program_name)
    filename = f"<hal:{program_name}:{next(_counter)}>"
    code = compile(text, filename, "exec")
    namespace: Dict[str, object] = {}
    linecache.cache[filename] = (
        len(text), None, text.splitlines(keepends=True), filename,
    )
    exec(code, namespace)  # noqa: S102 - this *is* the code generator
    program = HalProgram(program_name)
    from repro.actors.behavior import is_behavior_class
    for value in namespace.values():
        if is_behavior_class(value):
            program.behavior(value)
    return program
