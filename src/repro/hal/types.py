"""The type lattice for constraint-based inference.

A deliberately small lattice in the style of Palsberg/Schwartzbach
inference [27]: atoms are behaviour references, group references and
scalars; a *type value* is either a finite set of atoms or ⊤ (``ANY``).
Join is set union with a width cap — sets wider than
:data:`MAX_WIDTH` collapse to ⊤, which keeps the lattice height finite
and the fixpoint fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Union


@dataclass(frozen=True)
class RefOf:
    """A reference to an actor of a known behaviour."""

    behavior: str

    def __repr__(self) -> str:
        return f"Ref[{self.behavior}]"


@dataclass(frozen=True)
class GroupOf:
    """A group identifier whose members have a known behaviour."""

    behavior: str

    def __repr__(self) -> str:
        return f"Group[{self.behavior}]"


@dataclass(frozen=True)
class Scalar:
    """Numbers, strings, booleans, None — anything without methods."""

    def __repr__(self) -> str:
        return "Scalar"


SCALAR = Scalar()
Atom = Union[RefOf, GroupOf, Scalar]

#: Sets wider than this collapse to ANY.
MAX_WIDTH = 8


class _Any:
    """⊤: statically unknown."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "Any"


ANY = _Any()

#: A type value: ⊤ or a finite atom set.  ⊥ is the empty set.
TypeVal = Union[_Any, FrozenSet[Atom]]

BOTTOM: TypeVal = frozenset()


def atom(a: Atom) -> TypeVal:
    return frozenset((a,))


def join(a: TypeVal, b: TypeVal) -> TypeVal:
    """Least upper bound."""
    if a is ANY or b is ANY:
        return ANY
    united = a | b
    if len(united) > MAX_WIDTH:
        return ANY
    return united


def join_all(vals: Iterable[TypeVal]) -> TypeVal:
    out: TypeVal = BOTTOM
    for v in vals:
        out = join(out, v)
        if out is ANY:
            return ANY
    return out


def ref_behaviors(val: TypeVal) -> FrozenSet[str] | None:
    """Behaviour names a value may reference, or None if ⊤ (or if the
    value may be something that is not an actor reference)."""
    if val is ANY:
        return None
    names = set()
    for a in val:
        if isinstance(a, RefOf):
            names.add(a.behavior)
        elif isinstance(a, Scalar):
            # Sending to a scalar is a type error caught elsewhere;
            # for dispatch purposes the site is not a pure ref site.
            return None
        elif isinstance(a, GroupOf):
            return None
    return frozenset(names)


def is_bottom(val: TypeVal) -> bool:
    return val is not ANY and len(val) == 0
