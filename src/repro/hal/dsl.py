"""The HAL programming surface (embedded DSL).

Programs are ordinary Python classes marked with :func:`behavior`;
message-invocable methods are marked with :func:`method` and receive
``(self, ctx, *args)``.  The full primitive set (§2.2):

===================  ====================================================
HAL construct        DSL form
===================  ====================================================
``new``              ``ctx.new(Cls, *args, at=node)``
``grpnew``           ``ctx.grpnew(Cls, n, *args, placement=...)``
``send``             ``ctx.send(ref, "selector", *args)``
``request``          ``value = yield ctx.request(ref, "sel", *args)``
grouped requests     ``a, b = yield [ctx.request(...), ctx.request(...)]``
``reply``            ``return value`` or ``ctx.reply(value)``
``broadcast``        ``ctx.broadcast(group, "selector", *args)``
``become``           ``ctx.become(Cls, *args)``
migration            ``ctx.migrate(node)``
sync constraints     ``@disable_when(lambda self, msg: ...)``
===================  ====================================================

Behaviours used with ``grpnew`` receive ``(*args, index, size)`` in
their constructor so each member knows its coordinates.
"""

from repro.actors.behavior import behavior, method
from repro.actors.constraints import disable_when
from repro.runtime.calls import CreateRequest, Request
from repro.runtime.program import HalProgram

__all__ = [
    "behavior",
    "method",
    "disable_when",
    "Request",
    "CreateRequest",
    "HalProgram",
]
