"""AST continuation-splitting of plain-``def`` methods (§6.2).

The paper's compiler takes *ordinary* method bodies, finds each
``request`` send, runs dependence analysis to separate out the
continuation, and groups independent sends to share one continuation.
This module is that frontend for the embedded DSL: a behaviour method
written with no ``yield`` at all ::

    @method
    def compute(self, ctx, n):
        left = ctx.new(FibActor)
        right = ctx.new(FibActor)
        a = ctx.request(left, "compute", n - 1)
        b = ctx.request(right, "compute", n - 2)
        return a + b

is rewritten — by AST transformation and ``compile()`` — into the
generator form the runtime already executes ::

    a, b = yield [ctx.request(left, "compute", n - 1),
                  ctx.request(right, "compute", n - 2)]

The two adjacent requests are *grouped* because dependence analysis
proves them independent: neither reads a name the other binds, and
their receiver/argument expressions are effect-free.  A dependent
chain (``b``'s request reading ``a``) lowers to two split points
instead.  Line numbers are preserved (the rewritten code object keeps
the original filename and absolute line numbers), so tracebacks out of
a lowered method point into the user's source.

Positions where a request cannot be split — inside a condition, an
argument of another call, a nested function — raise
:class:`~repro.errors.CompileError` carrying behaviour, method and
absolute source line.

The explicit-yield generator DSL remains supported; both frontends
produce the same continuation structure, validated by
:mod:`repro.hal.dependence` either way.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

from repro.errors import CompileError

__all__ = ["LoweredMethod", "lower_method", "is_request_call", "walk_scope"]


def is_request_call(e: ast.AST) -> bool:
    """``ctx.request(...)`` / ``ctx.request_create(...)`` — the two
    split-point primitives."""
    return (
        isinstance(e, ast.Call)
        and isinstance(e.func, ast.Attribute)
        and e.func.attr in ("request", "request_create")
        and isinstance(e.func.value, ast.Name)
        and e.func.value.id == "ctx"
    )


#: Nodes that open a new scope: their bodies are not part of the
#: method's own control flow, so the lowering must not descend.
_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` restricted to the node's own scope (does not enter
    nested function definitions or lambdas).  Same breadth-first order
    as ``ast.walk`` — join points are recorded in statement order."""
    todo = deque([node])
    while todo:
        n = todo.popleft()
        yield n
        for child in ast.iter_child_nodes(n):
            if isinstance(child, _SCOPES):
                yield child  # the def itself is ours; its body is not
            else:
                todo.append(child)


@dataclass
class LoweredMethod:
    """The result of lowering one plain-def method."""

    behavior: str
    method: str
    #: The compiled generator function (drop-in for the original).
    fn: Callable
    #: The transformed FunctionDef, with absolute line numbers — the
    #: analysis passes read this instead of re-parsing source.
    node: ast.FunctionDef
    #: Request sites found in the original body.
    sites: int = 0
    #: Emitted split points as ``(slots, grouped)`` pairs.
    joins: List[Tuple[int, bool]] = field(default_factory=list)


# ----------------------------------------------------------------------
# dependence analysis for grouping
# ----------------------------------------------------------------------
#: Expression nodes allowed in a *groupable* request's receiver and
#: arguments.  Effect-free by construction: grouping reorders the
#: request's argument evaluation relative to the preceding reply, so
#: anything that could observe that reply (a call, a yield, a walrus)
#: disqualifies the site from sharing a continuation — it still lowers,
#: as its own split point.
_SIMPLE_EXPRS = tuple(
    getattr(ast, name) for name in (
        "Name", "Constant", "Attribute", "BinOp", "UnaryOp", "Compare",
        "BoolOp", "IfExp", "Subscript", "Tuple", "List", "Index", "Slice",
        "Load", "Store", "operator", "unaryop", "cmpop", "boolop",
        "expr_context", "keyword",
    ) if hasattr(ast, name)
)


def _is_simple_request(call: ast.Call) -> bool:
    """True when every sub-expression of the request (receiver,
    selector, args) is effect-free."""
    for sub in ast.walk(call):
        if sub is call:
            continue
        if is_request_call(sub):
            return False
        if not isinstance(sub, _SIMPLE_EXPRS):
            return False
    return True


def _names_read(e: ast.AST) -> set:
    return {
        n.id for n in ast.walk(e)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


# ----------------------------------------------------------------------
# the transformer
# ----------------------------------------------------------------------
class _Lowerer:
    def __init__(self, behavior: str, method: str) -> None:
        self.behavior = behavior
        self.method = method
        self.sites = 0
        self.joins: List[Tuple[int, bool]] = []

    # -- diagnostics ----------------------------------------------------
    def _err(self, node: ast.AST, msg: str) -> CompileError:
        lineno = getattr(node, "lineno", None)
        where = f" (line {lineno})" if lineno is not None else ""
        return CompileError(
            f"{self.behavior}.{self.method}{where}: {msg}",
            behavior=self.behavior, method=self.method, lineno=lineno,
        )

    def _check_no_requests(self, node: Optional[ast.AST]) -> None:
        if node is None:
            return
        if isinstance(node, _SCOPES):
            self._check_no_nested_requests(node)
            return
        for sub in walk_scope(node):
            if is_request_call(sub):
                raise self._err(
                    sub,
                    "ctx.request here cannot be split into a continuation; "
                    "a request may only be the sole right-hand side of an "
                    "assignment, an element of a tuple-assigned request "
                    "group, a bare statement, or a return value",
                )
            if isinstance(sub, _SCOPES) and sub is not node:
                self._check_no_nested_requests(sub)

    def _check_no_nested_requests(self, scope: ast.AST) -> None:
        for inner in ast.walk(scope):
            if is_request_call(inner):
                raise self._err(
                    inner,
                    "ctx.request inside a nested function cannot be "
                    "lowered; issue the request in the method body and "
                    "pass the reply in",
                )

    # -- statement shapes -----------------------------------------------
    @staticmethod
    def _single_request_assign(s: ast.stmt) -> Optional[ast.Call]:
        """``x = ctx.request(...)`` with a single Name target."""
        if (
            isinstance(s, ast.Assign)
            and len(s.targets) == 1
            and isinstance(s.targets[0], ast.Name)
            and is_request_call(s.value)
        ):
            return s.value
        return None

    def _yield_of(self, template: ast.AST, inner: ast.expr) -> ast.expr:
        y = ast.Yield(value=inner)
        return ast.copy_location(y, template)

    def _join_assign(self, run: List[ast.Assign]) -> ast.stmt:
        """Fuse a run of independent single-request assigns into one
        split point (grouped when the run has more than one member)."""
        first = run[0]
        if len(run) == 1:
            first.value = self._yield_of(first.value, first.value)
            self.joins.append((1, False))
            return first
        targets = [s.targets[0] for s in run]
        calls = [s.value for s in run]
        tup = ast.copy_location(
            ast.Tuple(elts=targets, ctx=ast.Store()), first.targets[0]
        )
        lst = ast.copy_location(ast.List(elts=calls, ctx=ast.Load()),
                                first.value)
        out = ast.Assign(targets=[tup], value=self._yield_of(first.value, lst))
        self.joins.append((len(run), True))
        return ast.copy_location(out, first)

    def _grouped_assign(self, s: ast.Assign) -> ast.stmt:
        """``a, b = ctx.request(...), ctx.request(...)`` — the explicit
        grouped form."""
        value = s.value
        assert isinstance(value, (ast.Tuple, ast.List))
        elts = value.elts
        bad = [e for e in elts if not is_request_call(e)]
        if bad:
            raise self._err(
                bad[0],
                "malformed grouped request: every element of a "
                "tuple-assigned request group must be a ctx.request(...) "
                "call",
            )
        target = s.targets[0]
        if isinstance(target, (ast.Tuple, ast.List)) and len(target.elts) != len(elts):
            raise self._err(
                s,
                f"malformed grouped request: {len(target.elts)} targets "
                f"for {len(elts)} grouped requests",
            )
        for e in elts:
            self._check_no_requests_within(e)
        self.sites += len(elts)
        lst = ast.copy_location(ast.List(elts=elts, ctx=ast.Load()), value)
        s.value = self._yield_of(value, lst)
        self.joins.append((len(elts), True))
        return s

    def _check_no_requests_within(self, call: ast.Call) -> None:
        """A request's own receiver/args must not contain requests."""
        for sub in ast.walk(call):
            if sub is not call and is_request_call(sub):
                raise self._err(
                    sub,
                    "a request may not appear inside another request's "
                    "arguments; bind the inner reply to a name first",
                )

    # -- block lowering -------------------------------------------------
    def lower_block(self, stmts: List[ast.stmt]) -> List[ast.stmt]:
        out: List[ast.stmt] = []
        i = 0
        while i < len(stmts):
            s = stmts[i]
            call = self._single_request_assign(s)
            if call is not None:
                self._check_no_requests_within(call)
                self.sites += 1
                run = [s]
                written = {s.targets[0].id}  # type: ignore[union-attr]
                groupable = _is_simple_request(call)
                j = i + 1
                while groupable and j < len(stmts):
                    nxt = self._single_request_assign(stmts[j])
                    if nxt is None or not _is_simple_request(nxt):
                        break
                    if _names_read(nxt) & written:
                        break  # dependent: needs the earlier reply
                    self._check_no_requests_within(nxt)
                    self.sites += 1
                    run.append(stmts[j])
                    written.add(stmts[j].targets[0].id)  # type: ignore[union-attr]
                    j += 1
                out.append(self._join_assign(run))
                i = j
                continue
            out.append(self._stmt(s))
            i += 1
        return out

    def _stmt(self, s: ast.stmt) -> ast.stmt:
        if isinstance(s, ast.Assign):
            if is_request_call(s.value):
                # Multi-target (`x = y = ctx.request(...)`) falls here.
                self._check_no_requests_within(s.value)
                self.sites += 1
                s.value = self._yield_of(s.value, s.value)
                self.joins.append((1, False))
                return s
            if (
                isinstance(s.value, (ast.Tuple, ast.List))
                and any(is_request_call(e) for e in s.value.elts)
            ):
                return self._grouped_assign(s)
            self._check_no_requests(s)
            return s
        if isinstance(s, ast.AnnAssign) and s.value is not None \
                and is_request_call(s.value):
            self._check_no_requests_within(s.value)
            self.sites += 1
            s.value = self._yield_of(s.value, s.value)
            self.joins.append((1, False))
            return s
        if isinstance(s, ast.Expr) and is_request_call(s.value):
            # Reply awaited (the split still happens), value dropped.
            self._check_no_requests_within(s.value)
            self.sites += 1
            s.value = self._yield_of(s.value, s.value)
            self.joins.append((1, False))
            return s
        if isinstance(s, ast.Return) and s.value is not None:
            if is_request_call(s.value):
                self._check_no_requests_within(s.value)
                self.sites += 1
                s.value = self._yield_of(s.value, s.value)
                self.joins.append((1, False))
                return s
            if (
                isinstance(s.value, (ast.Tuple, ast.List))
                and any(is_request_call(e) for e in s.value.elts)
            ):
                elts = s.value.elts
                bad = [e for e in elts if not is_request_call(e)]
                if bad:
                    raise self._err(
                        bad[0],
                        "malformed grouped request: every element of a "
                        "returned request group must be a ctx.request(...) "
                        "call",
                    )
                for e in elts:
                    self._check_no_requests_within(e)
                self.sites += len(elts)
                lst = ast.copy_location(
                    ast.List(elts=elts, ctx=ast.Load()), s.value
                )
                s.value = self._yield_of(s.value, lst)
                self.joins.append((len(elts), True))
                return s
            self._check_no_requests(s)
            return s
        if isinstance(s, (ast.If, ast.While)):
            self._check_no_requests(s.test)
            s.body = self.lower_block(s.body)
            s.orelse = self.lower_block(s.orelse)
            return s
        if isinstance(s, ast.For):
            self._check_no_requests(s.iter)
            s.body = self.lower_block(s.body)
            s.orelse = self.lower_block(s.orelse)
            return s
        if isinstance(s, ast.With):
            for item in s.items:
                self._check_no_requests(item.context_expr)
            s.body = self.lower_block(s.body)
            return s
        if isinstance(s, ast.Try):
            s.body = self.lower_block(s.body)
            s.orelse = self.lower_block(s.orelse)
            s.finalbody = self.lower_block(s.finalbody)
            for h in s.handlers:
                h.body = self.lower_block(h.body)
            return s
        if hasattr(ast, "Match") and isinstance(s, ast.Match):
            self._check_no_requests(s.subject)
            for case in s.cases:
                case.body = self.lower_block(case.body)
            return s
        # Everything else (pass, raise, aug-assign, nested defs, ...):
        # no request may hide inside.
        self._check_no_requests(s)
        return s


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def lower_method(behavior_name: str, method_name: str, fn: Callable
                 ) -> Optional[LoweredMethod]:
    """Lower one plain-def method into generator form.

    Returns ``None`` when the method needs no lowering: it is already
    lowered, already a generator (the explicit-yield frontend), has no
    request sites, or its source is unavailable (opaque methods stay
    on the generic path, exactly as inference treats them).
    """
    if getattr(fn, "__hal_lowered__", False):
        return None
    try:
        lines, firstlineno = inspect.getsourcelines(fn)
        src = textwrap.dedent("".join(lines))
        tree = ast.parse(src)
    except (OSError, TypeError, SyntaxError, IndentationError):
        return None
    func = next((n for n in tree.body if isinstance(n, ast.FunctionDef)), None)
    if func is None:
        return None
    # Absolute line numbers before anything else: diagnostics and the
    # recompiled code object both point into the real file.
    ast.increment_lineno(tree, firstlineno - 1)
    if any(isinstance(n, (ast.Yield, ast.YieldFrom))
           for n in walk_scope(func)):
        return None  # explicit-yield frontend; dependence validates it
    lw = _Lowerer(behavior_name, method_name)
    if not any(is_request_call(n) for n in walk_scope(func)):
        # No own-scope sites — but a request buried in a nested def or
        # lambda would silently never execute, so reject it here.
        for n in walk_scope(func):
            if isinstance(n, _SCOPES) and n is not func:
                lw._check_no_nested_requests(n)
        return None  # nothing to split
    if fn.__closure__:
        raise CompileError(
            f"{behavior_name}.{method_name} (line {firstlineno}): cannot "
            "lower a method that closes over enclosing-scope variables; "
            "move it to module or class scope",
            behavior=behavior_name, method=method_name, lineno=firstlineno,
        )

    func.body = lw.lower_block(func.body)
    func.decorator_list = []  # already applied to the original fn
    module = ast.Module(body=[func], type_ignores=[])
    ast.fix_missing_locations(module)
    code = compile(module, fn.__code__.co_filename, "exec")
    ns: dict = {}
    exec(code, fn.__globals__, ns)  # noqa: S102 - compiling our own AST
    new_fn = ns[func.name]
    # The lowered function is a drop-in: marker attributes (it *is* the
    # @method), constraints, defaults and identity all carry over.
    new_fn.__dict__.update(fn.__dict__)
    new_fn.__defaults__ = fn.__defaults__
    new_fn.__kwdefaults__ = fn.__kwdefaults__
    new_fn.__qualname__ = fn.__qualname__
    new_fn.__module__ = fn.__module__
    new_fn.__doc__ = fn.__doc__
    new_fn.__hal_lowered__ = True
    new_fn.__hal_lowered_ast__ = func
    return LoweredMethod(
        behavior_name, method_name, new_fn, func,
        sites=lw.sites, joins=lw.joins,
    )
