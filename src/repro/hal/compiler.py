"""The HAL compilation pipeline (run by the front-end at load time).

Stages, mirroring the paper's compiler/runtime split:

0. AST lowering of plain-def methods: request sites are found by
   dependence analysis over the AST, independent requests are grouped
   into shared joins, and the body is CPS-rewritten into the generator
   form the runtime executes (:mod:`repro.hal.lower`);
1. constraint-based type inference over all behaviour methods
   (:mod:`repro.hal.inference`);
2. dependence analysis: continuation structure of request/reply
   methods + purity detection (:mod:`repro.hal.dependence`);
3. dispatch-plan selection with static type checking
   (:mod:`repro.hal.optimize`).

The output is attached to each :class:`~repro.actors.behavior.Behavior`
(its ``compiled`` slot) where the runtime's send path consults it —
the "open interface" between compiler and runtime the paper argues
for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.actors.behavior import Behavior, behavior_of
from repro.hal.dependence import DependenceResult, analyze_dependence
from repro.hal.inference import InferenceResult, infer_program
from repro.hal.lower import lower_method
from repro.hal.optimize import BehaviorPlans, select_plans

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.program import HalProgram


@dataclass
class CompiledBehavior:
    """Per-behaviour compiler output consulted by the runtime."""

    behavior: str
    plans: BehaviorPlans
    functional: bool
    #: Methods whose bodies came out of the AST lowering frontend.
    lowered_methods: List[str] = field(default_factory=list)
    #: (method, selector) -> reason string, for the compiler report.
    notes: Dict = field(default_factory=dict)

    def plan_for(self, method: str, selector: str) -> str:
        return self.plans.plan_for(method, selector)


@dataclass
class CompiledProgram:
    """Whole-program compiler output + report."""

    name: str
    behaviors: Dict[str, CompiledBehavior]
    inference: InferenceResult
    dependence: DependenceResult
    diagnostics: List[str]

    # ------------------------------------------------------------------
    def plan_counts(self) -> Dict[str, int]:
        """Dispatch-mechanism tally over every planned send site."""
        counts = {"static": 0, "lookup": 0, "generic": 0}
        for cb in self.behaviors.values():
            for plan in cb.plans.plans.values():
                counts[plan.kind] = counts.get(plan.kind, 0) + 1
        return counts

    def report(self) -> str:
        """Human-readable compilation report (dispatch decisions,
        continuation structure, purity)."""
        lines = [f"=== HAL compilation report: {self.name} ==="]
        for bname in sorted(self.behaviors):
            cb = self.behaviors[bname]
            tag = " [functional]" if cb.functional else ""
            lines.append(f"behaviour {bname}{tag}")
            for (mname, selector), plan in sorted(cb.plans.plans.items()):
                lines.append(
                    f"  {mname}: send {selector!r} -> {plan.kind:<7} ({plan.reason})"
                )
            for (b, m), cont in sorted(self.dependence.continuations.items()):
                if b == bname and cont.is_generator:
                    joins = ", ".join(
                        f"{j.slots if j.slots >= 0 else '?'}@{j.lineno}"
                        for j in cont.joins
                    )
                    frontend = "lowered plain-def" if cont.lowered else "generator"
                    lines.append(
                        f"  {m}: {cont.split_points} continuation split(s) "
                        f"[{joins}] ({frontend})"
                    )
        counts = self.plan_counts()
        lines.append(
            f"plans: {counts['static']} static / {counts['lookup']} lookup "
            f"/ {counts['generic']} generic"
        )
        for d in self.diagnostics:
            lines.append(d)
        return "\n".join(lines)

    def report_dict(self) -> dict:
        """The report as JSON-able data (the CLI's ``--json`` output)."""
        behaviors = {}
        for bname in sorted(self.behaviors):
            cb = self.behaviors[bname]
            plans = [
                {
                    "method": mname,
                    "selector": selector,
                    "kind": plan.kind,
                    "receivers": sorted(plan.receivers) if plan.receivers is not None else None,
                    "reason": plan.reason,
                }
                for (mname, selector), plan in sorted(cb.plans.plans.items())
            ]
            continuations = [
                {
                    "method": m,
                    "frontend": "lowered" if cont.lowered else "generator",
                    "splits": cont.split_points,
                    "joins": [
                        {"line": j.lineno, "slots": j.slots, "grouped": j.grouped}
                        for j in cont.joins
                    ],
                }
                for (b, m), cont in sorted(self.dependence.continuations.items())
                if b == bname and cont.is_generator
            ]
            behaviors[bname] = {
                "functional": cb.functional,
                "lowered_methods": sorted(cb.lowered_methods),
                "plans": plans,
                "continuations": continuations,
            }
        return {
            "program": self.name,
            "behaviors": behaviors,
            "plan_counts": self.plan_counts(),
            "diagnostics": list(self.diagnostics),
        }

    def static_site_count(self) -> int:
        return sum(
            1
            for cb in self.behaviors.values()
            for plan in cb.plans.plans.values()
            if plan.kind == "static"
        )


def _lower_universe(universe: Dict[str, Behavior]) -> Dict[str, List[str]]:
    """Stage 0: run the AST frontend over every plain-def method.

    Mutates each behaviour's method table in place — the lowered
    generator *is* the method from here on (the runtime dispatches it,
    inference analyses its stored AST).  Idempotent: already-lowered
    and already-generator methods are skipped, so repeated compilation
    under a growing universe is safe.
    """
    lowered: Dict[str, List[str]] = {}
    for bname, beh in universe.items():
        for mname, fn in list(beh.methods.items()):
            lm = lower_method(bname, mname, fn)
            if lm is not None:
                beh.methods[mname] = lm.fn
                lowered.setdefault(bname, []).append(mname)
    return lowered


def compile_behaviors(
    behaviors: Dict[str, Behavior],
    *,
    name: str = "<adhoc>",
    strict: bool = True,
    universe: Optional[Dict[str, Behavior]] = None,
) -> CompiledProgram:
    """Run the pipeline over a behaviour set and attach the results.

    ``universe`` is the full set of behaviours visible at link time —
    kernels execute all programs in one address space, so a program's
    sends may target behaviours loaded earlier.  Analysis runs over the
    universe; results are attached to ``behaviors`` only.
    """
    universe = dict(universe or {})
    universe.update(behaviors)
    _lower_universe(universe)
    inference = infer_program(universe)
    dependence = analyze_dependence(inference)
    plans, diags = select_plans(universe, inference, dependence, strict=strict)
    diags = list(inference.diagnostics) + diags
    compiled: Dict[str, CompiledBehavior] = {}
    for bname, beh in behaviors.items():
        functional = dependence.behavior_is_functional(bname)
        # Flag-derived, not taken from _lower_universe's return: a
        # recompile of an already-lowered behaviour must still report
        # its methods as lowered.
        lowered = sorted(
            m for m, fn in beh.methods.items()
            if getattr(fn, "__hal_lowered__", False)
        )
        cb = CompiledBehavior(bname, plans[bname], functional,
                              lowered_methods=lowered)
        beh.compiled = cb
        beh.functional = functional
        compiled[bname] = cb
    return CompiledProgram(name, compiled, inference, dependence, diags)


def compile_program(
    program: "HalProgram",
    *,
    strict: bool = True,
    universe: Optional[Dict[str, Behavior]] = None,
) -> CompiledProgram:
    """Compile a program image (front-end entry point)."""
    behaviors = {behavior_of(cls).name: behavior_of(cls) for cls in program.behaviors}
    return compile_behaviors(
        behaviors, name=program.name, strict=strict, universe=universe
    )
