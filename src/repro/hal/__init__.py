"""The HAL language layer.

HAL is untyped but statically type-checked: the compiler infers types
with a constraint-based algorithm (§2, [27]) and uses them to select
dispatch mechanisms (§6.3).  This package provides:

- :mod:`repro.hal.dsl` — the embedded programming surface
  (``@behavior``, ``@method``, ``disable_when``);
- :mod:`repro.hal.lower` — the AST frontend: plain-def methods are
  continuation-split at each ``ctx.request`` and CPS-rewritten into
  generator form, with independent requests grouped into shared joins;
- :mod:`repro.hal.types` / :mod:`repro.hal.inference` — the type
  lattice and the constraint-based inference over method ASTs;
- :mod:`repro.hal.dependence` — analysis shared by both frontends:
  continuation-structure validation and purity detection;
- :mod:`repro.hal.optimize` / :mod:`repro.hal.compiler` — dispatch-plan
  selection and the compilation pipeline invoked at program load.
"""

from repro.hal.compiler import CompiledBehavior, CompiledProgram, compile_program
from repro.hal.dsl import behavior, disable_when, method
from repro.hal.lower import LoweredMethod, lower_method

__all__ = [
    "behavior",
    "method",
    "disable_when",
    "compile_program",
    "CompiledProgram",
    "CompiledBehavior",
    "LoweredMethod",
    "lower_method",
]
