"""Column Cholesky decomposition under four regimes (§2.2, Table 1).

The paper compares implementations that start iteration ``i+1`` before
iteration ``i`` completes, *using only local synchronization* (columns
BP and CP: block and cyclic column mapping) against implementations
that complete each iteration before the next starts (columns Seq and
Bcast: global synchronization, point-to-point vs broadcast pivot
distribution).  Local synchronization wins, and cyclic mapping
pipelines better than block mapping as P grows.  Flow control matters
here too (§6.5): the pipelined variants move many concurrent column
transfers, which back up the network without it.

The factorisation is *real*: column actors hold NumPy column vectors,
and :func:`verify_cholesky` checks ``L @ L.T == A``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.config import RuntimeConfig
from repro.hal.dsl import HalProgram, behavior, disable_when, method
from repro.runtime.system import HalRuntime

#: Table 1 row labels -> (pipelined?, placement / distribution).
VARIANTS = ("BP", "CP", "Seq", "Bcast")


def make_spd_matrix(n: int, seed: int = 7) -> np.ndarray:
    """A deterministic, well-conditioned SPD matrix."""
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((n, n))
    return b @ b.T + n * np.eye(n)


def _column_of(n: int, seed: int, j: int) -> np.ndarray:
    """Column ``j`` of the shared input matrix (regenerated locally so
    grpnew needs no per-member payload)."""
    return make_spd_matrix(n, seed)[:, j].copy()


# ----------------------------------------------------------------------
# pipelined variants (BP / CP): local synchronization only
# ----------------------------------------------------------------------
@behavior
class PipelinedColumn:
    """Column ``j``: applies updates as they arrive; when all ``j``
    updates are in, finalises itself and distributes itself to the
    later columns.  No barrier anywhere — iteration ``j+1`` starts
    while iteration ``j`` is still in flight, kept correct purely by
    the per-column update count (local synchronization).

    ``dist`` selects the distribution mechanism: ``"bcast"`` (group
    broadcast, the default — so the Table 1 comparison against the
    globally synchronised Bcast variant isolates *synchronization*)
    or ``"p2p"`` (one point-to-point — typically bulk — transfer per
    later column, the traffic pattern the flow-control ablation
    exercises).
    """

    def __init__(self, n, seed, dist, index, size):
        self.n = n
        self.j = index
        self.dist = dist
        self.col = _column_of(n, seed, index)
        self.applied = 0
        self.done = False
        self.coordinator = None

    @method
    def start(self, ctx, coordinator):
        self.coordinator = coordinator
        # Column 0 needs no updates; later columns may already have
        # received all their updates if the start broadcast was slow.
        if not self.done and self.applied == self.j:
            self._finalize(ctx)

    @method
    def update(self, ctx, k, lk):
        """cmod(j, k): subtract the contribution of finalised column k."""
        j = self.j
        if k >= j:
            return  # broadcast copy reaching the pivot or earlier columns
        self.col[j:] -= lk[j] * lk[j:]
        ctx.flops(2 * (self.n - j) + 1)
        self.applied += 1
        if not self.done and self.applied == j and self.coordinator is not None:
            self._finalize(ctx)

    def _finalize(self, ctx):
        """cdiv(j) + fan the finalised column out to later columns."""
        j = self.j
        group = ctx.actor.group
        self.col[j] = np.sqrt(self.col[j])
        self.col[j + 1:] /= self.col[j]
        ctx.flops(self.n - j + 8)
        self.done = True
        lj = self.col
        if j + 1 < self.n:
            if self.dist == "bcast":
                ctx.broadcast(group, "update", j, lj)
            else:
                for i in range(j + 1, self.n):
                    ctx.send(group.member(i), "update", j, lj)
        ctx.send(self.coordinator, "column_done", j)


@behavior
class PipelineCoordinator:
    """Counts finalised columns; replies to the driver when all done."""

    def __init__(self, n):
        self.n = n
        self.done = 0

    @method
    def run(self, ctx, group_size):
        # The reply is deferred until every column reports in.
        self.client = ctx.msg.reply_to
        self._maybe_finish(ctx)

    @method
    def column_done(self, ctx, j):
        self.done += 1
        self._maybe_finish(ctx)

    def _maybe_finish(self, ctx):
        if self.done == self.n and getattr(self, "client", None) is not None:
            ctx.kernel.reply_router.send_reply(self.client, self.done)
            self.client = None


# ----------------------------------------------------------------------
# globally synchronised variants (Seq / Bcast)
# ----------------------------------------------------------------------
@behavior
class SyncColumn:
    """Column actor driven by a global coordinator."""

    def __init__(self, n, seed, index, size):
        self.n = n
        self.j = index
        self.col = _column_of(n, seed, index)
        self.applied = 0

    @method
    def cdiv(self, ctx):
        """Finalise this column and return it (to the coordinator)."""
        j = self.j
        self.col[j] = np.sqrt(self.col[j])
        self.col[j + 1:] /= self.col[j]
        ctx.flops(self.n - j + 8)
        return self.col

    @method
    def apply(self, ctx, k, lk):
        """cmod with an explicit ack (the coordinator barriers on it)."""
        j = self.j
        self.col[j:] -= lk[j] * lk[j:]
        ctx.flops(2 * (self.n - j) + 1)
        self.applied += 1
        return True

    @method
    def apply_bcast(self, ctx, k, lk):
        """cmod from a broadcast copy (no ack; the barrier is `sync`)."""
        if self.j > k:
            j = self.j
            self.col[j:] -= lk[j] * lk[j:]
            ctx.flops(2 * (self.n - j) + 1)
            self.applied += 1

    @method
    @disable_when(lambda self, msg: self.j > msg.args[0] and self.applied <= msg.args[0])
    def sync(self, ctx, k):
        """Barrier probe: enabled only once update ``k`` has been
        applied (a local synchronization constraint implementing a
        global barrier)."""
        return True

    @method
    def cdiv_bcast(self, ctx, group_ignored):
        """Finalise and broadcast to the whole group."""
        j = self.j
        self.col[j] = np.sqrt(self.col[j])
        self.col[j + 1:] /= self.col[j]
        ctx.flops(self.n - j + 8)
        ctx.broadcast(ctx.actor.group, "apply_bcast", j, self.col)
        return True


@behavior
class SeqCoordinator:
    """Global synchronization, point-to-point distribution: iteration
    ``k+1`` starts only after every cmod of iteration ``k`` acked."""

    def __init__(self, n):
        self.n = n

    @method
    def run(self, ctx, group):
        n = self.n
        for k in range(n):
            lk = yield ctx.request(group.member(k), "cdiv")
            if k + 1 < n:
                yield [
                    ctx.request(group.member(j), "apply", k, lk)
                    for j in range(k + 1, n)
                ]
        return n


@behavior
class BcastCoordinator:
    """Global synchronization, broadcast distribution: the pivot column
    is broadcast to the group; a sync sweep forms the barrier."""

    def __init__(self, n):
        self.n = n

    @method
    def run(self, ctx, group):
        n = self.n
        for k in range(n):
            yield ctx.request(group.member(k), "cdiv_bcast", 0)
            if k + 1 < n:
                yield [
                    ctx.request(group.member(j), "sync", k)
                    for j in range(k + 1, n)
                ]
        return n


# ----------------------------------------------------------------------
# program + driver
# ----------------------------------------------------------------------
def cholesky_program() -> HalProgram:
    program = HalProgram("cholesky")
    for cls in (PipelinedColumn, PipelineCoordinator, SyncColumn,
                SeqCoordinator, BcastCoordinator):
        program.behavior(cls)
    return program


@dataclass
class CholeskyResult:
    variant: str
    n: int
    num_nodes: int
    elapsed_us: float
    L: np.ndarray
    backup_events: int

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_us / 1000.0


def run_cholesky(
    variant: str,
    n: int,
    num_nodes: int,
    *,
    seed: int = 7,
    config: Optional[RuntimeConfig] = None,
    verify: bool = True,
    p2p: bool = False,
) -> CholeskyResult:
    """Run one Table 1 cell.  ``variant`` is BP, CP, Seq or Bcast.
    ``p2p=True`` makes the pipelined variants distribute columns with
    point-to-point (bulk-eligible) transfers instead of broadcast —
    the traffic the flow-control ablation measures."""
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; pick from {VARIANTS}")
    cfg = config or RuntimeConfig(num_nodes=num_nodes, seed=seed)
    rt = HalRuntime(cfg)
    rt.load(cholesky_program())
    start = rt.now

    if variant in ("BP", "CP"):
        placement = "block" if variant == "BP" else "cyclic"
        dist = "p2p" if p2p else "bcast"
        group = rt.grpnew(PipelinedColumn, n, n, seed, dist, placement=placement)
        coord = rt.spawn(PipelineCoordinator, n, at=0)
        rt.run()  # let the group finish materialising
        rt.broadcast(group, "start", coord)
        done = rt.call(coord, "run", n)
    else:
        placement = "cyclic"
        group = rt.grpnew(SyncColumn, n, n, seed, placement=placement)
        coord_cls = SeqCoordinator if variant == "Seq" else BcastCoordinator
        coord = rt.spawn(coord_cls, n, at=0)
        rt.run()
        done = rt.call(coord, "run", group)
    assert done == n
    rt.run()

    elapsed = rt.now - start
    L = np.zeros((n, n))
    for j in range(n):
        col = rt.state_of(group.member(j)).col
        L[j:, j] = col[j:]
    if verify:
        verify_cholesky(L, n, seed)
    return CholeskyResult(
        variant=variant,
        n=n,
        num_nodes=num_nodes,
        elapsed_us=elapsed,
        L=L,
        backup_events=rt.stats.counter("net.backup_events"),
    )


def verify_cholesky(L: np.ndarray, n: int, seed: int) -> None:
    a = make_spd_matrix(n, seed)
    err = np.max(np.abs(L @ L.T - a))
    if err > 1e-6 * n:
        raise AssertionError(f"Cholesky residual too large: {err}")
