"""Runtime-primitive micro-measurements (§7.1, Tables 2 and 3).

Every number here is measured *end-to-end through the protocol code*
on a live runtime — simulated clock deltas around real operations —
rather than read out of the cost-model table, so the published anchor
points (remote creation issue 5.83 us local vs. 20.83 us actual;
locality check under 1 us) emerge from sums over the actual paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import RuntimeConfig, SchedulerParams
from repro.hal.dsl import HalProgram, behavior, method
from repro.runtime.names import ActorRef
from repro.runtime.system import HalRuntime


@behavior
class Null:
    """The smallest possible behaviour."""

    def __init__(self):
        self.count = 0

    @method
    def noop(self, ctx):
        self.count += 1

    @method
    def echo(self, ctx, x):
        return x


@behavior
class Pinger:
    """Sends to a statically typed acquaintance (compiler infers the
    receiver type, enabling static dispatch with locality check)."""

    def __init__(self):
        self.target = None

    @method
    def bind(self, ctx):
        self.target = ctx.new(Null)

    @method
    def ping(self, ctx):
        ctx.send(self.target, "noop")


def micro_program() -> HalProgram:
    program = HalProgram("microbench")
    program.behavior(Null)
    program.behavior(Pinger)
    return program


def fresh_runtime(
    num_nodes: int = 4,
    *,
    config: Optional[RuntimeConfig] = None,
    trace: bool = False,
) -> HalRuntime:
    rt = HalRuntime(config or RuntimeConfig(num_nodes=num_nodes), trace=trace)
    rt.load(micro_program())
    return rt


# ----------------------------------------------------------------------
# Table 2 primitives
# ----------------------------------------------------------------------
def measure_local_creation(rt: HalRuntime, *, node: int = 0) -> float:
    """CPU time of one local ``new``."""
    kernel = rt.kernels[node]

    def op():
        t0 = kernel.node.now
        kernel.creation.create(Null, ())
        return kernel.node.now - t0

    return kernel.node.bootstrap(op)


def measure_remote_creation_issue(rt: HalRuntime, *, node: int = 0, dest: int = 1) -> float:
    """Local execution time of issuing a remote ``new`` (the alias
    path: the creator resumes immediately — the paper's 5.83 us)."""
    kernel = rt.kernels[node]

    def op():
        t0 = kernel.node.now
        kernel.creation.create(Null, (), at=dest)
        return kernel.node.now - t0

    return kernel.node.bootstrap(op)


def measure_remote_creation_actual(rt: HalRuntime, *, node: int = 0, dest: int = 1) -> float:
    """End-to-end latency from issuing a remote ``new`` until the actor
    is registered on the destination (the paper's 20.83 us)."""
    kernel = rt.kernels[node]
    dest_kernel = rt.kernels[dest]
    before = rt.stats.counter("creation.remote_served")

    t0 = kernel.node.bootstrap(lambda: kernel.node.now)
    kernel.node.bootstrap(lambda: kernel.creation.create(Null, (), at=dest))
    rt.run(stop_when=lambda: rt.stats.counter("creation.remote_served") > before)
    return dest_kernel.node.now - t0


def measure_locality_check(rt: HalRuntime, *, node: int = 0) -> float:
    """The locality-check routine on a locally created actor (< 1 us)."""
    kernel = rt.kernels[node]
    ref = rt.spawn(Null, at=node)

    def op():
        t0 = kernel.node.now
        desc, is_local = kernel.delivery.locality_check(ref)
        assert is_local
        return kernel.node.now - t0

    # Warm: the ref was created here so the descriptor already exists.
    return kernel.node.bootstrap(op)


@dataclass
class SendMeasurement:
    """Latency split of one message send."""

    sender_us: float    #: CPU time on the sending side
    to_invoke_us: float  #: send start -> method body entry


def _measure_send(rt: HalRuntime, ref: ActorRef, node: int) -> SendMeasurement:
    kernel = rt.kernels[node]
    target_actor = rt.actor_of(ref)
    before = target_actor.messages_processed

    def op():
        t0 = kernel.node.now
        kernel.delivery.send_message(ref, "noop", ())
        return t0, kernel.node.now

    t0, t1 = kernel.node.bootstrap(op)
    rt.run(stop_when=lambda: target_actor.messages_processed > before)
    host = rt.kernels[rt.locate(ref)]
    return SendMeasurement(sender_us=t1 - t0, to_invoke_us=host.node.now - t0)


def measure_send_local_generic(rt: HalRuntime, *, node: int = 0) -> SendMeasurement:
    """Generic buffered local send: name translation, enqueue, then
    dispatch + method lookup in the scheduling slice."""
    ref = rt.spawn(Null, at=node)
    rt.run()
    return _measure_send(rt, ref, node)


def measure_send_remote(rt: HalRuntime, *, node: int = 0, dest: int = 1,
                        warm: bool = True) -> SendMeasurement:
    """Remote send; ``warm`` pre-resolves the descriptor cache so the
    receiving node dereferences the cached descriptor address."""
    ref = rt.spawn(Null, at=dest)
    rt.run()
    if warm:
        m = _measure_send(rt, ref, node)  # first send caches the addr
        rt.run()
        del m
    return _measure_send(rt, ref, node)


def measure_reply_fill(rt: HalRuntime, *, node: int = 0) -> float:
    """Local continuation slot fill + fire path."""
    kernel = rt.kernels[node]
    target, box = rt.make_collector(from_node=node)

    def op():
        t0 = kernel.node.now
        kernel.reply_router.send_reply(target, 42)
        return kernel.node.now - t0

    fill_us = kernel.node.bootstrap(op)
    rt.run()
    assert box == [42]
    return fill_us


# ----------------------------------------------------------------------
# Table 3: comparable method-invocation costs under dispatch regimes
# ----------------------------------------------------------------------
def measure_invocation_regimes(num_nodes: int = 2) -> Dict[str, float]:
    """Send-to-completion latency of a local message under the dispatch
    regimes Table 3 compares.

    - ``static``:  compiler inferred a unique receiver type — locality
      check + function invocation (the Table 3 formula);
    - ``lookup``:  finitely many receiver types — adds method lookup;
    - ``generic``: unknown receiver — the buffered local path;
    - ``queued``:  static dispatch disabled entirely (an encapsulated,
      always-buffering runtime in the style the paper contrasts with).
    """
    return {
        regime: _measure_regime(regime, num_nodes)
        for regime in ("static", "lookup", "generic", "queued")
    }


def _measure_regime(regime: str, num_nodes: int) -> float:
    sched = SchedulerParams(static_dispatch=(regime in ("static", "lookup")))
    rt = fresh_runtime(num_nodes, config=RuntimeConfig(
        num_nodes=num_nodes, scheduler=sched,
    ))
    ref = rt.spawn(Null, at=0)
    rt.run()
    kernel = rt.kernels[0]
    actor = rt.actor_of(ref)

    # Build a context that carries the compiler's verdict for the site.
    from repro.actors.message import ActorMessage

    def op():
        t0 = kernel.node.now
        desc, is_local = kernel.delivery.locality_check(ref)
        assert is_local
        msg = ActorMessage("noop", (), sender_node=0, sent_at=t0)
        if regime in ("static", "lookup"):
            ok = kernel.execution.try_inline(
                actor, msg, plan_kind=regime, depth=0
            )
            assert ok
            return kernel.node.now - t0
        kernel.execution.deliver_local(actor, msg)
        return t0

    before = actor.messages_processed
    result = kernel.node.bootstrap(op)
    if regime in ("static", "lookup"):
        return result
    t0 = result
    rt.run(stop_when=lambda: actor.messages_processed > before)
    return kernel.node.now - t0
