"""Fibonacci number generator (§7.2, Table 4).

"Although the Fibonacci number generator is a very simple program, it
is extremely concurrent: executing the Fibonacci of 33 results in the
creation of 11,405,773 actors.  Moreover, its computation tree has a
great deal of load imbalance."

Two implementations:

- :func:`fib_task` — the compiled form the paper measures: since
  Fibonacci actors are purely functional, actor creations are
  optimised away into lightweight tasks joined by explicit join
  continuations (the compiler's CPS output).  Receiver-initiated
  random-polling load balancing redistributes the imbalanced tree.
- :class:`FibActor` — the naive actor form (one actor per call),
  useful at small ``n`` to validate the creation-elision optimisation.
  Written plain-def (no ``yield``): the AST frontend inserts its
  grouped split point and static dispatch plans.  Its hand-written
  generator twin :class:`FibActorGen` pins frontend equivalence.

Static placement (the "without dynamic load balancing" columns of
Table 4) scatters subtree roots over nodes only near the top of the
tree, which — because fib's two subtrees have exponentially different
sizes — leaves most of the work on a few nodes.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.config import LoadBalanceParams, RuntimeConfig
from repro.hal.dsl import HalProgram, behavior, method
from repro.runtime.system import HalRuntime

#: Per-call grain of the simulated task body, calibrated so that a
#: single 33 MHz SPARC node lands in the range the paper reports for
#: actor-based fib (HAL is faster than Cilk's 6.4 us/call but well
#: above optimised C's 0.74 us/call).
TASK_GRAIN_US = 2.5

#: Depth below which static placement scatters children round-robin.
STATIC_SPLIT_DEPTH = 5


@functools.lru_cache(maxsize=None)
def fib_value(n: int) -> int:
    """Ground truth."""
    if n < 2:
        return n
    return fib_value(n - 1) + fib_value(n - 2)


@functools.lru_cache(maxsize=None)
def fib_calls(n: int) -> int:
    """Number of calls (= actors/tasks) in the naive recursion tree;
    fib_calls(33) == 11_405_773, the paper's count."""
    if n < 2:
        return 1
    return 1 + fib_calls(n - 1) + fib_calls(n - 2)


# ----------------------------------------------------------------------
# compiled (creation-elided) task form
# ----------------------------------------------------------------------
def fib_task(ctx, n: int, target, depth: int) -> None:
    """One node of the recursion tree as a lightweight task.

    ``target`` is the join-continuation slot awaiting this subtree's
    value.  The two children share a fresh two-slot join continuation
    whose function adds the results and forwards them — the exact
    compiled structure of §6.2/Fig. 4.
    """
    ctx.charge(TASK_GRAIN_US)
    if n < 2:
        ctx.reply_to(target, n)
        return
    t1, t2 = ctx.make_join(2, lambda vals: ctx.reply_to(target, vals[0] + vals[1]))
    lb_enabled = ctx.kernel.config.load_balance.enabled
    if lb_enabled or depth >= STATIC_SPLIT_DEPTH:
        # Spawn locally; idle nodes steal from the tail of our queue.
        ctx.spawn_task("fib", n - 1, t1, depth + 1)
        ctx.spawn_task("fib", n - 2, t2, depth + 1)
    else:
        # Static scatter: embed the top of the tree over the partition.
        p = ctx.num_nodes
        left = (2 * ctx.node + 1) % p
        right = (2 * ctx.node + 2) % p
        ctx.spawn_task("fib", n - 1, t1, depth + 1, at=left)
        ctx.spawn_task("fib", n - 2, t2, depth + 1, at=right)


# ----------------------------------------------------------------------
# naive actor form (validates creation elision)
# ----------------------------------------------------------------------
@behavior
class FibActor:
    """One actor per call; children are created dynamically.

    Written in the plain-def frontend style: no ``yield`` anywhere.
    The compiler's AST frontend proves the two requests independent
    (neither reads the other's reply), groups them into one shared
    two-slot join, and CPS-rewrites the body into generator form —
    and, because each request's receiver type is uniquely inferred
    from ``ctx.new(FibActor, ...)``, plans the sites for static
    dispatch (local children are invoked directly on the stack).
    """

    def __init__(self):
        pass

    @method
    def compute(self, ctx, n):
        ctx.charge(TASK_GRAIN_US)
        if n < 2:
            return n
        p = ctx.num_nodes
        left = ctx.new(FibActor, at=(ctx.node + 1) % p)
        right = ctx.new(FibActor, at=(ctx.node + 2) % p)
        a = ctx.request(left, "compute", n - 1)
        b = ctx.request(right, "compute", n - 2)
        return a + b


@behavior
class FibActorGen:
    """Hand-written generator twin of :class:`FibActor` (the explicit
    split-point DSL).  Kept as the equivalence fixture: both frontends
    must produce the identical continuation structure and final state,
    pinned by tests on every backend."""

    def __init__(self):
        pass

    @method
    def compute(self, ctx, n):
        ctx.charge(TASK_GRAIN_US)
        if n < 2:
            return n
        p = ctx.num_nodes
        left = ctx.new(FibActorGen, at=(ctx.node + 1) % p)
        right = ctx.new(FibActorGen, at=(ctx.node + 2) % p)
        a, b = yield [
            ctx.request(left, "compute", n - 1),
            ctx.request(right, "compute", n - 2),
        ]
        return a + b


def fib_program() -> HalProgram:
    program = HalProgram("fibonacci")
    program.behavior(FibActor)
    program.tasks["fib"] = fib_task
    return program


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------
@dataclass
class FibResult:
    n: int
    value: int
    elapsed_us: float
    tasks: int
    steals: int
    num_nodes: int

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_us / 1e6


def run_fib(
    n: int,
    num_nodes: int,
    *,
    load_balance: bool,
    seed: int = 1995,
    use_actors: bool = False,
    config: Optional[RuntimeConfig] = None,
) -> FibResult:
    """Run fib(n) on a fresh runtime; returns value + simulated time."""
    cfg = config or RuntimeConfig(
        num_nodes=num_nodes,
        seed=seed,
        load_balance=LoadBalanceParams(enabled=load_balance),
    )
    rt = HalRuntime(cfg)
    rt.load(fib_program())
    start = rt.now
    if use_actors:
        root = rt.spawn(FibActor, at=0)
        value = rt.call(root, "compute", n)
    else:
        target, box = rt.make_collector(from_node=0)
        rt.spawn_task("fib", n, target, 0, at=0)
        rt.run()
        if not box:
            raise RuntimeError("fib computation did not complete")
        value = box[0]
    elapsed = rt.now - start
    expected = fib_value(n)
    if value != expected:
        raise AssertionError(f"fib({n}) = {value}, expected {expected}")
    return FibResult(
        n=n,
        value=value,
        elapsed_us=elapsed,
        tasks=rt.stats.counter("exec.tasks"),
        steals=rt.stats.counter("steal.received"),
        num_nodes=num_nodes,
    )


# ----------------------------------------------------------------------
# comparator models (Table 4 context rows)
# ----------------------------------------------------------------------
#: Cilk on one 33 MHz SPARC: 73.16 s for fib(33) -> us per call.
CILK_US_PER_CALL = 73.16e6 / fib_calls(33)
#: Optimised sequential C: 8.49 s for fib(33) -> us per call.
C_US_PER_CALL = 8.49e6 / fib_calls(33)


def cilk_model_us(n: int) -> float:
    """Modelled single-node Cilk time, calibrated from the paper."""
    return fib_calls(n) * CILK_US_PER_CALL


def c_model_us(n: int) -> float:
    """Modelled optimised-C time, calibrated from the paper."""
    return fib_calls(n) * C_US_PER_CALL
