"""Applications used by the paper's evaluation (§7) and the examples.

- :mod:`repro.apps.fibonacci` — the Table 4 workload: an extremely
  concurrent, load-imbalanced divide-and-conquer tree with actor
  creations optimised into lightweight tasks;
- :mod:`repro.apps.cholesky` — the Table 1 workload: column Cholesky
  under four synchronization/mapping regimes (BP, CP, Seq, Bcast);
- :mod:`repro.apps.systolic` — the Table 5 workload: Cannon's systolic
  matrix multiplication with per-actor local synchronization only;
- :mod:`repro.apps.microbench` — tiny behaviours used by the runtime
  primitive measurements (Tables 2 and 3).
"""

__all__ = ["fibonacci", "cholesky", "systolic", "microbench"]
