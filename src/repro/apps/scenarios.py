"""Named, traceable scenarios for the observability CLI.

Each scenario boots a runtime (with causal tracing on by default),
drives a workload whose message journeys exercise the protocols the
paper describes — buffered delivery, migration, FIR chases, name-table
back-patching, join continuations, work stealing — and returns the
runtime so callers can export its span log or inspect its latency
histograms.

::

    python -m repro trace migration_tour --out tour.json
    python -m repro stats fibonacci_loadbalance --n 14 --nodes 4
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.config import (
    LoadBalanceParams,
    MpParams,
    NetParams,
    RuntimeConfig,
    TracingParams,
)
from repro.hal.dsl import behavior, method
from repro.runtime.system import HalRuntime


@behavior
class Wanderer:
    """An actor toured across the partition by ``visit`` messages.

    Every visit is processed at the actor's *current* node and then
    migrates it — former hosts keep forwarding pointers, so a later
    send from a node with a stale cache must chase the actor through
    the FIR protocol.
    """

    def __init__(self):
        self.visits = 0

    @method
    def visit(self, ctx, hop_to):
        self.visits += 1
        if hop_to is not None and hop_to != ctx.node:
            ctx.migrate(hop_to)

    @method
    def ping(self, ctx):
        return self.visits


@behavior
class PingPonger:
    """One side of a cross-node rally: each ``ping`` counts a hit and
    returns the ball until the rally budget runs out."""

    def __init__(self):
        self.hits = 0
        self.peer = None

    @method
    def set_peer(self, ctx, peer):
        self.peer = peer

    @method
    def ping(self, ctx, remaining):
        self.hits += 1
        if remaining > 0:
            ctx.send(self.peer, "ping", remaining - 1)

    @method
    def score(self, ctx):
        return self.hits


@behavior
class Referee:
    """Settles a rally by collecting both scores with one request join.

    Written in the plain-def frontend style — no ``yield``: the HAL
    compiler proves the two requests independent, groups them into a
    shared two-slot join continuation, and rewrites the body into the
    generator form the runtime executes.
    """

    def __init__(self):
        self.last_total = 0

    @method
    def tally(self, ctx, a, b):
        sa = ctx.request(a, "score")
        sb = ctx.request(b, "score")
        self.last_total = sa + sb
        return self.last_total


@behavior
class GroupCell:
    """One member of an actor group; accumulates broadcast deliveries.

    The ``(index, size)`` tail is the grpnew constructor convention —
    each member knows its place so the driver can audit per-member
    delivery exactly.
    """

    def __init__(self, index=0, size=1):
        self.index = index
        self.size = size
        self.hits = 0

    @method
    def bump(self, ctx, k):
        self.hits += k

    @method
    def total(self, ctx):
        return self.hits


@dataclass
class ScenarioResult:
    """What a scenario produced, plus the runtime for span export."""

    name: str
    runtime: HalRuntime
    summary: Dict[str, object] = field(default_factory=dict)


def run_ping_pong(
    *,
    num_nodes: int = 2,
    n: int = 20,
    trace: bool = True,
    seed: int = 1995,
    faults=None,
    backend: str = "sim",
    mp: Optional[MpParams] = None,
    net: Optional[NetParams] = None,
    tracing: Optional[TracingParams] = None,
) -> ScenarioResult:
    """A ``2n``-hit rally between actors on two different nodes.

    The simplest cross-node protocol exercise: every hit is one
    active message, so the final scores audit exactly how many
    messages the platform delivered.
    """
    if num_nodes < 2:
        raise ValueError("ping_pong needs at least 2 nodes")
    cfg = RuntimeConfig(num_nodes=num_nodes, seed=seed, backend=backend,
                        mp=mp or MpParams(), net=net or NetParams(),
                        tracing=tracing or TracingParams())
    rt = HalRuntime(cfg, trace=trace, faults=faults)
    rt.load_behaviors(PingPonger, Referee)
    a = rt.spawn(PingPonger, at=0)
    b = rt.spawn(PingPonger, at=1)
    rt.send(a, "set_peer", b)
    rt.send(b, "set_peer", a)
    rt.run()
    rally = 2 * n
    rt.send(a, "ping", rally - 1)
    rt.run()
    # The referee's plain-def tally is the lowered-frontend exercise:
    # one grouped join collects both scores.
    referee = rt.spawn(Referee, at=0)
    total = rt.call(referee, "tally", a, b)
    score_a = rt.call(a, "score")
    score_b = rt.call(b, "score")
    assert score_a + score_b == rally == total, (score_a, score_b, rally, total)
    return ScenarioResult(
        name="ping_pong",
        runtime=rt,
        summary={
            "rally": rally,
            "score_a": score_a,
            "score_b": score_b,
            "referee_total": total,
            "elapsed_us": rt.now,
        },
    )


def run_migration_tour(
    *,
    num_nodes: int = 5,
    n: int = 3,
    trace: bool = True,
    seed: int = 1995,
    faults=None,
    backend: str = "sim",
    mp: Optional[MpParams] = None,
    net: Optional[NetParams] = None,
    tracing: Optional[TracingParams] = None,
) -> ScenarioResult:
    """Tour one actor through ``n`` migrations, then probe it from a
    node holding a stale cached address.

    The probe's trace shows the full location-transparent journey: the
    send, the network hop to the stale guess, the FIR chase along the
    forwarding chain, the resolve + replies that repair every chain
    member's table, the relayed delivery, the execution, and the
    back-patch that teaches the sender the actor's real address.
    """
    if num_nodes < 3:
        raise ValueError("migration_tour needs at least 3 nodes")
    # Address caching off: every migration arrival would otherwise
    # back-patch the birthplace, collapsing the forwarding trail to one
    # hop.  Without it each former host keeps only its "the actor left
    # me for X" pointer, so the probe's FIR walks the whole tour — and
    # the chain repair (FIR replies back-patching every member's name
    # table) is still visible in the trace.
    cfg = RuntimeConfig(num_nodes=num_nodes, seed=seed,
                        descriptor_caching=False, backend=backend,
                        mp=mp or MpParams(), net=net or NetParams(),
                        tracing=tracing or TracingParams())
    rt = HalRuntime(cfg, trace=trace, faults=faults)
    rt.load_behaviors(Wanderer)

    birth = 1
    w = rt.spawn(Wanderer, at=birth)
    # Teach node 0 the actor's address: the reply's back-patch caches
    # ``@1`` in node 0's name table — the cache the tour then stales.
    rt.call(w, "ping", from_node=0)

    # Tour the actor over nodes 1..P-1 (never node 0, so the probe
    # stays remote).  Each visit is sent from the actor's current node
    # (a local send: no wire traffic that could re-teach node 0).
    cur = birth
    others = [i for i in range(1, num_nodes) if i != birth]
    hops = [others[i % len(others)] if others[i % len(others)] != cur
            else birth for i in range(n)]
    for dest in hops:
        rt.send(w, "visit", dest, from_node=cur)
        rt.run()
        cur = dest

    # The traced probe: node 0 still believes ``@1``; the message is
    # forwarded there and the FIR protocol chases the tour's trail.
    visits = rt.call(w, "ping", from_node=0)
    assert visits == len(hops), (visits, hops)
    return ScenarioResult(
        name="migration_tour",
        runtime=rt,
        summary={
            "migrations": len(hops),
            "final_node": rt.locate(w),
            "visits": visits,
            "fir_requests": rt.stats.counter("fir.initiated"),
            "elapsed_us": rt.now,
        },
    )


def run_fibonacci_loadbalance(
    *,
    num_nodes: int = 4,
    n: int = 14,
    trace: bool = True,
    seed: int = 1995,
    faults=None,
    backend: str = "sim",
    mp: Optional[MpParams] = None,
    net: Optional[NetParams] = None,
    tracing: Optional[TracingParams] = None,
) -> ScenarioResult:
    """fib(n) under receiver-initiated work stealing, traced.

    Stolen tasks carry their causal context across the wire, so the
    trace shows the spawner's tree continuing on the thief's node.
    """
    from repro.apps.fibonacci import fib_program, fib_value

    cfg = RuntimeConfig(
        num_nodes=num_nodes,
        seed=seed,
        backend=backend,
        load_balance=LoadBalanceParams(enabled=True),
        mp=mp or MpParams(),
        net=net or NetParams(),
        tracing=tracing or TracingParams(),
    )
    rt = HalRuntime(cfg, trace=trace, faults=faults)
    rt.load(fib_program())
    target, box = rt.make_collector(from_node=0)
    rt.spawn_task("fib", n, target, 0, at=0)
    rt.run()
    if not box:
        raise RuntimeError("fibonacci_loadbalance did not complete")
    value = box[0]
    assert value == fib_value(n), (value, fib_value(n))
    return ScenarioResult(
        name="fibonacci_loadbalance",
        runtime=rt,
        summary={
            "n": n,
            "value": value,
            "tasks": rt.stats.counter("exec.tasks"),
            "steals": rt.stats.counter("steal.received"),
            "elapsed_us": rt.now,
        },
    )


def run_group_broadcast(
    *,
    num_nodes: int = 4,
    n: int = 8,
    trace: bool = True,
    seed: int = 1995,
    faults=None,
    backend: str = "sim",
    mp: Optional[MpParams] = None,
    net: Optional[NetParams] = None,
    tracing: Optional[TracingParams] = None,
) -> ScenarioResult:
    """``grpnew`` an ``n``-member group, broadcast to it three times,
    audit every member's tally.

    The broadcast replicates over the topology's spanning tree — on
    the mp backend the tree-forward messages share one serialised
    payload per fan-out and ride the batched wire frames, so this
    scenario is the collective-communication parity check across all
    three backends.
    """
    cfg = RuntimeConfig(num_nodes=num_nodes, seed=seed, backend=backend,
                        mp=mp or MpParams(), net=net or NetParams(),
                        tracing=tracing or TracingParams())
    rt = HalRuntime(cfg, trace=trace, faults=faults)
    rt.load_behaviors(GroupCell)
    group = rt.grpnew(GroupCell, n, placement="cyclic")
    rt.run()
    rounds = 3
    for r in range(rounds):
        rt.broadcast(group, "bump", r + 1)
    rt.run()
    expect = rounds * (rounds + 1) // 2
    tallies = [rt.call(group.member(i), "total") for i in range(n)]
    assert tallies == [expect] * n, (tallies, expect)
    return ScenarioResult(
        name="group_broadcast",
        runtime=rt,
        summary={
            "members": n,
            "rounds": rounds,
            "per_member": expect,
            "broadcasts": rt.stats.counter("groups.broadcasts"),
            "elapsed_us": rt.now,
        },
    )


#: Scenario registry for the CLI.  Every entry accepts
#: ``(num_nodes=..., n=..., trace=..., seed=..., faults=...)`` keyword
#: arguments (``faults`` is an optional :class:`repro.sim.faults.FaultPlan`;
#: ``mp`` optionally carries :class:`repro.config.MpParams` wire knobs).
SCENARIOS: Dict[str, Callable[..., ScenarioResult]] = {
    "ping_pong": run_ping_pong,
    "migration_tour": run_migration_tour,
    "fibonacci_loadbalance": run_fibonacci_loadbalance,
    "group_broadcast": run_group_broadcast,
}


def scenario_program(name: str):
    """The program image a scenario loads, for ahead-of-run compilation
    (``python -m repro compile <scenario>``): the same behaviours the
    scenario's runtime would compile at load time, without booting a
    partition."""
    from repro.runtime.program import HalProgram

    if name == "fibonacci_loadbalance":
        from repro.apps.fibonacci import fib_program
        return fib_program()
    classes = {
        "ping_pong": [PingPonger, Referee],
        "migration_tour": [Wanderer],
        "group_broadcast": [GroupCell],
    }.get(name)
    if classes is None:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        )
    program = HalProgram(name)
    for cls in classes:
        program.behavior(cls)
    return program


def run_scenario(
    name: str,
    *,
    num_nodes: Optional[int] = None,
    n: Optional[int] = None,
    trace: bool = True,
    seed: int = 1995,
    faults=None,
    backend: str = "sim",
    mp: Optional[MpParams] = None,
    net: Optional[NetParams] = None,
    tracing: Optional[TracingParams] = None,
) -> ScenarioResult:
    """Run a registered scenario by name; None keeps its defaults."""
    try:
        fn = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    kwargs: Dict[str, object] = {
        "trace": trace, "seed": seed, "faults": faults, "backend": backend,
        "mp": mp, "net": net, "tracing": tracing,
    }
    if num_nodes is not None:
        kwargs["num_nodes"] = num_nodes
    if n is not None:
        kwargs["n"] = n
    return fn(**kwargs)
