"""Adaptive quadrature: a dynamic, irregular workload (§1).

The paper argues that location transparency, dynamic placement and
migration are "essential for scalable execution of dynamic, irregular
applications" — workloads whose shape is unknown until runtime.
Adaptive quadrature is the canonical example: the integration interval
is subdivided recursively wherever the integrand is badly behaved, so
the work tree is deeply unbalanced in ways no static placement can
anticipate.

The integrand family used here has a tunable "spike": most of the
interval converges immediately while a narrow region recurses deeply.
With static placement the nodes owning the spike become the critical
path; receiver-initiated stealing flattens it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.config import LoadBalanceParams, RuntimeConfig
from repro.hal.dsl import HalProgram
from repro.runtime.system import HalRuntime

#: Simulated cost of one integrand evaluation (us) — a handful of
#: transcendental operations on a 33 MHz SPARC.
EVAL_US = 4.0
#: Fixed per-task bookkeeping (us).
TASK_US = 2.0


def spiky(x: float, *, center: float = 0.37, width: float = 1e-3) -> float:
    """A smooth function with one violent spike: cheap almost
    everywhere, arbitrarily deep recursion near ``center``."""
    return math.sin(3.0 * x) + width / ((x - center) ** 2 + width ** 2)


def spiky_integral(a: float, b: float, *, center: float = 0.37,
                   width: float = 1e-3) -> float:
    """Closed form of :func:`spiky` for verification."""
    trig = (math.cos(3.0 * a) - math.cos(3.0 * b)) / 3.0
    atan = math.atan((b - center) / width) - math.atan((a - center) / width)
    return trig + atan


def _simpson(f: Callable[[float], float], a: float, b: float) -> float:
    return (b - a) / 6.0 * (f(a) + 4.0 * f((a + b) / 2.0) + f(b))


def quad_task(ctx, a: float, b: float, tol: float, target, depth: int) -> None:
    """One interval of the adaptive scheme (compiled CPS form).

    Compares one Simpson estimate against two half-interval estimates;
    on disagreement the halves become two stealable subtasks joined by
    a fresh continuation.
    """
    ctx.charge(TASK_US + 5 * EVAL_US)
    m = (a + b) / 2.0
    whole = _simpson(spiky, a, b)
    left = _simpson(spiky, a, m)
    right = _simpson(spiky, m, b)
    if abs(left + right - whole) < 15.0 * tol or depth >= 40:
        ctx.reply_to(target, left + right + (left + right - whole) / 15.0)
        return
    t1, t2 = ctx.make_join(
        2, lambda vals: ctx.reply_to(target, vals[0] + vals[1])
    )
    ctx.spawn_task("quad", a, m, tol / 2.0, t1, depth + 1)
    ctx.spawn_task("quad", m, b, tol / 2.0, t2, depth + 1)


def quadrature_program() -> HalProgram:
    program = HalProgram("quadrature")
    program.tasks["quad"] = quad_task
    return program


@dataclass
class QuadResult:
    value: float
    expected: float
    elapsed_us: float
    tasks: int
    steals: int

    @property
    def error(self) -> float:
        return abs(self.value - self.expected)


def run_quadrature(
    num_nodes: int,
    *,
    a: float = 0.0,
    b: float = 1.0,
    tol: float = 1e-7,
    load_balance: bool = True,
    seed: int = 1995,
    initial_splits: Optional[int] = None,
    config: Optional[RuntimeConfig] = None,
) -> QuadResult:
    """Integrate the spiky function over [a, b] on ``num_nodes``.

    The interval is statically pre-split into ``initial_splits`` even
    chunks scattered round-robin (the best a static placement can do);
    the adaptive recursion below each chunk stays local unless stolen.
    """
    cfg = config or RuntimeConfig(
        num_nodes=num_nodes,
        seed=seed,
        load_balance=LoadBalanceParams(enabled=load_balance),
    )
    rt = HalRuntime(cfg)
    rt.load(quadrature_program())
    splits = initial_splits if initial_splits is not None else max(num_nodes, 4)

    total = [0.0]
    remaining = [splits]
    target_boxes = []
    for i in range(splits):
        target, box = rt.make_collector(from_node=0)
        target_boxes.append(box)
        lo = a + (b - a) * i / splits
        hi = a + (b - a) * (i + 1) / splits
        rt.spawn_task("quad", lo, hi, tol / splits, target, 0,
                      at=i % num_nodes)
    start = rt.now
    rt.run()
    elapsed = rt.now - start
    if not all(box for box in target_boxes):
        raise RuntimeError("quadrature did not complete")
    value = sum(box[0] for box in target_boxes)
    return QuadResult(
        value=value,
        expected=spiky_integral(a, b),
        elapsed_us=elapsed,
        tasks=rt.stats.counter("exec.tasks"),
        steals=rt.stats.counter("steal.received"),
    )
