"""Systolic (Cannon) dense matrix multiplication (§7.3, Table 5).

"The systolic matrix multiplication algorithm involves first skewing
the blocks within a square processor grid, and then, cyclicly shifting
the blocks at each step.  No global synchronization is used in the
implementation.  Instead, per actor basis local synchronization is
used to enforce the necessary synchronization."

One :class:`BlockActor` per grid cell (a group of P members, one per
node).  The skew and every shift are real messages carrying NumPy
blocks (bulk transfers through the three-phase protocol); a block that
arrives for a *future* step parks in the pending queue via a disabling
condition — the paper's local synchronization constraints doing the
pipelining.  The result is verified against ``A @ B``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import RuntimeConfig
from repro.hal.dsl import HalProgram, behavior, disable_when, method
from repro.runtime.system import HalRuntime


def block_of(n: int, q: int, seed: int, which: str, r: int, c: int) -> np.ndarray:
    """Deterministic content of block (r, c) of matrix ``which``.

    Blocks are generated independently so each actor materialises only
    its own block; the verifier assembles the same blocks globally.
    """
    b = n // q
    rng = np.random.default_rng(
        (seed * 1_000_003 + (0 if which == "A" else 500_000) + r * q + c) & 0x7FFFFFFF
    )
    return rng.standard_normal((b, b))


def assemble(n: int, q: int, seed: int, which: str) -> np.ndarray:
    out = np.zeros((n, n))
    b = n // q
    for r in range(q):
        for c in range(q):
            out[r * b:(r + 1) * b, c * b:(c + 1) * b] = block_of(n, q, seed, which, r, c)
    return out


@behavior
class BlockActor:
    """Grid cell (r, c) of the Cannon algorithm."""

    def __init__(self, n, q, seed, index, size):
        self.n = n
        self.q = q
        self.seed = seed
        self.r, self.c = divmod(index, q)
        b = n // q
        self.C = np.zeros((b, b))
        self.step = 0
        self.a = None
        self.b = None
        self.coordinator = None

    # ------------------------------------------------------------------
    def _member(self, group, r, c):
        return group.member((r % self.q) * self.q + (c % self.q))

    @method
    def start(self, ctx, coordinator):
        """Generate local blocks and perform the initial skew: A(r,c)
        moves left by r, B(r,c) moves up by c."""
        self.coordinator = coordinator
        group = ctx.actor.group
        r, c, q = self.r, self.c, self.q
        a0 = block_of(self.n, q, self.seed, "A", r, c)
        b0 = block_of(self.n, q, self.seed, "B", r, c)
        ctx.charge(5.0)  # block generation bookkeeping
        ctx.send(self._member(group, r, c - r), "recv_a", 0, a0)
        ctx.send(self._member(group, r - c, c), "recv_b", 0, b0)

    # A block for a future step waits in the pending queue until this
    # actor's local step catches up — local synchronization only.
    @method
    @disable_when(lambda self, msg: msg.args[0] > self.step)
    def recv_a(self, ctx, step, block):
        assert step == self.step, (step, self.step)
        self.a = block
        self._try_step(ctx)

    @method
    @disable_when(lambda self, msg: msg.args[0] > self.step)
    def recv_b(self, ctx, step, block):
        assert step == self.step, (step, self.step)
        self.b = block
        self._try_step(ctx)

    def _try_step(self, ctx):
        if self.a is None or self.b is None:
            return
        b = self.n // self.q
        self.C += self.a @ self.b
        ctx.flops(2 * b * b * b)
        group = ctx.actor.group
        nxt = self.step + 1
        if nxt < self.q:
            # Cyclic shift: A left, B up.
            ctx.send(self._member(group, self.r, self.c - 1), "recv_a", nxt, self.a)
            ctx.send(self._member(group, self.r - 1, self.c), "recv_b", nxt, self.b)
        else:
            ctx.send(self.coordinator, "block_done", self.r * self.q + self.c)
        self.a = None
        self.b = None
        self.step = nxt


@behavior
class GridCoordinator:
    """Counts finished cells; replies to the driver when all are done."""

    def __init__(self, cells):
        self.cells = cells
        self.done = 0
        self.client = None

    @method
    def run(self, ctx, ignored):
        self.client = ctx.msg.reply_to
        self._maybe_finish(ctx)

    @method
    def block_done(self, ctx, index):
        self.done += 1
        self._maybe_finish(ctx)

    def _maybe_finish(self, ctx):
        if self.done == self.cells and self.client is not None:
            ctx.kernel.reply_router.send_reply(self.client, self.done)
            self.client = None


def systolic_program() -> HalProgram:
    program = HalProgram("systolic")
    program.behavior(BlockActor)
    program.behavior(GridCoordinator)
    return program


@dataclass
class SystolicResult:
    n: int
    num_nodes: int
    elapsed_us: float
    mflops: float
    C: np.ndarray

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_us / 1e6


def run_systolic(
    n: int,
    num_nodes: int,
    *,
    seed: int = 11,
    config: Optional[RuntimeConfig] = None,
    verify: bool = True,
) -> SystolicResult:
    """Multiply two n x n matrices on a √P x √P grid (Table 5 cell)."""
    q = int(math.isqrt(num_nodes))
    if q * q != num_nodes:
        raise ValueError(f"systolic grid needs a square node count, got {num_nodes}")
    if n % q != 0:
        raise ValueError(f"matrix size {n} not divisible by grid side {q}")
    cfg = config or RuntimeConfig(num_nodes=num_nodes, seed=seed)
    rt = HalRuntime(cfg)
    rt.load(systolic_program())

    group = rt.grpnew(BlockActor, num_nodes, n, q, seed, placement="cyclic")
    coord = rt.spawn(GridCoordinator, num_nodes, at=0)
    rt.run()
    start = rt.now
    rt.broadcast(group, "start", coord)
    done = rt.call(coord, "run", 0)
    assert done == num_nodes
    rt.run()
    elapsed = rt.now - start

    b = n // q
    C = np.zeros((n, n))
    for idx in range(num_nodes):
        r, c = divmod(idx, q)
        C[r * b:(r + 1) * b, c * b:(c + 1) * b] = rt.state_of(group.member(idx)).C
    if verify:
        expect = assemble(n, q, seed, "A") @ assemble(n, q, seed, "B")
        err = np.max(np.abs(C - expect))
        if err > 1e-8 * n:
            raise AssertionError(f"systolic result off by {err}")
    mflops = 2.0 * n ** 3 / elapsed if elapsed > 0 else 0.0
    return SystolicResult(n=n, num_nodes=num_nodes, elapsed_us=elapsed,
                          mflops=mflops, C=C)
