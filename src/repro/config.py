"""Configuration objects shared by the simulator and the runtime.

The defaults describe a CM-5-like partition: 33 MHz SPARC processing
elements connected by a fat-tree, driven through a CMAM-style
active-message layer.  All times are **simulated microseconds**.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Literal, Optional


@dataclass(frozen=True)
class NetworkParams:
    """Interconnect cost model (CM-5 data network via CMAM).

    The base numbers are calibrated so that the runtime-primitive
    micro-benchmarks land on the paper's published values (remote
    creation issue 5.83 us vs. actual 20.83 us; locality check under
    1 us); see ``repro.runtime.costmodel`` for the calibration table.
    """

    #: Fall-through wire latency for a single-hop message (us).
    base_latency_us: float = 3.0
    #: Additional latency per fat-tree hop (us).
    per_hop_us: float = 0.5
    #: Sender-side NIC injection cost per byte (us/byte).
    inject_us_per_byte: float = 0.025
    #: Receiver-side NIC drain cost per byte (us/byte).
    drain_us_per_byte: float = 0.025
    #: Bytes the receiving NIC can buffer before back-pressure sets in.
    rx_buffer_bytes: int = 16 * 1024
    #: Penalty factor applied to bytes that overflow the receive buffer.
    #: Models the packet back-up / retry traffic the paper's minimal
    #: flow control is designed to avoid.
    backup_penalty_us_per_byte: float = 0.25
    #: Size in bytes of a minimal active-message packet (header included).
    packet_bytes: int = 20

    @classmethod
    def cm5(cls) -> "NetworkParams":
        """The default: CM-5 data network through CMAM."""
        return cls()

    @classmethod
    def now_atm(cls) -> "NetworkParams":
        """A mid-90s network of workstations over ATM (the platform
        the paper's conclusions point at): an order of magnitude more
        wire latency and roughly 15 MB/s per link, but the same
        runtime on top.  Calibrated from the Active Messages over ATM
        measurements the paper cites [34]."""
        return cls(
            base_latency_us=26.0,
            per_hop_us=4.0,
            inject_us_per_byte=0.065,
            drain_us_per_byte=0.065,
            rx_buffer_bytes=64 * 1024,
            backup_penalty_us_per_byte=0.4,
            packet_bytes=48,
        )


@dataclass(frozen=True)
class SchedulerParams:
    """Intra-node scheduling knobs exposed to the HAL compiler."""

    #: Maximum depth of compiler-controlled stack-based inline
    #: invocations before falling back to the buffered generic send.
    max_inline_depth: int = 32
    #: Enable static dispatch with locality check (compiler interface).
    static_dispatch: bool = True
    #: Enable collective scheduling of broadcast messages.
    collective_broadcast: bool = True
    #: Stack-based (LIFO, newest-first) scheduling of ready items —
    #: the paper's compiler-controlled stack-based scheduling.  Work
    #: expands depth-first, keeping queues small and leaving the
    #: biggest-grain subtrees at the old end where thieves steal.
    #: False selects plain FIFO (queue-based) scheduling, the regime
    #: the ABCL/onAP1000 comparison row in Table 3 represents.
    stack_scheduling: bool = True


@dataclass(frozen=True)
class LoadBalanceParams:
    """Receiver-initiated random-polling work stealing (Kumar et al.)."""

    enabled: bool = False
    #: Idle time before an idle node polls a random peer (us).
    poll_interval_us: float = 50.0
    #: A node grants a steal only if it has more ready items than this.
    surplus_threshold: int = 1
    #: Maximum number of items handed over per successful poll.
    max_grant: int = 1
    #: Steal from the head of the ready queue.  Task expansion is
    #: breadth-first (the dispatcher is FIFO), so the head holds the
    #: oldest — i.e. shallowest, biggest-grain — stealable subtree.
    steal_from_tail: bool = False


@dataclass(frozen=True)
class MpParams:
    """Wire-path knobs for the process-per-node (mp) backend.

    Outbound packets are coalesced per destination into binary frames
    (see :mod:`repro.platform.wireformat`): a destination's batch is
    flushed when it reaches ``batch_bytes`` or ``batch_max_msgs``, and
    unconditionally at the end of every worker wakeup (so a message
    never waits on an idle node for company).  ``transport`` selects
    the interconnect: ``"pipe"`` is a full mesh of multiprocessing
    duplex pipes carrying whole frames; ``"socket"`` is a full mesh of
    UNIX-domain stream socketpairs driven with raw scatter writes and
    bulk reads — one ``recv`` can pull in many frames, so the syscall
    count per message drops further on chatty workloads; ``"shm"``
    skips the kernel entirely — per-directed-edge single-producer/
    single-consumer ring buffers in one ``multiprocessing.shared_memory``
    arena (:mod:`repro.platform.shmring`), ``ring_bytes`` of data ring
    per edge, with spin-then-``Condition`` blocking on empty/full.
    """

    #: Interconnect between worker processes.
    transport: Literal["pipe", "socket", "shm"] = "pipe"
    #: Flush a destination's batch at this many buffered frame bytes.
    batch_bytes: int = 32 * 1024
    #: ... or at this many buffered messages, whichever comes first.
    batch_max_msgs: int = 128
    #: Data capacity of each shm ring (``transport="shm"`` only).
    #: Frames larger than this still cross — in chunks — but a ring
    #: comfortably above ``batch_bytes`` keeps writers out of the
    #: backpressure path.  Tiny values are legal (tests use them to
    #: force wraparound and full-ring behaviour).
    ring_bytes: int = 256 * 1024

    def __post_init__(self) -> None:
        if self.transport not in ("pipe", "socket", "shm"):
            raise ValueError(
                f"unknown mp transport {self.transport!r}; "
                "expected 'pipe', 'socket' or 'shm'"
            )
        if self.batch_bytes < 1:
            raise ValueError("batch_bytes must be >= 1")
        if self.batch_max_msgs < 1:
            raise ValueError("batch_max_msgs must be >= 1")
        if self.ring_bytes < 1:
            raise ValueError("ring_bytes must be >= 1")


@dataclass(frozen=True)
class NetParams:
    """Socket-mesh knobs for the asyncio network backend.

    Each node is a process reachable over a real socket: ``"tcp"``
    listens on ``(host, port_base + node_id)`` per node (``port_base
    = 0`` lets the OS pick an ephemeral port for each listener — the
    right default for tests, where fixed ports collide), ``"unix"``
    uses per-node UNIX-domain socket paths under a private temp
    directory (single-host only, no port management).  Workers
    bootstrap into a full mesh through the driver: every worker
    reports its bound address, the driver broadcasts the address map,
    and each worker dials its lower-numbered peers (redialling for up
    to ``connect_timeout_s`` while listeners come up).  Frames on the
    wire are the same :mod:`repro.platform.wireformat` batches the mp
    backend ships; the reliable-AM sublayer is always attached on
    this backend, so drops/delays/reordering are repaired end-to-end
    rather than assumed away.
    """

    #: Socket family: real TCP or single-host UNIX-domain sockets.
    transport: Literal["tcp", "unix"] = "tcp"
    #: Interface/host the per-node listeners bind ("tcp" only).
    host: str = "127.0.0.1"
    #: First listener port; node *i* binds ``port_base + i``.  0 means
    #: ephemeral — every node binds port 0 and the driver distributes
    #: the actual addresses.
    port_base: int = 0
    #: How long a worker keeps redialling a peer during mesh bring-up
    #: before giving up (seconds, wall clock).
    connect_timeout_s: float = 15.0

    def __post_init__(self) -> None:
        if self.transport not in ("tcp", "unix"):
            raise ValueError(
                f"unknown net transport {self.transport!r}; "
                "expected 'tcp' or 'unix'"
            )
        if not (0 <= self.port_base <= 65535):
            raise ValueError("port_base must be within [0, 65535]")
        if self.port_base and self.port_base + 256 > 65536:
            raise ValueError("port_base too high for a node range")
        if self.connect_timeout_s <= 0:
            raise ValueError("connect_timeout_s must be positive")


@dataclass(frozen=True)
class TracingParams:
    """Always-on causal tracing knobs (see :mod:`repro.tracing`).

    Span recording is cheap enough to leave enabled: spans land in a
    pre-allocated ring buffer and whole traces are *head-sampled* — a
    keep-or-elide decision drawn once per root message journey from a
    dedicated seeded RNG stream and carried in the trace ID's low bit,
    so downstream hops pay one bit test.  Error/retransmit paths are
    recorded regardless of the draw, and ``StatsRegistry`` histograms
    stay exact and unsampled at any rate.
    """

    #: Fraction of root traces whose spans are recorded.  1.0 records
    #: everything (the default — what white-box tests rely on); 0.0
    #: records only forced error-path spans.
    sample_rate: float = 1.0
    #: Ring-buffer slots; when full the oldest spans are overwritten
    #: (and counted), never the newest.
    span_capacity: int = 65_536

    def __post_init__(self) -> None:
        if not (0.0 <= self.sample_rate <= 1.0):
            raise ValueError("sample_rate must be within [0, 1]")
        if self.span_capacity < 1:
            raise ValueError("span_capacity must be >= 1")


@dataclass(frozen=True)
class ReliabilityParams:
    """Reliable-delivery sublayer (acks + timeout/retry + dedupe).

    The CM-5's CMAM layer delivered every packet exactly once, so the
    paper's protocols assume a reliable substrate.  When fault
    injection withdraws that guarantee (:mod:`repro.sim.faults`) this
    sublayer restores it end-to-end: every AM carries a sequence
    number, the receiver acks it and absorbs duplicates keyed by
    ``(sender, seq)``, and the sender retransmits on timeout with
    exponential backoff.  A second layer of protocol-level watchdogs
    (FIR reissue, migration-handshake resend, alias-promotion retry)
    guards the multi-message exchanges whose *replies* can be lost.

    ``enabled=None`` (the default) means *automatic*: the sublayer is
    attached exactly when a fault plan is installed, so the fault-free
    fast path pays only one cached ``is None`` test per send.
    """

    #: None = attach iff faults are injected; True/False force it.
    enabled: Optional[bool] = None
    #: Time to wait for an ack before the first retransmit (us).
    ack_timeout_us: float = 600.0
    #: Multiplier applied to the timeout after each retransmit.
    backoff_factor: float = 2.0
    #: Ceiling on the per-attempt timeout (us).
    max_backoff_us: float = 20_000.0
    #: Retransmits before the sender gives up with ReliabilityError.
    max_retries: int = 18
    #: Protocol watchdogs: how long a FIR may sit unanswered before it
    #: is reissued (us), and the analogous migration-handshake and
    #: alias-promotion timeouts.  These run above the ack layer and
    #: also back off exponentially.
    fir_timeout_us: float = 3_000.0
    handshake_timeout_us: float = 3_000.0
    promotion_timeout_us: float = 4_000.0
    #: Retry cap shared by the protocol watchdogs.
    watchdog_max_retries: int = 12

    def __post_init__(self) -> None:
        if self.ack_timeout_us <= 0:
            raise ValueError("ack_timeout_us must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_retries < 0 or self.watchdog_max_retries < 0:
            raise ValueError("retry caps must be >= 0")


@dataclass(frozen=True)
class RuntimeConfig:
    """Top-level configuration for a HAL runtime instance."""

    #: Number of processing elements in the partition.
    num_nodes: int = 8
    #: Execution backend: ``sim`` is the deterministic discrete-event
    #: simulator (fault injection, timing tables); ``threaded`` runs
    #: each node on an OS thread in real time (convergence semantics,
    #: no determinism); ``mp`` runs each node in its own OS process
    #: (pickled wire packets, token-ring quiescence, no GIL sharing);
    #: ``asyncio`` runs each node in its own process behind a real
    #: TCP/UNIX socket mesh with the reliable-AM sublayer always on
    #: (cluster semantics: loss is repaired, not assumed away).
    #: See :mod:`repro.platform`.
    backend: Literal["sim", "threaded", "mp", "asyncio"] = "sim"
    #: Interconnect topology: CM-5 fat-tree or binary hypercube.
    topology: Literal["fattree", "hypercube"] = "fattree"
    #: Seed for all deterministic random substreams.
    seed: int = 1995
    #: Use aliases to hide remote-creation latency (paper Section 5).
    alias_creation: bool = True
    #: Cache remote locality-descriptor addresses (paper Section 4.1).
    descriptor_caching: bool = True
    #: Minimal flow control for bulk transfers (paper Section 6.5).
    flow_control: bool = True
    #: Bulk-transfer threshold in bytes: payloads at or above this size
    #: use the three-phase CMAM protocol.
    bulk_threshold_bytes: int = 256

    network: NetworkParams = field(default_factory=NetworkParams)
    scheduler: SchedulerParams = field(default_factory=SchedulerParams)
    load_balance: LoadBalanceParams = field(default_factory=LoadBalanceParams)
    reliability: ReliabilityParams = field(default_factory=ReliabilityParams)
    #: Wire-path knobs for the mp backend (ignored elsewhere).
    mp: MpParams = field(default_factory=MpParams)
    #: Socket-mesh knobs for the asyncio backend (ignored elsewhere).
    net: NetParams = field(default_factory=NetParams)
    #: Span-recording knobs (head sampling + ring capacity); only
    #: consulted when the machine is built with ``trace=True``.
    tracing: TracingParams = field(default_factory=TracingParams)

    #: Abort the simulation after this many events (safety valve).
    max_events: int = 200_000_000

    def with_(self, **changes) -> "RuntimeConfig":
        """Return a copy of the config with ``changes`` applied."""
        return replace(self, **changes)

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.backend not in ("sim", "threaded", "mp", "asyncio"):
            raise ValueError(
                f"unknown backend {self.backend!r}; expected 'sim', "
                "'threaded', 'mp' or 'asyncio'"
            )
        if self.bulk_threshold_bytes < 1:
            raise ValueError("bulk_threshold_bytes must be >= 1")
