"""Mail addresses, aliases and locality descriptors (§4.1, §5).

A mail address is a pair of real addresses ``(birthplace, address)``
where *address* is the memory address of a **locality descriptor** on
the birthplace node.  Aliases share the structure but their
``birthplace`` is the node that *issued* the creation request, with the
actual creation node encoded alongside.  Group-member addresses
(``grpnew``) are a third flavour whose home node is computed from the
group's deterministic placement.

A locality descriptor records the actor's current locality:

- **local**: a direct reference to the actor;
- **remote**: the best-guess remote node, plus (once cached) the
  memory address of the actor's descriptor on that node so the
  receiving node can skip its own name-table hash;
- **in transit / resolving**: messages are deferred while a migration
  or FIR chase is outstanding.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Any, List, Optional, TYPE_CHECKING

from repro.errors import NameServiceError

if TYPE_CHECKING:  # pragma: no cover
    from repro.actors.actor import Actor
    from repro.actors.message import ActorMessage


class AddrKind(IntEnum):
    """Flavours of mail address."""

    ORDINARY = 0  #: created locally; birthplace knows it from birth
    ALIAS = 1     #: issued for a remote creation; actual node encoded
    GROUP = 2     #: grpnew member; home computed from placement


class MailAddress:
    """A location-transparent actor name.  Hashable; used as the name
    table key on every node.

    Immutable, with the hash precomputed at construction: the sender's
    per-send ``NameTable.get`` is a hot-path dict probe, and a frozen
    dataclass would rebuild and rehash the field tuple on every lookup.
    Field meaning:

    - ``kind`` — address flavour (:class:`AddrKind`);
    - ``node`` — ORDINARY: birthplace node.  ALIAS: issuing node.
      GROUP: group-creator node;
    - ``addr`` — ORDINARY/ALIAS: descriptor address on ``node``.
      GROUP: group sequence number on the creator node;
    - ``aux`` — ALIAS: encoded actual creation node.  GROUP: member
      index;
    - ``home`` — GROUP only: the member's placement-computed home node.
    """

    __slots__ = ("kind", "node", "addr", "aux", "home", "_hash")

    #: Marshalled size: kind + two real addresses + aux words.
    WIRE_BYTES = 16

    def __init__(
        self,
        kind: AddrKind,
        node: int,
        addr: int,
        aux: int = -1,
        home: int = -1,
    ) -> None:
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "node", node)
        object.__setattr__(self, "addr", addr)
        object.__setattr__(self, "aux", aux)
        object.__setattr__(self, "home", home)
        object.__setattr__(self, "_hash", hash((kind, node, addr, aux, home)))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"MailAddress is immutable; cannot set {name!r}")

    def __reduce__(self):
        # Default slot-state unpickling would go through the raising
        # ``__setattr__`` above; reconstruct through the constructor
        # instead so addresses survive a trip over a process boundary
        # (the mp backend pickles every wire packet).
        return (MailAddress, (self.kind, self.node, self.addr, self.aux, self.home))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: Any) -> bool:
        if other is self:
            return True
        if not isinstance(other, MailAddress):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.kind == other.kind
            and self.node == other.node
            and self.addr == other.addr
            and self.aux == other.aux
            and self.home == other.home
        )

    def home_node(self) -> int:
        """First-guess node encoded in the address itself: where the
        actor was actually created (§4.1, §5)."""
        if self.kind is AddrKind.ORDINARY:
            return self.node
        if self.kind is AddrKind.ALIAS:
            return self.aux
        return self.home

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind is AddrKind.ORDINARY:
            return f"@{self.node}:{self.addr}"
        if self.kind is AddrKind.ALIAS:
            return f"@alias{self.node}:{self.addr}->n{self.aux}"
        return f"@grp{self.node}:{self.addr}[{self.aux}]->n{self.home}"


@dataclass(frozen=True)
class ActorRef:
    """User-facing handle on an actor: just its mail address.

    Refs are first-class values — they may be stored in actor state and
    communicated in messages, giving the dynamic communication topology
    of the Actor model (§2.1).
    """

    address: MailAddress

    WIRE_BYTES = MailAddress.WIRE_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ActorRef({self.address!r})"


class DescState(IntEnum):
    """Lifecycle of a locality descriptor."""

    LOCAL = 0       #: the actor lives on this node
    REMOTE = 1      #: best-guess remote location (possibly stale)
    RESOLVING = 2   #: FIR outstanding; messages deferred
    IN_TRANSIT = 3  #: we initiated a migration; awaiting the ack
    AWAITING_CREATION = 4  #: message raced ahead of the creation request


class LocalityDescriptor:
    """Per-node record of an actor's (believed) locality."""

    __slots__ = (
        "addr",
        "key",
        "state",
        "actor",
        "remote_node",
        "remote_addr",
        "deferred",
        "waiting_firs",
        "fir_retries",
        "retry_attempts",
        "retry_timer",
    )

    def __init__(self, addr: int, key: Optional[MailAddress]) -> None:
        #: This descriptor's "memory address" on its node.
        self.addr = addr
        #: The mail address this descriptor describes (None until bound).
        self.key = key
        self.state = DescState.REMOTE
        self.actor: Optional["Actor"] = None
        #: Best guess of the hosting node (meaningful unless LOCAL).
        self.remote_node: int = -1
        #: Cached descriptor address on ``remote_node`` (or -1).
        self.remote_addr: int = -1
        #: Messages parked while RESOLVING / IN_TRANSIT / AWAITING_CREATION.
        self.deferred: List["ActorMessage"] = []
        #: FIR chains parked here while the actor is in transit from us.
        #: Parked FIR chases awaiting resolution, as
        #: ``(chain, trace_ctx)`` pairs (trace_ctx is None when
        #: untraced); see MigrationService._answer_waiting_firs.
        self.waiting_firs: List[tuple] = []
        self.fir_retries: int = 0
        #: Watchdog bookkeeping under fault injection: retries issued
        #: so far and the pending (cancellable) timer event, if any.
        #: Cleared whenever the descriptor reaches a resolved state.
        self.retry_attempts: int = 0
        self.retry_timer: Optional[Any] = None

    # ------------------------------------------------------------------
    def clear_retry(self) -> None:
        """Cancel any pending protocol watchdog; the descriptor reached
        a resolved state and the exchange it guarded completed."""
        timer = self.retry_timer
        if timer is not None:
            self.retry_timer = None
            timer.cancel()
        self.retry_attempts = 0

    def set_local(self, actor: "Actor") -> None:
        self.state = DescState.LOCAL
        self.actor = actor
        self.remote_node = -1
        self.remote_addr = -1
        if self.retry_timer is not None:
            self.clear_retry()

    def set_remote(self, node: int, addr: int = -1) -> None:
        if node < 0:
            raise NameServiceError("remote node must be non-negative")
        self.state = DescState.REMOTE
        self.actor = None
        self.remote_node = node
        self.remote_addr = addr
        if self.retry_timer is not None:
            self.clear_retry()

    def begin_transit(self, dest: int) -> None:
        self.state = DescState.IN_TRANSIT
        self.actor = None
        self.remote_node = dest
        self.remote_addr = -1

    def begin_resolving(self) -> None:
        self.state = DescState.RESOLVING

    @property
    def is_local(self) -> bool:
        return self.state is DescState.LOCAL

    @property
    def has_cached_addr(self) -> bool:
        return self.remote_addr >= 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        loc = (
            "local" if self.is_local
            else f"{self.state.name.lower()}->n{self.remote_node}"
            + (f":{self.remote_addr}" if self.has_cached_addr else "")
        )
        return f"Desc({self.addr}, {self.key!r}, {loc})"
