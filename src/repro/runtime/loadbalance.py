"""Dynamic load balancing: receiver-initiated random polling (§7.2).

An idle node polls a randomly chosen peer; a peer with surplus ready
work hands over a stealable item — lightweight tasks travel directly,
actors are *migrated*, exercising exactly the location-transparency
machinery the paper builds (stale caches on third-party nodes are then
repaired by the FIR protocol).

Polling stops when the whole machine is quiescent (no in-flight
messages and every dispatcher empty), so simulations terminate.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.actors.actor import Actor
from repro.runtime.dispatcher import Task
from repro.tracectx import TraceCtx

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.kernel import Kernel


class LoadBalancer:
    """Receiver-initiated random-polling work stealing for one kernel."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.params = kernel.config.load_balance
        self.rng = kernel.runtime.machine.rng.node_stream("steal", kernel.node_id)
        self._spans = kernel.spans
        self._spans_on = bool(kernel.spans.enabled)
        self._poll_pending = False
        if self.params.enabled and kernel.runtime.num_nodes > 1:
            kernel.dispatcher.idle_callbacks.append(self.on_idle)

    # ------------------------------------------------------------------
    # thief side
    # ------------------------------------------------------------------
    def on_idle(self) -> None:
        """Dispatcher drained: start (or continue) polling."""
        self._schedule_poll()

    def kick(self) -> None:
        """Arm polling if this node is idle.  Called by the runtime
        whenever external work is injected — a node that never received
        any work has no dispatcher activity to trigger ``on_idle``."""
        if (
            self.params.enabled
            and self.kernel.runtime.num_nodes > 1
            and not self.kernel.dispatcher.queue_length
        ):
            self._schedule_poll()

    def _schedule_poll(self) -> None:
        if self._poll_pending:
            return
        self._poll_pending = True
        k = self.kernel
        k.node.execute(
            k.node.time() + self.params.poll_interval_us,
            self._poll,
            label="steal.poll",
        )

    def _poll(self) -> None:
        self._poll_pending = False
        k = self.kernel
        if k.dispatcher.queue_length:
            return  # got work in the meantime; idle callback will re-arm
        if k.runtime.quiescent():
            return  # program finished: stop generating events
        victim = self._pick_victim()
        if victim is None:
            return
        k.stats.incr("steal.polls")
        # Two parallel books: ``steal.proto_*`` counts every steal-
        # protocol packet (req/grant/deny) symmetrically for the
        # conservation audit; ``steal.chatter_*`` counts only the
        # workless req/deny probes, which the backends exclude from
        # quiescence accounting — otherwise two idle nodes could keep
        # each other "non-quiescent" forever.  Grants carry real work
        # and must stay visible to net_idle, so they are protocol
        # traffic but never chatter.
        k.stats.incr("steal.proto_sent")
        k.stats.incr("steal.chatter_sent")
        k.endpoint.send(victim, "steal_req", ())

    def _pick_victim(self) -> Optional[int]:
        n = self.kernel.runtime.num_nodes
        if n <= 1:
            return None
        victim = self.rng.randrange(n - 1)
        if victim >= self.kernel.node_id:
            victim += 1
        return victim

    # ------------------------------------------------------------------
    # victim side
    # ------------------------------------------------------------------
    def on_steal_req(self, src: int) -> None:
        k = self.kernel
        k.stats.incr("steal.proto_recv")
        k.stats.incr("steal.chatter_recv")
        k.node.charge(k.costs.steal_check_us)
        granted = 0
        if k.dispatcher.surplus() > self.params.surplus_threshold:
            for _ in range(self.params.max_grant):
                item = k.dispatcher.steal_one(
                    from_tail=self.params.steal_from_tail
                )
                if item is None:
                    break
                k.node.charge(k.costs.steal_pack_us)
                if isinstance(item, Task):
                    # Stolen tasks carry their causal context so the
                    # thief's execution stays in the spawner's trace.
                    tctx = (
                        TraceCtx(item.trace_ctx[0], item.trace_ctx[1],
                                 k.node.now)
                        if self._spans_on and item.trace_ctx is not None
                        else None
                    )
                    # A grant is a steal-protocol packet too: count it
                    # sent here and received in on_steal_grant so the
                    # proto books balance.  (Actor grants travel as
                    # migrate_arrive and are audited by the migration
                    # protocol, not here.)
                    k.stats.incr("steal.proto_sent")
                    k.endpoint.send(src, "steal_grant",
                                    (item.fn_name, item.args),
                                    trace_ctx=tctx)
                elif isinstance(item, Actor):
                    # Steal by migration: the thief becomes the actor's
                    # new home; senders with stale caches will be
                    # repaired by FIR.
                    k.migration.start(item, src)
                else:  # pragma: no cover - steal_one filters for us
                    continue
                granted += 1
        if granted:
            k.stats.incr("steal.granted", granted)
        else:
            k.stats.incr("steal.denied")
            k.stats.incr("steal.proto_sent")
            k.stats.incr("steal.chatter_sent")
            k.endpoint.send(src, "steal_deny", ())

    # ------------------------------------------------------------------
    # thief side: responses
    # ------------------------------------------------------------------
    def on_steal_grant(self, src: int, fn_name: str, args: tuple,
                       trace_ctx: Optional[TraceCtx] = None) -> None:
        k = self.kernel
        k.stats.incr("steal.received")
        k.stats.incr("steal.proto_recv")
        task_ctx = None
        if trace_ctx is not None and self._spans_on:
            sid = self._spans.span(
                trace_ctx.trace_id, trace_ctx.parent_span,
                f"steal {fn_name}", "hop", k.node_id,
                trace_ctx.sent_at, k.node.now, src,
            )
            task_ctx = (trace_ctx.trace_id, sid)
        k.dispatcher.enqueue(Task(fn_name, args, task_ctx))

    def on_steal_deny(self, src: int) -> None:
        self.kernel.stats.incr("steal.proto_recv")
        self.kernel.stats.incr("steal.chatter_recv")
        if not self.kernel.dispatcher.queue_length:
            self._schedule_poll()
