"""The HAL runtime system (the paper's primary contribution).

One :class:`~repro.runtime.kernel.Kernel` runs per processing element;
a :class:`~repro.runtime.frontend.FrontEnd` plays the partition
manager.  :class:`HalRuntime` is the user-facing facade that boots the
whole stack on a simulated machine.
"""

from repro.runtime.costmodel import CostModel
from repro.runtime.names import ActorRef, AddrKind, LocalityDescriptor, MailAddress
from repro.runtime.system import HalRuntime

__all__ = [
    "HalRuntime",
    "CostModel",
    "ActorRef",
    "AddrKind",
    "MailAddress",
    "LocalityDescriptor",
]
