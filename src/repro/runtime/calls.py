"""Call/return communication support (§6.2).

The HAL compiler transforms a ``request`` send into an asynchronous
send and separates out its continuation through dependence analysis;
sends with no dependence among them share one continuation.  In this
reproduction the dependence analysis is realised by the generator
protocol (:mod:`repro.hal.dependence` analyses bodies statically; the
runtime slices them dynamically): a method written as a generator
yields one :class:`Request` — or a list of independent requests — and
is resumed with the reply value(s) once the join completes.

This module owns the :class:`Request` descriptor, the per-node
continuation table, and the generator driver.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.actors.continuations import JoinContinuation
from repro.actors.message import ActorMessage, ReplyTarget
from repro.errors import ContinuationError
from repro.runtime.names import ActorRef
from repro.tracectx import TraceCtx

if TYPE_CHECKING:  # pragma: no cover
    from repro.actors.actor import Actor
    from repro.runtime.kernel import Kernel


@dataclass(frozen=True)
class Request:
    """A pending call/return send, produced by ``ctx.request`` and
    consumed by ``yield``."""

    ref: ActorRef
    selector: str
    args: tuple


@dataclass(frozen=True)
class CreateRequest:
    """A split-phase remote creation (the pre-alias protocol): the node
    manager creates the actor and replies with its ordinary mail
    address.  Produced by ``ctx.request_create`` and ``yield``-ed like
    a :class:`Request`."""

    behavior_name: str
    args: tuple
    at: int


class ContinuationTable:
    """Node-local registry of outstanding join continuations."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._table: Dict[int, JoinContinuation] = {}
        self._ids = itertools.count(1)
        self.created = 0

    def new(
        self,
        nslots: int,
        function,
        creator: Optional["Actor"] = None,
        *,
        known: Optional[dict[int, Any]] = None,
        created_at: float = 0.0,
    ) -> JoinContinuation:
        cont = JoinContinuation(
            next(self._ids), nslots, function, creator,
            known=known, created_at=created_at,
        )
        self._table[cont.cont_id] = cont
        self.created += 1
        return cont

    def get(self, cont_id: int) -> JoinContinuation:
        try:
            return self._table[cont_id]
        except KeyError:
            raise ContinuationError(
                f"node {self.node_id}: unknown continuation {cont_id}"
            ) from None

    def discard(self, cont_id: int) -> None:
        self._table.pop(cont_id, None)

    @property
    def outstanding(self) -> int:
        return len(self._table)


def normalize_requests(yielded: Any) -> tuple[List[Request], bool]:
    """Turn a yielded value into a request list.

    Returns ``(requests, single)`` where ``single`` says whether the
    generator expects one bare value rather than a list.
    """
    if isinstance(yielded, (Request, CreateRequest)):
        return [yielded], True
    if isinstance(yielded, Sequence) and not isinstance(yielded, (str, bytes)):
        reqs = list(yielded)
        if not reqs or not all(isinstance(r, (Request, CreateRequest)) for r in reqs):
            raise ContinuationError(
                "a method may only yield ctx.request(...) values "
                f"(got {yielded!r})"
            )
        return reqs, False
    raise ContinuationError(
        f"a method may only yield requests, got {yielded!r}; "
        "use `result = yield ctx.request(ref, sel, args...)`"
    )


class GeneratorDriver:
    """Drives generator-form methods through their continuation chain."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self._spans = kernel.spans
        self._spans_on = bool(kernel.spans.enabled)

    # ------------------------------------------------------------------
    def start(self, actor: Optional["Actor"], msg: Optional[ActorMessage], gen) -> None:
        """Begin driving a freshly created generator."""
        self._advance(actor, msg, gen, first=True, value=None)

    def _advance(self, actor, msg, gen, *, first: bool, value: Any) -> None:
        kernel = self.kernel
        try:
            yielded = next(gen) if first else gen.send(value)
        except StopIteration as stop:
            result = stop.value
            if msg is not None and msg.reply_to is not None and result is not None:
                kernel.reply_router.send_reply(msg.reply_to, result)
            return
        reqs, single = normalize_requests(yielded)
        costs = kernel.costs
        kernel.node.charge(costs.continuation_alloc_us)
        kernel.stats.incr("calls.continuations")

        # The compiler's dispatch verdict for this method's request
        # sites: a lowered or generator method executing message
        # ``msg.selector`` had its sites planned under that method
        # name, so local receivers with a static/lookup plan take the
        # stack-based inline path instead of the generic buffered send.
        compiled = None
        if actor is not None and msg is not None:
            compiled = actor.behavior.compiled
        task_static = (
            actor is None
            and kernel.config.scheduler.static_dispatch
        )

        def resume(cont: JoinContinuation) -> None:
            values = cont.values()
            kernel.continuations.discard(cont.cont_id)
            self._advance(
                actor, msg, gen,
                first=False,
                value=values[0] if single else values,
            )

        cont = kernel.continuations.new(
            len(reqs), resume, creator=actor, created_at=kernel.node.now
        )
        # Issue the grouped sends; each reserves its slot in the shared
        # continuation (the paper's "sends with no dependence among
        # them are grouped together to share the same continuation").
        for slot, req in enumerate(reqs):
            target = ReplyTarget(kernel.node_id, cont.cont_id, slot)
            if isinstance(req, CreateRequest):
                if req.at == kernel.node_id:
                    kernel.creation.on_create_request(
                        kernel.node_id, req.behavior_name, req.args, target
                    )
                else:
                    tctx = None
                    if self._spans_on and kernel.trace_ctx is not None:
                        tid, parent = kernel.trace_ctx
                        sid = self._spans.span(
                            tid, parent, f"create {req.behavior_name}",
                            "create.issue", kernel.node_id,
                            kernel.node.now, None, req.at,
                        )
                        tctx = TraceCtx(tid, sid, kernel.node.now)
                    kernel.endpoint.send(
                        req.at, "create_request",
                        (req.behavior_name, req.args, target),
                        trace_ctx=tctx,
                    )
            else:
                if compiled is not None:
                    plan_kind = compiled.plan_for(msg.selector, req.selector)
                elif task_static:
                    # Task bodies are compiler output; their receiver
                    # types are known to the code generator.
                    plan_kind = "static"
                else:
                    plan_kind = "generic"
                kernel.delivery.send_message(
                    req.ref, req.selector, req.args,
                    reply_to=target, sender_actor=actor,
                    plan_kind=plan_kind,
                )


class ReplyRouter:
    """Routes reply values to their continuation slots (local or
    remote), implementing the runtime's special-cased reply messages."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self._spans = kernel.spans
        self._spans_on = bool(kernel.spans.enabled)

    def send_reply(self, target: ReplyTarget, value: Any,
                   trace_ctx: Optional[tuple] = None) -> None:
        kernel = self.kernel
        # Parent the reply to the execution we were called from (or an
        # explicit override, e.g. a node-manager serving a creation).
        parent = trace_ctx if trace_ctx is not None else kernel.trace_ctx
        wire_ctx = None
        if self._spans_on and parent is not None:
            tid, psid = parent
            sid = self._spans.span(
                tid, psid, f"reply slot{target.slot}", "reply.send",
                kernel.node_id, kernel.node.now, None, target.node,
            )
            wire_ctx = TraceCtx(tid, sid, kernel.node.now)
        if target.node == kernel.node_id:
            kernel.node.charge(kernel.costs.continuation_fill_us)
            self.fill(target.cont_id, target.slot, value, trace_ctx=wire_ctx)
            return
        kernel.stats.incr("calls.remote_replies")
        payload = (target.cont_id, target.slot, value)
        from repro.am.messages import message_nbytes
        nbytes = message_nbytes(payload, kernel.network_params.packet_bytes)
        if nbytes >= kernel.config.bulk_threshold_bytes:
            kernel.bulk.send_bulk(target.node, "reply", payload, nbytes,
                                  trace_ctx=wire_ctx)
        else:
            kernel.endpoint.send(target.node, "reply", payload, nbytes=nbytes,
                                 trace_ctx=wire_ctx)

    def fill(self, cont_id: int, slot: int, value: Any,
             trace_ctx: Optional[TraceCtx] = None) -> None:
        """Fill a slot of a local continuation; schedule the fire when
        the join completes."""
        kernel = self.kernel
        cont = kernel.continuations.get(cont_id)
        if trace_ctx is not None:
            # The continuation body traces under the (last) reply that
            # completed the join.
            cont.trace_ctx = (trace_ctx.trace_id, trace_ctx.parent_span)
        if cont.fill(slot, value):
            from repro.runtime.dispatcher import FireContinuation
            kernel.dispatcher.enqueue(FireContinuation(cont))

    # AM handler: 'reply'
    def on_reply(self, src: int, cont_id: int, slot: int, value: Any,
                 trace_ctx: Optional[TraceCtx] = None) -> None:
        kernel = self.kernel
        kernel.node.charge(kernel.costs.continuation_fill_us)
        if trace_ctx is not None and self._spans_on:
            sid = self._spans.span(
                trace_ctx.trace_id, trace_ctx.parent_span,
                f"reply deliver cont{cont_id}", "reply.deliver",
                kernel.node_id, trace_ctx.sent_at, kernel.node.now, src,
            )
            trace_ctx = TraceCtx(trace_ctx.trace_id, sid, kernel.node.now)
        self.fill(cont_id, slot, value, trace_ctx=trace_ctx)
