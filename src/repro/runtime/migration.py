"""Actor migration and the FIR location protocol (§4.3).

Migration keeps the name service deliberately inconsistent: location
information for remote actors is a best guess.  When a node manager is
asked to deliver a message for an actor that has migrated away, it
does **not** forward the message; it sends a small *forwarding
information request* (FIR) along the forwarding chain.  When the FIR
reaches the actor, the location (node + descriptor memory address)
propagates back along the chain, every node manager on the chain
updates its name table, and held messages are then sent directly.

To further cut migration traffic, the new descriptor address is cached
at the actor's *birthplace* and at the *old* node as soon as the move
completes.
"""

from __future__ import annotations

from typing import Optional, Tuple, TYPE_CHECKING

from repro.actors.actor import Actor
from repro.am.messages import message_nbytes, payload_nbytes
from repro.errors import DeliveryError, MigrationError
from repro.runtime.names import AddrKind, DescState, LocalityDescriptor, MailAddress
from repro.tracectx import TraceCtx

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.kernel import Kernel

#: Transient routing cycles (two stale tables pointing at each other)
#: are legal under relaxed consistency; the FIR retries until the
#: in-flight migration completes and repairs the tables.  The cap only
#: guards against genuine livelock bugs.
MAX_FIR_RETRIES = 1000


class MigrationService:
    """Migration + FIR for one kernel."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        # Causal tracing (null-object recorder when the machine is
        # untraced); FIR chain lengths feed a histogram so chase cost
        # vs chain depth is measurable (§4.3's scaling claim).
        self._spans = kernel.spans
        self._spans_on = bool(kernel.spans.enabled)
        self._h_chain = kernel.stats.hist("fir_chain_length")
        # Fault hardening (armed only on faulty machines): outstanding
        # migrate_arrive handshakes awaiting their ack, keyed by mail
        # address as ``[dest, payload, nbytes, attempts, timer]``; and
        # the receiver-side dedupe table mapping a migration's identity
        # ``(old_node, mig_id)`` to the descriptor address we acked
        # with, so a resent commit is re-acked, never re-applied.
        self._faults_on = kernel.runtime.machine.faults is not None
        self._mig_seq = 0
        self._outstanding: dict = {}
        self._arrived: dict = {}
        #: Last FIR span context per chased key (faulty machines only)
        #: so a watchdog reissue can force its span into the same
        #: trace; forced spans bypass head sampling (error paths are
        #: always recorded).
        self._fir_ctx: dict = {}

    # ==================================================================
    # outbound migration
    # ==================================================================
    def start(self, actor: Actor, dest: int) -> None:
        """Move ``actor`` to node ``dest``.  The actor must be between
        messages (the dispatcher guarantees this for ``ctx.migrate``
        and for steal-driven moves)."""
        k = self.kernel
        if dest == k.node_id:
            return
        if actor.migrating:
            raise MigrationError(f"{actor!r} is already migrating")
        if actor.busy:
            raise MigrationError(f"{actor!r} cannot migrate mid-execution")
        desc = k.table.get(actor.key)
        if desc is None or desc.actor is not actor:
            raise MigrationError(f"{actor!r} is not registered on node {k.node_id}")
        actor.migrating = True
        k.node.charge(k.costs.migrate_pack_us)
        behavior, state, mail = actor.pack_for_migration()
        desc.begin_transit(dest)
        k.stats.incr("migration.started")
        k.trace.emit(k.node.now, k.node_id, "migrate.out", actor.key, dest)
        tctx = None
        if self._spans_on:
            c = k.trace_ctx
            tid, parent = c if c is not None else (self._spans.new_trace_id(), 0)
            sid = self._spans.span(
                tid, parent, f"migrate {actor.key}", "migrate.out",
                k.node_id, k.node.now, None, dest,
            )
            tctx = TraceCtx(tid, sid, k.node.now)
        self._mig_seq += 1
        mig_id = self._mig_seq
        payload = (actor.key, behavior.name, state, tuple(mail), mig_id)
        nbytes = message_nbytes(payload, k.network_params.packet_bytes) + payload_nbytes(
            getattr(state, "__dict__", None)
        )
        if nbytes >= k.config.bulk_threshold_bytes:
            k.bulk.send_bulk(dest, "migrate_arrive", payload, nbytes,
                             trace_ctx=tctx)
        else:
            k.endpoint.send(dest, "migrate_arrive", payload, nbytes=nbytes,
                            trace_ctx=tctx)
        if self._faults_on:
            # Handshake watchdog: if the ack never lands (commit or ack
            # lost in flight), resend the commit with backoff.  The
            # receiver dedupes by (old_node, mig_id).  The trace ctx
            # rides along so resends force spans into the same trace.
            entry = [dest, payload, nbytes, 0, None, tctx]
            self._outstanding[actor.key] = entry
            self._arm_handshake(actor.key, entry)

    def on_migrate_arrive(
        self, src: int, key: MailAddress, behavior_name: str, state, mail: tuple,
        mig_id: int = -1, trace_ctx: Optional[TraceCtx] = None,
    ) -> None:
        k = self.kernel
        # Duplicate commit (a resent handshake whose original landed, or
        # a duplicated packet below the envelope layer): the move is
        # already applied — re-ack with the address we answered before
        # and do NOT resurrect a second copy of the actor.
        prev_addr = self._arrived.get((src, mig_id)) if mig_id >= 0 else None
        if prev_addr is None:
            desc0 = k.table.get(key)
            if desc0 is not None and desc0.is_local and desc0.actor is not None:
                prev_addr = desc0.addr
        if prev_addr is not None:
            k.stats.incr("migration.dup_arrivals")
            k.endpoint.send(src, "migrate_ack", (key, prev_addr))
            return
        k.node.charge(k.costs.migrate_unpack_us)
        in_span = None
        if trace_ctx is not None and self._spans_on:
            in_span = self._spans.span(
                trace_ctx.trace_id, trace_ctx.parent_span,
                f"migrate arrive {key}", "migrate.in", k.node_id,
                trace_ctx.sent_at, k.node.now, src,
            )
        behavior = k.behavior_for(behavior_name)
        actor = Actor(behavior, state, k.node_id, key)
        desc = k.table.get(key)
        if desc is None:
            k.node.charge(k.costs.descriptor_alloc_us + k.costs.nametable_insert_us)
            desc = k.table.alloc(key)
        desc.set_local(actor)
        if mig_id >= 0 and self._faults_on:
            self._arrived[(src, mig_id)] = desc.addr
        actor.migrating = False
        for msg in mail:
            actor.mailbox.enqueue(msg)
        if actor.mailbox.ready_count:
            k.dispatcher.enqueue_actor(actor)
        k.stats.incr("migration.arrived")
        k.trace.emit(k.node.now, k.node_id, "migrate.in", key, src)
        # Any messages that raced here before the actor did:
        k.delivery.flush_deferred(desc)
        # FIR chains that were parked waiting on this arrival:
        self._answer_waiting_firs(desc, k.node_id, desc.addr)
        # Ack the old node with our descriptor address ...
        out_ctx = (
            TraceCtx(trace_ctx.trace_id, in_span, k.node.now)
            if in_span is not None else None
        )
        k.endpoint.send(src, "migrate_ack", (key, desc.addr),
                        trace_ctx=out_ctx)
        # ... and cache it at the birthplace too (§4.3).  The
        # back-patch is a pure hint — losing it only costs a later FIR
        # chase — so it rides outside the ack/retry machinery.
        birth = key.home_node()
        if birth not in (k.node_id, src):
            k.endpoint.send(birth, "cache_addr", (key, k.node_id, desc.addr),
                            trace_ctx=out_ctx, expendable=True)

    def on_migrate_ack(self, src: int, key: MailAddress, new_addr: int,
                       trace_ctx: Optional[TraceCtx] = None) -> None:
        k = self.kernel
        entry = self._outstanding.pop(key, None)
        if entry is not None and entry[4] is not None:
            entry[4].cancel()
        desc = k.table.get(key)
        if desc is None or desc.state is not DescState.IN_TRANSIT:
            # Duplicate ack: a resent commit was re-acked after the
            # first ack already moved this descriptor to REMOTE.
            if desc is not None and desc.state is DescState.REMOTE:
                k.stats.incr("migration.dup_acks")
                return
            raise MigrationError(
                f"node {k.node_id}: unexpected migrate_ack for {key!r}"
            )
        if trace_ctx is not None and self._spans_on:
            self._spans.span(
                trace_ctx.trace_id, trace_ctx.parent_span,
                f"migrate ack {key}", "migrate.ack", k.node_id,
                trace_ctx.sent_at, k.node.now, src,
            )
        desc.set_remote(src, new_addr)
        k.stats.incr("migration.acked")
        k.delivery.flush_deferred(desc)
        self._answer_waiting_firs(desc, src, new_addr)

    # ------------------------------------------------------------------
    # handshake watchdog (faulty machines only)
    # ------------------------------------------------------------------
    def _arm_handshake(self, key: MailAddress, entry: list) -> None:
        k = self.kernel
        p = k.config.reliability
        timeout = min(
            p.handshake_timeout_us * (p.backoff_factor ** entry[3]),
            p.max_backoff_us,
        )
        entry[4] = k.node.execute(
            k.node.now + timeout,
            lambda: self._handshake_timeout(key),
            label="migration.watchdog",
        )

    def _handshake_timeout(self, key: MailAddress) -> None:
        entry = self._outstanding.get(key)
        if entry is None:
            return  # acked while the timer event was in flight
        k = self.kernel
        desc = k.table.get(key)
        if desc is None or desc.state is not DescState.IN_TRANSIT:
            self._outstanding.pop(key, None)
            return
        entry[3] += 1
        if entry[3] > k.config.reliability.watchdog_max_retries:
            raise MigrationError(
                f"node {k.node_id}: migration of {key!r} to node "
                f"{entry[0]} was never acknowledged"
            )
        k.stats.incr("migration.resent")
        tctx = entry[5]
        if self._spans_on:
            # A resend is an error-path event: force the span past the
            # head-sampling decision so fault recovery is always
            # visible in the trace, whatever the sample rate.
            tid = tctx.trace_id if tctx is not None else 0
            parent = tctx.parent_span if tctx is not None else 0
            tid, sid = self._spans.force_span(
                tid, parent, f"migrate resend {key}", "migrate.resend",
                k.node_id, k.node.now, None, entry[0], entry[3],
            )
            tctx = TraceCtx(tid, sid, k.node.now)
            entry[5] = tctx
        k.endpoint.send(entry[0], "migrate_arrive", entry[1], nbytes=entry[2],
                        trace_ctx=tctx)
        self._arm_handshake(key, entry)

    # ==================================================================
    # FIR protocol
    # ==================================================================
    def queue_for_fir(self, desc: LocalityDescriptor, msg) -> None:
        """Hold ``msg`` and (if not already chasing) send an FIR toward
        the actor's believed location."""
        k = self.kernel
        desc.deferred.append(msg)
        if desc.state is DescState.RESOLVING:
            k.stats.incr("fir.coalesced")
            if self._spans_on and msg.trace_id:
                # This journey piggybacks on an already-outstanding FIR.
                self._spans.span(
                    msg.trace_id, msg.span_id, f"fir coalesced {desc.key}",
                    "fir.coalesced", k.node_id, k.node.now,
                )
            return  # an FIR for this actor is already outstanding
        target = desc.remote_node
        desc.begin_resolving()
        k.stats.incr("fir.initiated")
        k.trace.emit(k.node.now, k.node_id, "fir.start", desc.key, target)
        k.node.charge(k.costs.fir_relay_us)
        tctx = None
        if self._spans_on and msg.trace_id:
            sid = self._spans.span(
                msg.trace_id, msg.span_id, f"fir {desc.key}", "fir.start",
                k.node_id, k.node.now, None, target,
            )
            tctx = TraceCtx(msg.trace_id, sid, k.node.now)
            if self._faults_on:
                self._fir_ctx[desc.key] = (msg.trace_id, sid)
        k.endpoint.send(target, "fir", (desc.key, (k.node_id,)),
                        trace_ctx=tctx)
        if self._faults_on:
            # FIR watchdog: if the chase never reports back (request or
            # reply lost anywhere along the chain), reissue from here.
            desc.retry_attempts = 0
            self._arm_fir_watchdog(desc)

    def _arm_fir_watchdog(self, desc: LocalityDescriptor) -> None:
        k = self.kernel
        p = k.config.reliability
        timeout = min(
            p.fir_timeout_us * (p.backoff_factor ** desc.retry_attempts),
            p.max_backoff_us,
        )
        desc.retry_timer = k.node.execute(
            k.node.now + timeout,
            lambda: self._fir_watchdog(desc),
            label="fir.watchdog",
        )

    def _fir_watchdog(self, desc: LocalityDescriptor) -> None:
        desc.retry_timer = None
        if desc.state is not DescState.RESOLVING:
            return  # chase resolved; nothing to do (self-cleaning)
        k = self.kernel
        desc.retry_attempts += 1
        if desc.retry_attempts > k.config.reliability.watchdog_max_retries:
            raise DeliveryError(
                f"node {k.node_id}: FIR for {desc.key!r} was never "
                "answered (chain unreachable)"
            )
        k.stats.incr("fir.reissued")
        k.node.charge(k.costs.fir_relay_us)
        tctx = None
        if self._spans_on:
            # Forced span: a lost FIR/reply is an error path, recorded
            # regardless of the head-sampling decision (trace 0 roots a
            # fresh, forced trace when the chase itself was untraced).
            prev = self._fir_ctx.get(desc.key)
            tid, parent = prev if prev is not None else (0, 0)
            tid, sid = self._spans.force_span(
                tid, parent, f"fir reissue {desc.key}", "fir.reissue",
                k.node_id, k.node.now, None, desc.retry_attempts,
            )
            if sid:
                self._fir_ctx[desc.key] = (tid, sid)
                tctx = TraceCtx(tid, sid, k.node.now)
        k.endpoint.send(desc.remote_node, "fir", (desc.key, (k.node_id,)),
                        trace_ctx=tctx)
        self._arm_fir_watchdog(desc)

    def on_fir(self, src: int, key: MailAddress, chain: Tuple[int, ...],
               trace_ctx: Optional[TraceCtx] = None) -> None:
        if trace_ctx is not None and self._spans_on:
            k = self.kernel
            sid = self._spans.span(
                trace_ctx.trace_id, trace_ctx.parent_span, f"fir hop {key}",
                "fir.hop", k.node_id, trace_ctx.sent_at, k.node.now, src,
            )
            trace_ctx = TraceCtx(trace_ctx.trace_id, sid, k.node.now)
        self._fir_step(src, key, chain, trace_ctx)

    def _fir_step(self, src: int, key: MailAddress, chain: Tuple[int, ...],
                  trace_ctx: Optional[TraceCtx]) -> None:
        """One examination of an in-flight FIR on this node (re-entered
        on retries without re-recording the arrival hop)."""
        k = self.kernel
        k.node.charge(k.costs.fir_relay_us)
        desc = k.table.get(key)
        if desc is None:
            home = key.home_node()
            if home == k.node_id and key.kind is not AddrKind.ORDINARY:
                # Creation itself is still in flight; park the FIR.
                desc = k.table.alloc(key)
                desc.state = DescState.AWAITING_CREATION
                desc.waiting_firs.append((chain, trace_ctx))
                return
            if home == k.node_id:
                raise DeliveryError(
                    f"FIR for unknown locally-born actor {key!r}"
                )
            desc = k.table.alloc(key)
            desc.set_remote(home)
        if desc.is_local:
            # Found the actor: propagate the location back along the
            # chain with the locality descriptor's memory address.
            k.stats.incr("fir.resolved")
            if self._spans_on:
                self._h_chain.record(len(chain))
                if trace_ctx is not None:
                    sid = self._spans.span(
                        trace_ctx.trace_id, trace_ctx.parent_span,
                        f"fir resolve {key}", "fir.resolve", k.node_id,
                        k.node.now, None, len(chain),
                    )
                    trace_ctx = TraceCtx(trace_ctx.trace_id, sid, k.node.now)
            self._send_fir_reply(key, k.node_id, desc.addr, chain, trace_ctx)
            return
        if desc.state in (DescState.IN_TRANSIT, DescState.AWAITING_CREATION,
                          DescState.RESOLVING):
            # We will learn the location shortly; answer then.
            desc.waiting_firs.append((chain, trace_ctx))
            return
        nxt = desc.remote_node
        # A next hop already on the chain is NOT necessarily a cycle:
        # the actor may have returned to a node after the FIR passed
        # it, in which case that node's table is *correct* and will
        # never change — waiting here would livelock.  Forwarding
        # pointers advance along the actor's itinerary, so relaying
        # terminates once in-flight migrations complete; the chain cap
        # bounds the transient case (truly cyclic stale tables) by
        # falling back to retry-and-wait.
        if nxt == k.node_id or len(chain) > 2 * k.runtime.num_nodes + 8:
            # Await repair by an in-flight migration's ack/back-patch.
            desc.fir_retries += 1
            if desc.fir_retries > MAX_FIR_RETRIES:
                raise DeliveryError(
                    f"FIR livelock chasing {key!r} (chain {chain})"
                )
            k.stats.incr("fir.retries")
            k.node.execute(
                k.node.now + k.costs.fir_retry_delay_us,
                lambda: self._fir_step(src, key, chain, trace_ctx),
                label="fir.retry",
            )
            return
        k.stats.incr("fir.relayed")
        k.endpoint.send(
            nxt, "fir", (key, chain + (k.node_id,)),
            trace_ctx=(
                TraceCtx(trace_ctx.trace_id, trace_ctx.parent_span, k.node.now)
                if trace_ctx is not None else None
            ),
        )

    def _send_fir_reply(
        self, key: MailAddress, node: int, addr: int, chain: Tuple[int, ...],
        trace_ctx: Optional[TraceCtx] = None,
    ) -> None:
        """Send the resolution one hop back along the chain."""
        if not chain:
            return
        if trace_ctx is not None:
            trace_ctx = TraceCtx(trace_ctx.trace_id, trace_ctx.parent_span,
                                 self.kernel.node.now)
        self.kernel.endpoint.send(
            chain[-1], "fir_reply", (key, node, addr, chain[:-1]),
            trace_ctx=trace_ctx,
        )

    def on_fir_reply(
        self, src: int, key: MailAddress, node: int, addr: int,
        chain: Tuple[int, ...], trace_ctx: Optional[TraceCtx] = None,
    ) -> None:
        """A chain node learns the actor's location: update the table,
        release held messages, answer our own waiters, keep relaying."""
        k = self.kernel
        k.node.charge(k.costs.fir_relay_us)
        if trace_ctx is not None and self._spans_on:
            sid = self._spans.span(
                trace_ctx.trace_id, trace_ctx.parent_span,
                f"fir reply {key}", "fir.reply", k.node_id,
                trace_ctx.sent_at, k.node.now, src,
            )
            trace_ctx = TraceCtx(trace_ctx.trace_id, sid, k.node.now)
        desc = k.table.get(key)
        if desc is not None and desc.state in (DescState.REMOTE, DescState.RESOLVING):
            desc.set_remote(node, addr)
            desc.fir_retries = 0
            k.stats.incr("fir.updated")
            if trace_ctx is not None and self._spans_on:
                # The chain node's name table is back-patched with the
                # actor's real location (§4.3).
                self._spans.span(
                    trace_ctx.trace_id, trace_ctx.parent_span,
                    f"backpatch {key}", "backpatch", k.node_id,
                    k.node.now, None, node,
                )
            k.delivery.flush_deferred(desc)
            self._answer_waiting_firs(desc, node, addr)
        self._send_fir_reply(key, node, addr, chain, trace_ctx)

    def _answer_waiting_firs(
        self, desc: LocalityDescriptor, node: int, addr: int
    ) -> None:
        if not desc.waiting_firs:
            return
        waiting, desc.waiting_firs = desc.waiting_firs, []
        for chain, tctx in waiting:
            self._send_fir_reply(desc.key, node, addr, chain, tctx)
