"""Actor migration and the FIR location protocol (§4.3).

Migration keeps the name service deliberately inconsistent: location
information for remote actors is a best guess.  When a node manager is
asked to deliver a message for an actor that has migrated away, it
does **not** forward the message; it sends a small *forwarding
information request* (FIR) along the forwarding chain.  When the FIR
reaches the actor, the location (node + descriptor memory address)
propagates back along the chain, every node manager on the chain
updates its name table, and held messages are then sent directly.

To further cut migration traffic, the new descriptor address is cached
at the actor's *birthplace* and at the *old* node as soon as the move
completes.
"""

from __future__ import annotations

from typing import Optional, Tuple, TYPE_CHECKING

from repro.actors.actor import Actor
from repro.am.messages import message_nbytes, payload_nbytes
from repro.errors import DeliveryError, MigrationError
from repro.runtime.names import AddrKind, DescState, LocalityDescriptor, MailAddress

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.kernel import Kernel

#: Transient routing cycles (two stale tables pointing at each other)
#: are legal under relaxed consistency; the FIR retries until the
#: in-flight migration completes and repairs the tables.  The cap only
#: guards against genuine livelock bugs.
MAX_FIR_RETRIES = 1000


class MigrationService:
    """Migration + FIR for one kernel."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel

    # ==================================================================
    # outbound migration
    # ==================================================================
    def start(self, actor: Actor, dest: int) -> None:
        """Move ``actor`` to node ``dest``.  The actor must be between
        messages (the dispatcher guarantees this for ``ctx.migrate``
        and for steal-driven moves)."""
        k = self.kernel
        if dest == k.node_id:
            return
        if actor.migrating:
            raise MigrationError(f"{actor!r} is already migrating")
        if actor.busy:
            raise MigrationError(f"{actor!r} cannot migrate mid-execution")
        desc = k.table.get(actor.key)
        if desc is None or desc.actor is not actor:
            raise MigrationError(f"{actor!r} is not registered on node {k.node_id}")
        actor.migrating = True
        k.node.charge(k.costs.migrate_pack_us)
        behavior, state, mail = actor.pack_for_migration()
        desc.begin_transit(dest)
        k.stats.incr("migration.started")
        k.trace.emit(k.node.now, k.node_id, "migrate.out", actor.key, dest)
        payload = (actor.key, behavior.name, state, tuple(mail))
        nbytes = message_nbytes(payload, k.network_params.packet_bytes) + payload_nbytes(
            getattr(state, "__dict__", None)
        )
        if nbytes >= k.config.bulk_threshold_bytes:
            k.bulk.send_bulk(dest, "migrate_arrive", payload, nbytes)
        else:
            k.endpoint.send(dest, "migrate_arrive", payload, nbytes=nbytes)

    def on_migrate_arrive(
        self, src: int, key: MailAddress, behavior_name: str, state, mail: tuple
    ) -> None:
        k = self.kernel
        k.node.charge(k.costs.migrate_unpack_us)
        behavior = k.behavior_for(behavior_name)
        actor = Actor(behavior, state, k.node_id, key)
        desc = k.table.get(key)
        if desc is None:
            k.node.charge(k.costs.descriptor_alloc_us + k.costs.nametable_insert_us)
            desc = k.table.alloc(key)
        desc.set_local(actor)
        actor.migrating = False
        for msg in mail:
            actor.mailbox.enqueue(msg)
        if actor.mailbox.ready_count:
            k.dispatcher.enqueue_actor(actor)
        k.stats.incr("migration.arrived")
        k.trace.emit(k.node.now, k.node_id, "migrate.in", key, src)
        # Any messages that raced here before the actor did:
        k.delivery.flush_deferred(desc)
        # FIR chains that were parked waiting on this arrival:
        self._answer_waiting_firs(desc, k.node_id, desc.addr)
        # Ack the old node with our descriptor address ...
        k.endpoint.send(src, "migrate_ack", (key, desc.addr))
        # ... and cache it at the birthplace too (§4.3).
        birth = key.home_node()
        if birth not in (k.node_id, src):
            k.endpoint.send(birth, "cache_addr", (key, k.node_id, desc.addr))

    def on_migrate_ack(self, src: int, key: MailAddress, new_addr: int) -> None:
        k = self.kernel
        desc = k.table.get(key)
        if desc is None or desc.state is not DescState.IN_TRANSIT:
            raise MigrationError(
                f"node {k.node_id}: unexpected migrate_ack for {key!r}"
            )
        desc.set_remote(src, new_addr)
        k.stats.incr("migration.acked")
        k.delivery.flush_deferred(desc)
        self._answer_waiting_firs(desc, src, new_addr)

    # ==================================================================
    # FIR protocol
    # ==================================================================
    def queue_for_fir(self, desc: LocalityDescriptor, msg) -> None:
        """Hold ``msg`` and (if not already chasing) send an FIR toward
        the actor's believed location."""
        k = self.kernel
        desc.deferred.append(msg)
        if desc.state is DescState.RESOLVING:
            k.stats.incr("fir.coalesced")
            return  # an FIR for this actor is already outstanding
        target = desc.remote_node
        desc.begin_resolving()
        k.stats.incr("fir.initiated")
        k.trace.emit(k.node.now, k.node_id, "fir.start", desc.key, target)
        k.node.charge(k.costs.fir_relay_us)
        k.endpoint.send(target, "fir", (desc.key, (k.node_id,)))

    def on_fir(self, src: int, key: MailAddress, chain: Tuple[int, ...]) -> None:
        k = self.kernel
        k.node.charge(k.costs.fir_relay_us)
        desc = k.table.get(key)
        if desc is None:
            home = key.home_node()
            if home == k.node_id and key.kind is not AddrKind.ORDINARY:
                # Creation itself is still in flight; park the FIR.
                desc = k.table.alloc(key)
                desc.state = DescState.AWAITING_CREATION
                desc.waiting_firs.append(chain)
                return
            if home == k.node_id:
                raise DeliveryError(
                    f"FIR for unknown locally-born actor {key!r}"
                )
            desc = k.table.alloc(key)
            desc.set_remote(home)
        if desc.is_local:
            # Found the actor: propagate the location back along the
            # chain with the locality descriptor's memory address.
            k.stats.incr("fir.resolved")
            self._send_fir_reply(key, k.node_id, desc.addr, chain)
            return
        if desc.state in (DescState.IN_TRANSIT, DescState.AWAITING_CREATION,
                          DescState.RESOLVING):
            # We will learn the location shortly; answer then.
            desc.waiting_firs.append(chain)
            return
        nxt = desc.remote_node
        if nxt == k.node_id or nxt in chain:
            # Stale tables formed a transient cycle; retry after the
            # in-flight migration has had time to repair them.
            desc.fir_retries += 1
            if desc.fir_retries > MAX_FIR_RETRIES:
                raise DeliveryError(
                    f"FIR livelock chasing {key!r} (chain {chain})"
                )
            k.stats.incr("fir.retries")
            k.node.execute(
                k.node.now + k.costs.fir_retry_delay_us,
                lambda: self.on_fir(src, key, chain),
                label="fir.retry",
            )
            return
        k.stats.incr("fir.relayed")
        k.endpoint.send(nxt, "fir", (key, chain + (k.node_id,)))

    def _send_fir_reply(
        self, key: MailAddress, node: int, addr: int, chain: Tuple[int, ...]
    ) -> None:
        """Send the resolution one hop back along the chain."""
        if not chain:
            return
        self.kernel.endpoint.send(
            chain[-1], "fir_reply", (key, node, addr, chain[:-1])
        )

    def on_fir_reply(
        self, src: int, key: MailAddress, node: int, addr: int,
        chain: Tuple[int, ...],
    ) -> None:
        """A chain node learns the actor's location: update the table,
        release held messages, answer our own waiters, keep relaying."""
        k = self.kernel
        k.node.charge(k.costs.fir_relay_us)
        desc = k.table.get(key)
        if desc is not None and desc.state in (DescState.REMOTE, DescState.RESOLVING):
            desc.set_remote(node, addr)
            desc.fir_retries = 0
            k.stats.incr("fir.updated")
            k.delivery.flush_deferred(desc)
            self._answer_waiting_firs(desc, node, addr)
        self._send_fir_reply(key, node, addr, chain)

    def _answer_waiting_firs(
        self, desc: LocalityDescriptor, node: int, addr: int
    ) -> None:
        if not desc.waiting_firs:
            return
        waiting, desc.waiting_firs = desc.waiting_firs, []
        for chain in waiting:
            self._send_fir_reply(desc.key, node, addr, chain)
