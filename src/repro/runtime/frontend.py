"""The front-end running on the partition manager (§3).

The front-end processes all I/O requests from the kernels and loads
user executables: the compiler produces an image (a
:class:`~repro.runtime.program.HalProgram` run through the HAL
compiler); on ``load`` the image is announced to every kernel, which
dynamically links it.  A simple command-interpreter-style API
(:meth:`load`, :meth:`run_main`) mirrors the paper's user interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, TYPE_CHECKING

from repro.errors import LoadError
from repro.runtime.program import HalProgram

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.system import HalRuntime


@dataclass(frozen=True)
class ConsoleLine:
    """One line of program output collected by the partition manager."""

    time: float
    node: int
    text: str

    def __str__(self) -> str:
        return f"[{self.time:10.2f}us n{self.node}] {self.text}"


class FrontEnd:
    """Partition-manager process: program loading + console I/O."""

    def __init__(self, runtime: "HalRuntime") -> None:
        self.runtime = runtime
        self._programs: Dict[str, HalProgram] = {}
        self.console: List[ConsoleLine] = []

    # ------------------------------------------------------------------
    # program loading
    # ------------------------------------------------------------------
    def load(self, program: HalProgram) -> None:
        """Compile and load ``program`` into every kernel."""
        if program.name in self._programs:
            raise LoadError(f"program {program.name!r} already loaded")
        # The compiler runs on the front-end before distribution.  The
        # analysis universe includes everything already linked: kernels
        # execute all programs in a single address space (§3), so sends
        # may target behaviours from earlier images.
        from repro.hal.compiler import compile_program
        universe = dict(self.runtime.kernels[0].behaviors) if self.runtime.kernels else {}
        program.compiled = compile_program(program, universe=universe)
        self._programs[program.name] = program
        for kernel in self.runtime.kernels:
            for cls in program.behaviors:
                kernel.register_behavior(cls)
            for name, fn in program.tasks.items():
                kernel.register_task(name, fn)
        # Charge the dynamic-link cost on every node.
        for kernel in self.runtime.kernels:
            kernel.node.bootstrap(lambda k=kernel: k.link_program(program.name))
        self.runtime.machine.stats.incr("load.programs")

    def program(self, name: str) -> HalProgram:
        try:
            return self._programs[name]
        except KeyError:
            raise LoadError(f"program {name!r} is not loaded") from None

    @property
    def loaded_programs(self) -> List[str]:
        return sorted(self._programs)

    def run_main(self, name: str, *args, **kwargs):
        """Invoke a loaded program's entry point with the runtime."""
        program = self.program(name)
        if program.main is None:
            raise LoadError(f"program {name!r} declares no entry point")
        return program.main(self.runtime, *args, **kwargs)

    # ------------------------------------------------------------------
    # console I/O
    # ------------------------------------------------------------------
    def console_write(self, node: int, time: float, text: str) -> None:
        self.console.append(ConsoleLine(time, node, text))

    def console_text(self) -> str:
        return "\n".join(str(line) for line in self.console)
