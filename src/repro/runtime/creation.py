"""Actor creation: local, and remote with alias latency hiding (§5).

A remote creation must normally wait for the new actor's mail address
to come back.  Instead, the issuing kernel allocates an **alias** — a
mail address whose ``birthplace`` is the *issuing* node, with the
actual creation node encoded — and resumes the creator immediately;
the remote node manager creates the actor, registers it under the
alias, and sends its descriptor's memory address back for caching as
background processing.  The paper's measurement: the issue path runs
in 5.83 us while the actual creation takes 20.83 us.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple, Type, TYPE_CHECKING

from repro.actors.actor import Actor
from repro.actors.behavior import Behavior
from repro.actors.message import ReplyTarget
from repro.errors import NameServiceError, ReproError
from repro.runtime.dispatcher import Task
from repro.runtime.names import ActorRef, AddrKind, DescState, MailAddress
from repro.tracectx import TraceCtx

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.kernel import Kernel


class CreationService:
    """Creation primitives for one kernel."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self._spans = kernel.spans
        self._spans_on = bool(kernel.spans.enabled)
        # Under fault injection a creation request may be resent, so a
        # duplicate arrival is re-confirmed instead of rejected, and
        # the issuer arms an alias-promotion watchdog (the cached
        # descriptor address coming back is the confirmation).
        self._faults_on = kernel.runtime.machine.faults is not None

    # ------------------------------------------------------------------
    def create(self, cls: Type, args: tuple, at: Optional[int] = None) -> ActorRef:
        """``new``: create an actor, locally or at node ``at``."""
        k = self.kernel
        behavior = k.behavior_for(cls)
        if at is None or at == k.node_id:
            return self.create_local(behavior, args)
        if not (0 <= at < k.runtime.num_nodes):
            raise ReproError(f"no such node {at}")
        return self.create_remote(behavior, args, at)

    # ------------------------------------------------------------------
    def create_local(self, behavior: Behavior, args: tuple) -> ActorRef:
        k = self.kernel
        costs = k.costs
        k.node.charge(
            costs.descriptor_alloc_us
            + costs.nametable_insert_us
            + costs.create_state_us
            + costs.create_fixed_us
        )
        desc = k.table.alloc()
        key = MailAddress(AddrKind.ORDINARY, k.node_id, desc.addr)
        k.table.bind(key, desc)
        state = behavior.make_state(args)
        actor = Actor(behavior, state, k.node_id, key)
        desc.set_local(actor)
        k.stats.incr("creation.local")
        return ActorRef(key)

    # ------------------------------------------------------------------
    def create_remote(self, behavior: Behavior, args: tuple, dest: int) -> ActorRef:
        """Issue a remote creation; return an alias immediately."""
        k = self.kernel
        costs = k.costs
        if not k.config.alias_creation:
            raise ReproError(
                "alias_creation is disabled: remote `new` would block. "
                "Use the split-phase form instead: "
                "`ref = yield ctx.request_create(Cls, args, at=node)`"
            )
        k.node.charge(
            costs.descriptor_alloc_us
            + costs.nametable_insert_us
            + costs.marshal_us
        )
        desc = k.table.alloc()
        key = MailAddress(AddrKind.ALIAS, k.node_id, desc.addr, aux=dest)
        k.table.bind(key, desc)
        desc.set_remote(dest)
        k.stats.incr("creation.remote_issued")
        k.trace.emit(k.node.now, k.node_id, "create.issue", key, dest)
        tctx = None
        if self._spans_on:
            c = k.trace_ctx
            tid, parent = c if c is not None else (self._spans.new_trace_id(), 0)
            sid = self._spans.span(
                tid, parent, f"create {behavior.name}", "create.issue",
                k.node_id, k.node.now, None, dest,
            )
            tctx = TraceCtx(tid, sid, k.node.now)
        k.endpoint.send(dest, "create_remote", (key, behavior.name, args),
                        trace_ctx=tctx)
        # The creator resumes its continuation as soon as the request's
        # last packet is injected; the remaining bookkeeping (alias
        # continuation fix-up) happens after the send.
        k.node.charge(costs.remote_create_issue_fixed_us)
        if self._faults_on and k.config.descriptor_caching:
            self._arm_promotion(desc, key, behavior.name, args, dest)
        return ActorRef(key)

    # ------------------------------------------------------------------
    # alias-promotion watchdog (faulty machines only)
    # ------------------------------------------------------------------
    def _arm_promotion(self, desc, key: MailAddress, behavior_name: str,
                       args: tuple, dest: int) -> None:
        k = self.kernel
        p = k.config.reliability
        timeout = min(
            p.promotion_timeout_us * (p.backoff_factor ** desc.retry_attempts),
            p.max_backoff_us,
        )
        desc.retry_timer = k.node.execute(
            k.node.now + timeout,
            lambda: self._promotion_watchdog(desc, key, behavior_name, args, dest),
            label="creation.watchdog",
        )

    def _promotion_watchdog(self, desc, key: MailAddress, behavior_name: str,
                            args: tuple, dest: int) -> None:
        desc.retry_timer = None
        if desc.has_cached_addr or desc.is_local:
            return  # creation confirmed (self-cleaning)
        k = self.kernel
        desc.retry_attempts += 1
        if desc.retry_attempts > k.config.reliability.watchdog_max_retries:
            raise NameServiceError(
                f"node {k.node_id}: remote creation of {key!r} on node "
                f"{dest} was never confirmed"
            )
        k.stats.incr("creation.reissued")
        k.endpoint.send(dest, "create_remote", (key, behavior_name, args))
        self._arm_promotion(desc, key, behavior_name, args, dest)

    def on_create_remote(
        self, src: int, key: MailAddress, behavior_name: str, args: tuple,
        trace_ctx: Optional[TraceCtx] = None,
    ) -> None:
        """Node-manager side of a remote creation request."""
        k = self.kernel
        costs = k.costs
        k.node.charge(
            costs.descriptor_alloc_us
            + costs.nametable_insert_us
            + costs.create_state_us
            + costs.remote_create_serve_fixed_us
        )
        behavior = k.behavior_for(behavior_name)
        desc = k.table.get(key)
        if desc is None:
            desc = k.table.alloc(key)
        elif desc.actor is not None:
            if self._faults_on:
                # A resent creation request whose original landed: the
                # actor exists; just re-confirm so the issuer's alias
                # promotes.  Never create a second actor.
                k.stats.incr("creation.dup_requests")
                if k.config.descriptor_caching:
                    k.endpoint.send(
                        src, "cache_addr", (key, k.node_id, desc.addr),
                        expendable=True,
                    )
                return
            raise NameServiceError(f"duplicate creation for {key!r}")
        state = behavior.make_state(args)
        actor = Actor(behavior, state, k.node_id, key)
        desc.set_local(actor)
        k.stats.incr("creation.remote_served")
        k.trace.emit(k.node.now, k.node_id, "create.serve", key, src)
        serve_span = None
        if trace_ctx is not None and self._spans_on:
            serve_span = self._spans.span(
                trace_ctx.trace_id, trace_ctx.parent_span,
                f"create serve {behavior_name}", "create.serve", k.node_id,
                trace_ctx.sent_at, k.node.now, src,
            )
        # Messages (or FIRs) that used the alias before we registered it:
        k.delivery.flush_deferred(desc)
        k.migration._answer_waiting_firs(desc, k.node_id, desc.addr)
        # Background processing: return the descriptor address to cache.
        if k.config.descriptor_caching:
            # A pure hint (the issuer's promotion watchdog repairs its
            # loss), so it skips the ack/retry machinery.
            k.endpoint.send(
                src, "cache_addr", (key, k.node_id, desc.addr),
                trace_ctx=(
                    TraceCtx(trace_ctx.trace_id, serve_span, k.node.now)
                    if serve_span is not None else None
                ),
                expendable=True,
            )

    # ------------------------------------------------------------------
    # split-phase creation (request/reply form, the alias ablation)
    # ------------------------------------------------------------------
    def on_create_request(
        self, src: int, behavior_name: str, args: tuple, reply_to: ReplyTarget,
        trace_ctx: Optional[TraceCtx] = None,
    ) -> None:
        """Create an ordinary actor and reply with its mail address."""
        k = self.kernel
        behavior = k.behavior_for(behavior_name)
        ref = self.create_local(behavior, args)
        k.stats.incr("creation.split_phase")
        reply_parent = None
        if trace_ctx is not None and self._spans_on:
            sid = self._spans.span(
                trace_ctx.trace_id, trace_ctx.parent_span,
                f"create serve {behavior_name}", "create.serve", k.node_id,
                trace_ctx.sent_at, k.node.now, src,
            )
            reply_parent = (trace_ctx.trace_id, sid)
        k.reply_router.send_reply(reply_to, ref, trace_ctx=reply_parent)

    # ------------------------------------------------------------------
    # lightweight tasks (creation elision, §7.2)
    # ------------------------------------------------------------------
    def spawn_task(self, fn_name: str, args: tuple, at: Optional[int] = None) -> None:
        k = self.kernel
        if fn_name not in k.tasks:
            raise ReproError(f"task {fn_name!r} is not loaded")
        ctx = k.trace_ctx if self._spans_on else None
        if at is None or at == k.node_id:
            k.node.charge(k.costs.enqueue_us)
            k.dispatcher.enqueue(Task(fn_name, args, ctx))
        else:
            k.endpoint.send(
                at, "task_spawn", (fn_name, args),
                trace_ctx=(
                    TraceCtx(ctx[0], ctx[1], k.node.now)
                    if ctx is not None else None
                ),
            )
        k.stats.incr("creation.tasks")

    def on_task_spawn(self, src: int, fn_name: str, args: tuple,
                      trace_ctx: Optional[TraceCtx] = None) -> None:
        k = self.kernel
        k.node.charge(k.costs.enqueue_us)
        task_ctx = None
        if trace_ctx is not None and self._spans_on:
            sid = self._spans.span(
                trace_ctx.trace_id, trace_ctx.parent_span,
                f"hop task {fn_name}", "hop", k.node_id,
                trace_ctx.sent_at, k.node.now, src,
            )
            task_ctx = (trace_ctx.trace_id, sid)
        k.dispatcher.enqueue(Task(fn_name, args, task_ctx))
