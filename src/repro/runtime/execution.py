"""Message execution engine.

Implements the kernel's dispatch mechanism: queued (generic) dispatch,
compiler-selected static/lookup inline invocation (§6.3), enforcement
of local synchronization constraints via the pending queue (§6.1),
``become``, and the collective execution of broadcast quanta (§6.4).

Cost accounting matches the paper's decomposition: a *generic* local
send pays hash lookup + locality check + enqueue, then dispatch +
method lookup + invocation in the scheduling slice; a *static* inline
send pays only locality check + invocation.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.actors.actor import Actor
from repro.actors.behavior import Behavior, behavior_of
from repro.actors.continuations import JoinContinuation
from repro.actors.message import ActorMessage
from repro.errors import SchedulingError
from repro.runtime.context import Context
from repro.runtime.dispatcher import GroupBatch, Task
from repro.stats import Histogram

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.kernel import Kernel


class Execution:
    """Per-kernel executor; stateless apart from the kernel handle."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        #: Current compiler-controlled inline stack depth on this node.
        self.inline_depth = 0
        # Hot-path bindings: every local delivery and invocation pays
        # these, so resolve the node, cost scalars and counter cell once.
        self._node = kernel.node
        costs = kernel.costs
        self._enqueue_us = costs.enqueue_us
        self._dispatch_us = costs.dispatch_us
        self._invoke_us = costs.invoke_us
        self._method_lookup_us = costs.method_lookup_us
        self._c_messages = kernel.stats.cell("exec.messages")
        # Inline-dispatch tallies feed the local-dispatch hit-rate
        # metric (inline static/lookup vs generic deliveries); with
        # request sends now planned, these run per message — cells,
        # not f-string counter keys.
        self._c_inline_static = kernel.stats.cell("exec.inline_static")
        self._c_inline_lookup = kernel.stats.cell("exec.inline_lookup")
        self._c_inline_refused = kernel.stats.cell("exec.inline_refused")
        # Causal tracing: one cached flag on the hot path; the latency
        # histograms are only fed on traced machines, so untraced stats
        # snapshots are byte-identical to the pre-tracing ones.
        self._spans = kernel.spans
        self._spans_on = bool(kernel.spans.enabled)
        self._h_delivery = kernel.stats.hist("delivery_latency_us")
        self._h_exec = kernel.stats.hist("execution_time_us")
        self._h_mailbox = kernel.stats.hist("mailbox_depth")
        # Bound-method handle for the colder task/continuation sites;
        # the per-message sites stage raw samples (one bound append
        # each) and bulk-fold on a countdown instead.
        self._rec_exec = self._h_exec.record
        self._stage_delivery = self._h_delivery.stage
        self._stage_exec = self._h_exec.stage
        self._stage_mailbox = self._h_mailbox.stage
        self._fold_countdown = Histogram.FOLD_AT

    # ------------------------------------------------------------------
    # local delivery (generic buffered path)
    # ------------------------------------------------------------------
    def deliver_local(self, actor: Actor, msg: ActorMessage) -> None:
        """Buffer a message in the actor's mail queue and schedule it."""
        k = self.kernel
        self._node.charge(self._enqueue_us)
        actor.mailbox.enqueue(msg)
        if self._spans_on:
            # Raw histogram sample: one bound append; bucketing is
            # batch-folded off the per-message path (repro.stats).
            # len(queue) is ready_count with the property call skipped.
            self._stage_mailbox(len(actor.mailbox.queue))
        k.dispatcher.enqueue_actor(actor)

    # ------------------------------------------------------------------
    # slice entry points (called by the dispatcher)
    # ------------------------------------------------------------------
    def actor_slice(self, actor: Actor) -> None:
        """Process exactly one queued message, then drain newly enabled
        pending messages, then hand the node back to the dispatcher."""
        k = self.kernel
        if actor.migrating or actor.mailbox.ready_count == 0:
            return
        msg = actor.mailbox.dequeue()
        self._node.charge(self._dispatch_us)
        self._dispatch(actor, msg, lookup=True)
        if actor.mailbox.ready_count and not actor.migrating:
            k.dispatcher.enqueue_actor(actor)

    def fire_continuation(self, cont: JoinContinuation) -> None:
        k = self.kernel
        k.node.charge(k.costs.continuation_fire_us)
        k.stats.incr("exec.continuations_fired")
        if not self._spans_on or cont.trace_ctx is None:
            cont.invoke()
            return
        tid, parent = cont.trace_ctx
        prev_ctx = k.trace_ctx
        # Head sampling rides the trace ID's low bit: an unsampled
        # trace still propagates its context (children must not root
        # fresh traces and re-roll the decision) and still feeds the
        # exec histogram — only the span record itself is elided.
        sampled = tid & 1
        sid = self._spans.new_span_id() if sampled else 0
        k.trace_ctx = (tid, sid)
        t0 = self._node.now
        try:
            cont.invoke()
        finally:
            k.trace_ctx = prev_ctx
            t1 = self._node.now
            if sampled:
                self._spans.record(
                    tid, sid, parent, f"continuation {cont.cont_id}",
                    "continuation", k.node_id, t0, t1,
                )
            else:
                self._spans.elided += 1
            self._rec_exec(t1 - t0)

    def run_task(self, task: Task) -> None:
        k = self.kernel
        fn = k.task_fn(task.fn_name)
        k.node.charge(k.costs.invoke_us)
        k.stats.incr("exec.tasks")
        if not self._spans_on:
            ctx = Context(k, None, None, method_name=task.fn_name)
            result = fn(ctx, *task.args)
            if inspect.isgenerator(result):
                k.driver.start(None, None, result)
            return
        # A spawned task either continues the trace of the execution
        # that spawned it or roots a new trace (top-level spawns).
        if task.trace_ctx is not None:
            tid, parent = task.trace_ctx[0], task.trace_ctx[1]
        else:
            tid, parent = self._spans.new_trace_id(), 0
        prev_ctx = k.trace_ctx
        sampled = tid & 1
        sid = self._spans.new_span_id() if sampled else 0
        k.trace_ctx = (tid, sid)
        t0 = self._node.now
        try:
            ctx = Context(k, None, None, method_name=task.fn_name)
            result = fn(ctx, *task.args)
            if inspect.isgenerator(result):
                k.driver.start(None, None, result)
        finally:
            k.trace_ctx = prev_ctx
            t1 = self._node.now
            if sampled:
                self._spans.record(
                    tid, sid, parent, f"task {task.fn_name}", "task",
                    k.node_id, t0, t1,
                )
            else:
                self._spans.elided += 1
            self._rec_exec(t1 - t0)

    def run_group_batch(self, batch: GroupBatch) -> None:
        """Collective scheduling of one broadcast message: the group's
        local members form a quantum sharing a single decode (§6.4)."""
        k = self.kernel
        k.node.charge(k.costs.dispatch_us)
        k.stats.incr("exec.group_batches")
        for actor in batch.members:
            msg = ActorMessage(batch.selector, batch.args, sender_node=k.node_id,
                               sent_at=k.node.now)
            if actor.migrating:
                # The member left this node mid-broadcast; route the
                # copy through the normal machinery.
                self.kernel.delivery.route_via_descriptor(actor.key, msg)
                continue
            k.node.charge(k.costs.collective_dispatch_us)
            self._dispatch(actor, msg, lookup=False)

    # ------------------------------------------------------------------
    # dispatch core
    # ------------------------------------------------------------------
    def _dispatch(self, actor: Actor, msg: ActorMessage, *, lookup: bool) -> None:
        """Find the method, enforce constraints, invoke."""
        k = self.kernel
        if lookup:
            self._node.charge(self._method_lookup_us)
        fn = actor.behavior.lookup(msg.selector)
        if self._is_disabled(actor, msg):
            k.node.charge(k.costs.pending_queue_us)
            k.stats.incr("exec.deferred")
            actor.mailbox.defer(msg)
            return
        self.invoke(actor, msg, fn, depth=0)

    def _is_disabled(self, actor: Actor, msg: ActorMessage) -> bool:
        k = self.kernel
        constraints = actor.behavior.constraints
        if not constraints.has_constraints(msg.selector):
            return False
        k.node.charge(k.costs.constraint_check_us)
        return constraints.is_disabled(msg.selector, actor.state, msg)

    def invoke(
        self,
        actor: Actor,
        msg: ActorMessage,
        fn: Callable,
        depth: int,
        *,
        drain: bool = True,
    ) -> None:
        """Run one method body to completion (the actor processes the
        message atomically).  Generator bodies are handed to the
        call/return driver; non-None returns auto-reply to requests."""
        k = self.kernel
        self._node.charge(self._invoke_us)
        # Causal tracing: the execute span covers the method body *and*
        # everything it triggers synchronously (replies, drained pending
        # messages, a migration request), so those all parent here.
        tid = msg.trace_id if self._spans_on else 0
        if tid:
            prev_ctx = k.trace_ctx
            # Unsampled traces (even ID) still set the execution
            # context — spans triggered inside the body must inherit
            # the trace and its head decision — but allocate no span ID
            # and record no span; histograms stay exact either way.
            sampled = tid & 1
            sid = self._spans.new_span_id() if sampled else 0
            k.trace_ctx = (tid, sid)
            t0 = self._node.now
        ctx = Context(k, actor, msg, method_name=msg.selector, depth=depth)
        try:
            actor.busy = True
            try:
                result = fn(actor.state, ctx, *msg.args)
            finally:
                actor.busy = False
            actor.messages_processed += 1
            self._c_messages.n += 1
            if inspect.isgenerator(result):
                k.driver.start(actor, msg, result)
            elif (
                msg.reply_to is not None
                and not ctx._replied
                and result is not None
            ):
                k.reply_router.send_reply(msg.reply_to, result)
            if drain and actor.mailbox.pending_count and not actor.migrating:
                self.drain_pending(actor)
            if ctx._migrate_to is not None and ctx._migrate_to != k.node_id:
                k.migration.start(actor, ctx._migrate_to)
        finally:
            if tid:
                k.trace_ctx = prev_ctx
                t1 = self._node.now
                if sampled:
                    self._spans.record(
                        tid, sid, msg.span_id,
                        f"{actor.behavior.name}.{msg.selector}", "execute",
                        k.node_id, t0, t1,
                    )
                else:
                    self._spans.elided += 1
                # Raw histogram samples: these run for every traced
                # message, sampled or not — exact histograms are the
                # contract — so each is one bound append; bucketing is
                # batch-folded (repro.stats).  Negative delivery
                # latencies (sender's virtual clock ran ahead) clamp
                # to zero at fold time.
                self._stage_delivery(t0 - msg.sent_at)
                self._stage_exec(t1 - t0)
                n = self._fold_countdown - 1
                if n:
                    self._fold_countdown = n
                else:
                    self._fold_countdown = Histogram.FOLD_AT
                    self._h_delivery._fold()
                    self._h_exec._fold()
                    self._h_mailbox._fold()

    # ------------------------------------------------------------------
    # pending queue re-examination (§6.1)
    # ------------------------------------------------------------------
    def drain_pending(self, actor: Actor) -> None:
        """Whenever a method execution completes, dispatch any pending
        messages that have become enabled, one by one, before the next
        actor is scheduled.  Each dispatch may enable further pending
        messages, so we loop until a full pass makes no progress."""
        k = self.kernel
        progress = True
        while progress and not actor.migrating:
            progress = False
            pending = actor.mailbox.take_pending()
            while pending:
                msg = pending.popleft()
                if actor.migrating:
                    actor.mailbox.defer(msg)
                    continue
                if self._is_disabled(actor, msg):
                    actor.mailbox.defer(msg)
                    continue
                k.node.charge(k.costs.dispatch_us + k.costs.method_lookup_us)
                fn = actor.behavior.lookup(msg.selector)
                k.stats.incr("exec.pending_dispatched")
                # drain=False: this loop is the drain.
                self.invoke(actor, msg, fn, depth=0, drain=False)
                progress = True

    # ------------------------------------------------------------------
    # compiler-controlled inline invocation (§6.3)
    # ------------------------------------------------------------------
    def try_inline(
        self,
        actor: Actor,
        msg: ActorMessage,
        *,
        plan_kind: str,
        depth: int,
    ) -> bool:
        """Attempt a stack-based direct invocation on a local receiver.

        ``plan_kind`` is the compiler's verdict for the send site:
        ``"static"`` (unique receiver type inferred — the method is
        known, only the locality + enabled check runs) or ``"lookup"``
        (several possible types — a method-lookup precedes the call).
        Returns False when the generic buffered path must be used.
        """
        k = self.kernel
        sched = k.config.scheduler
        if not sched.static_dispatch:
            return False
        if depth >= sched.max_inline_depth or self.inline_depth >= sched.max_inline_depth:
            k.stats.incr("exec.inline_depth_overflow")
            self._c_inline_refused.n += 1
            return False
        if actor.busy or actor.migrating:
            self._c_inline_refused.n += 1
            return False
        # The locality-check routine also verifies the receiver is
        # enabled for this message (paper §6.3).
        if self._is_disabled(actor, msg):
            self._c_inline_refused.n += 1
            return False
        if plan_kind == "lookup":
            k.node.charge(k.costs.method_lookup_us)
            self._c_inline_lookup.n += 1
        else:
            self._c_inline_static.n += 1
        fn = actor.behavior.lookup(msg.selector)
        self.inline_depth += 1
        try:
            self.invoke(actor, msg, fn, depth=depth + 1)
        finally:
            self.inline_depth -= 1
        return True

    # ------------------------------------------------------------------
    # become
    # ------------------------------------------------------------------
    def do_become(self, actor: Actor, cls, args: tuple) -> None:
        k = self.kernel
        beh: Behavior = k.behavior_for(cls)
        state = beh.make_state(args)
        k.node.charge(k.costs.become_us)
        k.stats.incr("exec.becomes")
        actor.become(beh, state)
