"""Intra-node scheduling (§3, §6.3).

The dispatcher provides the data structures for scheduling; the actual
scheduling is delegated to the executing entities themselves — when an
item completes, the slice loop pulls the next item and yields control
to it, with no context switch (stack-based scheduling).  Three kinds of
item sit in the ready queue:

- an :class:`~repro.actors.actor.Actor` with deliverable mail (one
  message is processed per slice, round-robin);
- a :class:`FireContinuation` — a completed join continuation;
- a :class:`Task` — a lightweight unit used when the compiler has
  optimised actor creation away (purely functional behaviours, §7.2)
  and by the work-stealing load balancer;
- a :class:`GroupBatch` — a broadcast quantum scheduled collectively
  (§6.4).

The queue also answers *steal* requests from the load balancer: tasks
are handed over wholesale, actors are migrated.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional, TYPE_CHECKING, Union

from repro.actors.actor import Actor
from repro.actors.continuations import JoinContinuation
from repro.errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.kernel import Kernel


class FireContinuation:
    """A join continuation whose counter reached zero."""

    __slots__ = ("cont",)
    stealable = False

    def __init__(self, cont: JoinContinuation) -> None:
        self.cont = cont


class Task:
    """A lightweight, relocatable unit of work.

    ``fn_name`` indexes the kernel's task registry (loaded with the
    program image, so the name resolves on every node — which is what
    makes tasks stealable across nodes).
    """

    __slots__ = ("fn_name", "args", "trace_ctx")
    stealable = True

    def __init__(self, fn_name: str, args: tuple,
                 trace_ctx: Optional[tuple] = None) -> None:
        self.fn_name = fn_name
        self.args = args
        #: Causal context the spawn was issued under (a
        #: :class:`repro.tracectx.TraceCtx`), carried so the stolen or
        #: remotely spawned task parents to the spawning execution.
        #: The trace ID's low bit is the head-sampling verdict, so a
        #: stolen task keeps its trace's keep-or-elide decision with
        #: no extra field.
        self.trace_ctx = trace_ctx

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task({self.fn_name}{self.args!r})"


class GroupBatch:
    """Local members of a group, scheduled collectively for one
    broadcast message (quasi-dynamic scheduling, §6.4)."""

    __slots__ = ("members", "selector", "args")
    stealable = False

    def __init__(self, members: List[Actor], selector: str, args: tuple) -> None:
        self.members = members
        self.selector = selector
        self.args = args


Schedulable = Union[Actor, FireContinuation, Task, GroupBatch]


class Dispatcher:
    """Per-node ready queue driving the slice loop."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.ready: Deque[Schedulable] = deque()
        self._slice_pending = False
        #: Called (once) each time the queue drains empty.
        self.idle_callbacks: List[Callable[[], None]] = []
        self.slices_run = 0
        # Hot-path bindings (one slice event per ready item): the node
        # and the scheduler params object, resolved once.
        self._node = kernel.node
        self._sched = kernel.config.scheduler

    # ------------------------------------------------------------------
    # enqueueing
    # ------------------------------------------------------------------
    def enqueue_actor(self, actor: Actor) -> None:
        """Schedule an actor that has deliverable mail.  Idempotent
        while the actor is already queued."""
        if actor.scheduled or actor.migrating:
            return
        actor.scheduled = True
        self.ready.append(actor)
        self._ensure_slice()

    def enqueue(self, item: Schedulable) -> None:
        if isinstance(item, Actor):
            self.enqueue_actor(item)
            return
        self.ready.append(item)
        self._ensure_slice()

    # ------------------------------------------------------------------
    # the slice loop
    # ------------------------------------------------------------------
    def _ensure_slice(self) -> None:
        if not self._slice_pending:
            self._slice_pending = True
            # No-handle fast path: one heap entry, no closure/Event.
            self._node.post_now(self._slice)

    def _slice(self) -> None:
        self._slice_pending = False
        if not self.ready:
            self._notify_idle()
            return
        # Stack-based scheduling runs the newest item (depth-first);
        # queue-based runs the oldest (breadth-first).
        if self._sched.stack_scheduling:
            item = self.ready.pop()
        else:
            item = self.ready.popleft()
        self.slices_run += 1
        ex = self.kernel.execution
        if isinstance(item, Actor):
            item.scheduled = False
            ex.actor_slice(item)
        elif isinstance(item, FireContinuation):
            ex.fire_continuation(item.cont)
        elif isinstance(item, Task):
            ex.run_task(item)
        elif isinstance(item, GroupBatch):
            ex.run_group_batch(item)
        else:  # pragma: no cover - protocol guard
            raise SchedulingError(f"unknown schedulable {item!r}")
        if self.ready:
            self._ensure_slice()
        else:
            self._notify_idle()

    def _notify_idle(self) -> None:
        for cb in self.idle_callbacks:
            cb()

    # ------------------------------------------------------------------
    # stealing interface (receiver-initiated load balancing)
    # ------------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        return len(self.ready)

    def surplus(self) -> int:
        """Number of stealable items beyond the one we're working on."""
        return sum(1 for item in self.ready if self._is_stealable(item))

    @staticmethod
    def _is_stealable(item: Schedulable) -> bool:
        if isinstance(item, Actor):
            # An idle, quiescent actor with queued mail can be migrated.
            return not item.busy and not item.migrating
        return bool(getattr(item, "stealable", False))

    def steal_one(self, *, from_tail: bool = True) -> Optional[Schedulable]:
        """Remove and return one stealable item (None if there is none
        to spare).  Tail-stealing takes the oldest work, which for
        divide-and-conquer trees is the biggest grain."""
        indices = (
            range(len(self.ready) - 1, -1, -1)
            if from_tail
            else range(len(self.ready))
        )
        for i in indices:
            item = self.ready[i]
            if self._is_stealable(item):
                del self.ready[i]
                if isinstance(item, Actor):
                    item.scheduled = False
                return item
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dispatcher(n{self.kernel.node_id}, ready={len(self.ready)})"
