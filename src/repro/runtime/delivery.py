"""The message send and delivery algorithm (§4, Fig. 3).

Sender side: consult the *local* name server only.  A hit with a
cached remote descriptor address sends directly (the receiving node
skips its own hash lookup); a miss allocates a best-guess descriptor
pointing at the node encoded in the mail address itself and routes the
message there.  Local receivers take either the compiler's inline
path or the generic buffered path.

Receiver side (node-manager role): a direct-addressed message
dereferences its descriptor; a keyed message hash-looks-up (and, on a
hit with a local actor, sends the descriptor's memory address back to
the sender's node to cache).  Messages for actors that migrated away
trigger the FIR protocol (:mod:`repro.runtime.migration`) rather than
being forwarded wholesale.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from repro.actors.message import ActorMessage, ReplyTarget
from repro.am.messages import message_nbytes
from repro.errors import UnknownActorError
from repro.runtime.names import ActorRef, AddrKind, DescState, LocalityDescriptor, MailAddress
from repro.tracectx import TraceCtx

if TYPE_CHECKING:  # pragma: no cover
    from repro.actors.actor import Actor
    from repro.runtime.context import Context
    from repro.runtime.kernel import Kernel


class DeliveryService:
    """Implements Fig. 3 for one kernel."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        # Hot-path bindings: every send crosses this service, so the
        # node, name table, cost scalars and counter cells are resolved
        # once here instead of per message.
        self._node = kernel.node
        self._table = kernel.table
        costs = kernel.costs
        self._hash_us = costs.nametable_hash_us
        self._locality_us = costs.locality_check_us
        self._lazy_alloc_us = costs.descriptor_alloc_us + costs.nametable_insert_us
        self._marshal_us = costs.marshal_us
        stats = kernel.stats
        self._c_lazy_descriptors = stats.cell("names.lazy_descriptors")
        self._c_local_generic = stats.cell("delivery.local_generic")
        self._c_sent_direct = stats.cell("delivery.sent_direct")
        self._c_sent_keyed = stats.cell("delivery.sent_keyed")
        # Causal tracing: one cached flag on the hot path, spans only
        # recorded on traced machines.
        self._spans = kernel.spans
        self._spans_on = bool(kernel.spans.enabled)
        # Span-name caches: one interned "send foo" / "hop foo" string
        # per selector, so sampled sends skip the per-span f-string.
        self._send_names: dict = {}
        self._hop_names: dict = {}

    # ==================================================================
    # sender side
    # ==================================================================
    def locality_check(self, ref: ActorRef):
        """The runtime's locality-check routine, exported to the
        compiler (§6.3): consult the local name table and examine the
        descriptor, using only locally available information.  Returns
        ``(descriptor, is_local)``; the descriptor is lazily allocated
        with the best guess encoded in the address itself."""
        node = self._node
        node.charge(self._hash_us)
        desc = self._table.get(ref.address)
        if desc is None:
            node.charge(self._lazy_alloc_us)
            desc = self._table.alloc(ref.address)
            desc.set_remote(ref.address.home_node())
            self._c_lazy_descriptors.n += 1
        node.charge(self._locality_us)
        return desc, desc.is_local

    def send_message(
        self,
        ref: ActorRef,
        selector: str,
        args: tuple,
        *,
        reply_to: Optional[ReplyTarget] = None,
        sender_actor: Optional["Actor"] = None,
        sender_ctx: Optional["Context"] = None,
        plan_kind: Optional[str] = None,
    ) -> None:
        """``plan_kind`` is an explicit compiler verdict for this send
        site (the generator driver passes the plan of the request's
        split point); when absent, the verdict is derived from the
        sending context."""
        k = self.kernel
        # Name translation happens in the sender's node even when the
        # recipient is local (§4).
        desc, is_local = self.locality_check(ref)

        msg = ActorMessage(selector, args, reply_to,
                           sender_node=k.node_id, sent_at=k.node.now)
        if self._spans_on:
            # Root a new trace, or parent to the execution currently on
            # this CPU (so request chains form one causal tree).
            ctx = k.trace_ctx
            if ctx is not None:
                tid, parent = ctx
            else:
                tid, parent = self._spans.new_trace_id(), 0
            msg.trace_id = tid
            # The head-sampling verdict rides the trace ID's low bit:
            # unsampled sends skip even the span-name construction and
            # propagate span_id 0.
            if tid & 1:
                # The address rides the span raw; exporters repr()
                # attrs lazily, so sampled sends skip the string build.
                name = self._send_names.get(selector)
                if name is None:
                    name = self._send_names[selector] = f"send {selector}"
                msg.span_id = self._spans.span(
                    tid, parent, name, "send", k.node_id,
                    k.node.now, None, ref.address,
                )
            else:
                self._spans.elided += 1

        if is_local:
            actor = desc.actor
            if plan_kind is None:
                plan_kind = self._plan_kind(sender_ctx, selector)
            if plan_kind != "generic":
                depth = sender_ctx.depth if sender_ctx is not None else 0
                if k.execution.try_inline(actor, msg, plan_kind=plan_kind,
                                          depth=depth):
                    return
            self._c_local_generic.n += 1
            k.execution.deliver_local(actor, msg)
            return

        if desc.state in (DescState.IN_TRANSIT, DescState.RESOLVING,
                          DescState.AWAITING_CREATION):
            desc.deferred.append(msg)
            k.stats.incr("delivery.deferred_at_sender")
            return
        if desc.remote_node == k.node_id:
            # Our best guess is ourselves, but the actor is not here:
            # for a locally-born ordinary address that means the actor
            # no longer exists (e.g. it was garbage collected).
            key = ref.address
            if key.kind is AddrKind.ORDINARY and key.node == k.node_id:
                raise UnknownActorError(
                    f"node {k.node_id}: send to reclaimed or never-born "
                    f"actor {key!r}"
                )
            # Alias/group creation still in flight toward this node.
            desc.state = DescState.AWAITING_CREATION
            desc.deferred.append(msg)
            k.stats.incr("delivery.awaiting_creation")
            return
        self.transmit(desc, msg)

    def _plan_kind(self, sender_ctx: Optional["Context"], selector: str) -> str:
        """The compiler's dispatch verdict for this send site."""
        if sender_ctx is None:
            return "generic"
        actor = sender_ctx.actor
        if actor is None:
            # Tasks are compiler-generated code; receiver types of task
            # sends are known to the code generator.
            return "static" if self.kernel.config.scheduler.static_dispatch else "generic"
        compiled = actor.behavior.compiled
        if compiled is None:
            return "generic"
        return compiled.plan_for(sender_ctx.method_name, selector)

    # ------------------------------------------------------------------
    def transmit(self, desc: LocalityDescriptor, msg: ActorMessage) -> None:
        """Send to the descriptor's best-guess remote location."""
        k = self.kernel
        self._node.charge(self._marshal_us)
        dst = desc.remote_node
        key = desc.key
        use_cached = desc.has_cached_addr and k.config.descriptor_caching
        if use_cached:
            handler = "deliver_direct"
            payload = (desc.remote_addr, msg.selector, msg.args, msg.reply_to,
                       msg.sender_node)
            self._c_sent_direct.n += 1
        else:
            handler = "deliver_keyed"
            payload = (key, msg.selector, msg.args, msg.reply_to,
                       msg.sender_node)
            self._c_sent_keyed.n += 1
        nbytes = message_nbytes(payload, k.network_params.packet_bytes)
        # tuple.__new__ skips the generated NamedTuple constructor: this
        # site builds a TraceCtx for every traced remote send, and the
        # bare allocation is less than half the cost.
        tctx = (
            tuple.__new__(TraceCtx, (msg.trace_id, msg.span_id,
                                     self._node.now))
            if self._spans_on and msg.trace_id else None
        )
        if nbytes >= k.config.bulk_threshold_bytes:
            k.stats.incr("delivery.bulk")
            k.bulk.send_bulk(dst, handler, payload, nbytes, trace_ctx=tctx)
        else:
            k.endpoint.send(dst, handler, payload, nbytes=nbytes,
                            trace_ctx=tctx)

    # ==================================================================
    # receiver side (node-manager role)
    # ==================================================================
    def on_deliver_keyed(
        self,
        src: int,
        key: MailAddress,
        selector: str,
        args: tuple,
        reply_to: Optional[ReplyTarget],
        origin: int,
        trace_ctx: Optional[TraceCtx] = None,
    ) -> None:
        k = self.kernel
        self._node.charge(self._hash_us)
        msg = ActorMessage(selector, args, reply_to, sender_node=origin)
        # Adopt the arriving wire context (inlined on both receive
        # paths — this runs once per remote delivery): the trace ID and
        # true send time attach to *every* traced message, sampled or
        # not, so the delivery histogram stays exact at any rate; the
        # hop span itself follows the head-sampling bit.
        if trace_ctx is not None and self._spans_on:
            tid = trace_ctx.trace_id
            msg.trace_id = tid
            msg.sent_at = trace_ctx.sent_at
            if tid & 1:
                name = self._hop_names.get(selector)
                if name is None:
                    name = self._hop_names[selector] = f"hop {selector}"
                msg.span_id = self._spans.span(
                    tid, trace_ctx.parent_span, name,
                    "hop", k.node_id, trace_ctx.sent_at, self._node.now, src,
                )
            else:
                self._spans.elided += 1
        desc = self._table.get(key)
        if desc is None:
            desc = self._admit_unknown_key(key)
            if desc is None:
                return  # message already re-routed toward its home
        if desc.is_local:
            self.deliver_here(desc, msg)
            if (
                k.config.descriptor_caching
                and origin >= 0
                and origin != k.node_id
            ):
                # Return the descriptor's memory address for caching;
                # subsequent sends skip this node's hash lookup (§4.1).
                k.endpoint.send(
                    origin, "cache_addr", (key, k.node_id, desc.addr),
                    trace_ctx=(
                        TraceCtx(msg.trace_id, msg.span_id, self._node.now)
                        if msg.trace_id else None
                    ),
                    expendable=True,
                )
            return
        self._route_nonlocal(desc, msg)

    def on_deliver_direct(
        self,
        src: int,
        addr: int,
        selector: str,
        args: tuple,
        reply_to: Optional[ReplyTarget],
        origin: int,
        trace_ctx: Optional[TraceCtx] = None,
    ) -> None:
        k = self.kernel
        self._node.charge(k.costs.descriptor_deref_us)
        desc = self._table.by_addr(addr)
        msg = ActorMessage(selector, args, reply_to, sender_node=origin)
        # Wire-context adoption, inlined (see on_deliver_keyed).
        if trace_ctx is not None and self._spans_on:
            tid = trace_ctx.trace_id
            msg.trace_id = tid
            msg.sent_at = trace_ctx.sent_at
            if tid & 1:
                name = self._hop_names.get(selector)
                if name is None:
                    name = self._hop_names[selector] = f"hop {selector}"
                msg.span_id = self._spans.span(
                    tid, trace_ctx.parent_span, name,
                    "hop", k.node_id, trace_ctx.sent_at, self._node.now, src,
                )
            else:
                self._spans.elided += 1
        if desc.is_local:
            self.deliver_here(desc, msg)
            if (
                k.config.descriptor_caching
                and origin != src
                and 0 <= origin != k.node_id
            ):
                # The message was relayed here (FIR flush or forward):
                # teach the *original* sender our descriptor address so
                # its best guess converges to the truth.
                k.endpoint.send(
                    origin, "cache_addr", (desc.key, k.node_id, desc.addr),
                    trace_ctx=(
                        TraceCtx(msg.trace_id, msg.span_id, self._node.now)
                        if msg.trace_id else None
                    ),
                    expendable=True,
                )
            return
        self._route_nonlocal(desc, msg)

    def _admit_unknown_key(self, key: MailAddress) -> Optional[LocalityDescriptor]:
        """Handle a keyed message for an actor this node has never
        heard of.  Returns a descriptor to route with, or None if the
        message was forwarded toward its home node."""
        k = self.kernel
        home = key.home_node()
        if home == k.node_id:
            if key.kind is AddrKind.ORDINARY:
                raise UnknownActorError(
                    f"node {k.node_id}: message for unknown locally-born "
                    f"actor {key!r}"
                )
            # An alias/group-member message raced ahead of the creation
            # request; park deliveries until the creation lands.
            k.node.charge(k.costs.descriptor_alloc_us + k.costs.nametable_insert_us)
            desc = k.table.alloc(key)
            desc.state = DescState.AWAITING_CREATION
            k.stats.incr("delivery.awaiting_creation")
            return desc
        # Defensive fallback: route toward the home node.
        k.node.charge(k.costs.descriptor_alloc_us + k.costs.nametable_insert_us)
        desc = k.table.alloc(key)
        desc.set_remote(home)
        return desc

    def _route_nonlocal(self, desc: LocalityDescriptor, msg: ActorMessage) -> None:
        k = self.kernel
        if desc.state in (DescState.IN_TRANSIT, DescState.RESOLVING,
                          DescState.AWAITING_CREATION):
            desc.deferred.append(msg)
            k.stats.incr("delivery.deferred_at_manager")
            return
        if desc.remote_node == k.node_id:
            # A self-pointing forward: a locally-born ordinary actor
            # that no longer exists (reclaimed), or a creation that
            # has not landed yet.
            key = desc.key
            if key is not None and key.kind is AddrKind.ORDINARY and key.node == k.node_id:
                raise UnknownActorError(
                    f"node {k.node_id}: message for reclaimed or "
                    f"never-born actor {key!r}"
                )
            desc.state = DescState.AWAITING_CREATION
            desc.deferred.append(msg)
            k.stats.incr("delivery.awaiting_creation")
            return
        # REMOTE: the actor migrated away.  Do not forward the whole
        # message — locate it with an FIR and hold the message (§4.3).
        k.migration.queue_for_fir(desc, msg)

    # ------------------------------------------------------------------
    def deliver_here(self, desc: LocalityDescriptor, msg: ActorMessage) -> None:
        self.kernel.execution.deliver_local(desc.actor, msg)

    def route_via_descriptor(self, key: MailAddress, msg: ActorMessage) -> None:
        """Route a locally generated message by key through the normal
        machinery (used for stragglers, e.g. broadcast copies whose
        member is mid-migration)."""
        k = self.kernel
        desc = k.table.get(key)
        if desc is None:
            k.node.charge(k.costs.descriptor_alloc_us + k.costs.nametable_insert_us)
            desc = k.table.alloc(key)
            desc.set_remote(key.home_node())
        if desc.is_local:
            self.deliver_here(desc, msg)
        else:
            self._route_nonlocal(desc, msg)

    # ------------------------------------------------------------------
    def flush_deferred(self, desc: LocalityDescriptor) -> None:
        """Re-route every message deferred on ``desc`` according to its
        new state (LOCAL after arrival/creation; REMOTE after an ack or
        FIR reply resolved the location)."""
        if not desc.deferred:
            return
        k = self.kernel
        msgs, desc.deferred = desc.deferred, []
        k.stats.incr("delivery.flushed", len(msgs))
        for msg in msgs:
            if desc.is_local:
                self.deliver_here(desc, msg)
            elif desc.state is DescState.REMOTE:
                self.transmit(desc, msg)
            else:
                # Still unresolved (e.g. immediately re-migrated).
                desc.deferred.append(msg)

    # ------------------------------------------------------------------
    def on_cache_addr(self, src: int, key: MailAddress, node: int, addr: int,
                      trace_ctx: Optional[TraceCtx] = None) -> None:
        """Install location information learned from another node —
        always treated as a best guess, never overriding local truth."""
        k = self.kernel
        if not k.config.descriptor_caching:
            return
        if trace_ctx is not None and self._spans_on:
            if trace_ctx.trace_id & 1:
                self._spans.span(
                    trace_ctx.trace_id, trace_ctx.parent_span,
                    f"backpatch {key}", "backpatch", k.node_id,
                    self._node.now, None, node,
                )
            else:
                self._spans.elided += 1
        desc = k.table.get(key)
        if desc is None:
            k.node.charge(k.costs.descriptor_alloc_us + k.costs.nametable_insert_us)
            desc = k.table.alloc(key)
            desc.set_remote(node, addr)
            return
        if desc.state is DescState.REMOTE:
            desc.set_remote(node, addr)
            k.stats.incr("names.cached_addrs")
