"""Reference extraction for the actor garbage collector.

Walks arbitrary Python state (actor fields, queued messages) and
collects every :class:`~repro.runtime.names.ActorRef` and
:class:`~repro.runtime.groups.GroupRef` reachable through standard
containers, dataclasses and object ``__dict__``s.  Cycle-safe and
depth-capped; opaque leaf objects (NumPy arrays, scalars) are skipped
cheaply.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Set, Tuple

import numpy as np

from repro.runtime.groups import GroupRef
from repro.runtime.names import ActorRef

#: Containers deeper than this are not scanned (guards pathological
#: structures; real actor state is shallow).
MAX_DEPTH = 32

_LEAF_TYPES = (
    type(None), bool, int, float, complex, str, bytes, bytearray,
    np.ndarray, np.generic,
)


def extract_refs(obj: Any) -> Tuple[List[ActorRef], List[GroupRef]]:
    """All actor and group references reachable from ``obj``."""
    actor_refs: List[ActorRef] = []
    group_refs: List[GroupRef] = []
    seen: Set[int] = set()
    stack: List[Tuple[Any, int]] = [(obj, 0)]
    while stack:
        value, depth = stack.pop()
        if isinstance(value, _LEAF_TYPES):
            continue
        if isinstance(value, ActorRef):
            actor_refs.append(value)
            continue
        if isinstance(value, GroupRef):
            group_refs.append(value)
            continue
        if depth >= MAX_DEPTH:
            continue
        oid = id(value)
        if oid in seen:
            continue
        seen.add(oid)
        for child in _children(value):
            stack.append((child, depth + 1))
    return actor_refs, group_refs


def _children(value: Any) -> Iterator[Any]:
    if isinstance(value, dict):
        yield from value.keys()
        yield from value.values()
        return
    if isinstance(value, (list, tuple, set, frozenset)):
        yield from value
        return
    # Messages, dataclasses, plain objects: walk their attribute dict
    # plus declared slots.
    d = getattr(value, "__dict__", None)
    if d is not None:
        yield from d.values()
    slots = getattr(type(value), "__slots__", None)
    if slots:
        for name in slots:
            try:
                yield getattr(value, name)
            except AttributeError:
                continue
