"""The node manager: the kernel's system (meta-level) actor (§3).

The node manager delivers messages sent by remote actors to local
actors, creates actors in response to remote creation requests, serves
the FIR/migration protocols, answers steal polls, and dynamically
links program images.  A request to a node manager arrives as an
active message: the handler "steals the processor" from whatever actor
is executing (our engine serialises them on the node's CPU), processes
the request, and resumes — no context switch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.kernel import Kernel


class NodeManager:
    """Registers and owns every kernel-level active-message handler."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        ep = kernel.endpoint
        # message delivery (§4)
        ep.register("deliver_keyed", self._deliver_keyed)
        ep.register("deliver_direct", self._deliver_direct)
        # cache_addr installs a best guess and never overrides local
        # truth, so duplicated or replayed copies are harmless — that
        # is what lets senders mark it expendable under fault injection.
        ep.register("cache_addr", kernel.delivery.on_cache_addr,
                    idempotent=True)
        # creation (§5)
        ep.register("create_remote", kernel.creation.on_create_remote)
        ep.register("create_request", kernel.creation.on_create_request)
        ep.register("task_spawn", kernel.creation.on_task_spawn)
        # call/return (§6.2)
        ep.register("reply", kernel.reply_router.on_reply)
        # migration + FIR (§4.3)
        ep.register("fir", kernel.migration.on_fir)
        ep.register("fir_reply", kernel.migration.on_fir_reply)
        ep.register("migrate_arrive", kernel.migration.on_migrate_arrive)
        ep.register("migrate_ack", kernel.migration.on_migrate_ack)
        # load balancing (§7.2)
        ep.register("steal_req", self._steal_req)
        ep.register("steal_grant", kernel.balancer.on_steal_grant)
        ep.register("steal_deny", kernel.balancer.on_steal_deny)
        # groups (§6.4) — these arrive via the spanning tree
        ep.register("grp_create", kernel.groups.on_grp_create)
        ep.register("grp_bcast", kernel.groups.on_grp_bcast)
        # program loading (§3)
        ep.register("load_program", self._load_program)

    # Thin adapters keep wire argument order explicit in one place.
    # ``trace_ctx`` is the optional trailing TraceCtx appended to the
    # payload by Endpoint.send on traced machines.
    def _deliver_keyed(self, src, key, selector, args, reply_to, origin,
                       trace_ctx=None):
        self.kernel.delivery.on_deliver_keyed(
            src, key, selector, args, reply_to, origin, trace_ctx
        )

    def _deliver_direct(self, src, addr, selector, args, reply_to, origin,
                        trace_ctx=None):
        self.kernel.delivery.on_deliver_direct(
            src, addr, selector, args, reply_to, origin, trace_ctx
        )

    def _steal_req(self, src):
        self.kernel.balancer.on_steal_req(src)

    def _load_program(self, src, program_name):
        self.kernel.link_program(program_name)
