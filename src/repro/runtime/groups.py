"""Actor groups: ``grpnew`` and broadcast (§2.2, §6.4).

``grpnew`` creates a group of actors with the same behaviour template
and returns a unique identifier usable immediately — creation fans out
over the broadcast spanning tree and member addresses are computed
deterministically from the group's placement, so no round trip is
needed (the same latency-hiding idea as aliases).

A message broadcast to the group is replicated and a copy delivered to
each member.  On each node the local members are scheduled
*collectively* (one quantum per broadcast, amortising dispatch — the
paper's analogue of TAM's quasi-dynamic scheduling) unless collective
scheduling is disabled.
"""

from __future__ import annotations

import inspect
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING, Type

from repro.actors.actor import Actor
from repro.actors.message import ActorMessage
from repro.errors import GroupError
from repro.runtime.dispatcher import GroupBatch
from repro.runtime.names import ActorRef, AddrKind, DescState, MailAddress
from repro.tracectx import TraceCtx

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.kernel import Kernel

#: Globally unique group identifier: (creator node, creator-local seq).
GroupId = Tuple[int, int]


def place_cyclic(index: int, size: int, num_nodes: int) -> int:
    """Cyclic mapping: member i lives on node i mod P."""
    return index % num_nodes

def place_block(index: int, size: int, num_nodes: int) -> int:
    """Block mapping: members are split into P contiguous blocks."""
    return (index * num_nodes) // size


PLACEMENTS: Dict[str, Callable[[int, int, int], int]] = {
    "cyclic": place_cyclic,
    "block": place_block,
}


@dataclass(frozen=True)
class GroupRef:
    """Handle on a group; computes member addresses locally."""

    group_id: GroupId
    size: int
    placement: str
    num_nodes: int

    WIRE_BYTES = 16

    def home_of(self, index: int) -> int:
        if not (0 <= index < self.size):
            raise GroupError(f"member {index} outside group of {self.size}")
        return PLACEMENTS[self.placement](index, self.size, self.num_nodes)

    def member(self, index: int) -> ActorRef:
        """The mail address of member ``index`` — computable on any
        node with no communication."""
        home = self.home_of(index)
        return ActorRef(MailAddress(
            AddrKind.GROUP, self.group_id[0], self.group_id[1],
            aux=index, home=home,
        ))

    def members(self) -> List[ActorRef]:
        return [self.member(i) for i in range(self.size)]

    def local_indices(self, node: int) -> List[int]:
        return [i for i in range(self.size) if self.home_of(i) == node]


def _member_args(behavior, args: tuple, index: int, size: int) -> tuple:
    """Pass ``(index, size)`` to member constructors that declare room
    for them (the documented grpnew convention); constructors that
    only take the shared args are used as-is, so ordinary behaviours
    can be grouped too."""
    try:
        inspect.signature(behavior.cls).bind(*args, index, size)
    except TypeError:
        return args
    return args + (index, size)


class GroupManager:
    """Per-kernel group bookkeeping + the grpnew/broadcast protocols."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self._spans = kernel.spans
        self._spans_on = bool(kernel.spans.enabled)
        self._seq = itertools.count(1)
        #: group id -> list of (member index, actor) living on this node
        self.local_members: Dict[GroupId, List[Tuple[int, Actor]]] = {}
        #: group id -> GroupRef (known on every node after grp_create)
        self.known: Dict[GroupId, GroupRef] = {}

    # ------------------------------------------------------------------
    def grpnew(
        self, cls: Type, n: int, args: tuple, *, placement: str = "cyclic"
    ) -> GroupRef:
        k = self.kernel
        if n < 1:
            raise GroupError(f"grpnew of {n} members")
        if placement not in PLACEMENTS:
            raise GroupError(
                f"unknown placement {placement!r}; choose from {sorted(PLACEMENTS)}"
            )
        behavior = k.behavior_for(cls)
        gid: GroupId = (k.node_id, next(self._seq))
        group = GroupRef(gid, n, placement, k.runtime.num_nodes)
        k.node.charge(k.costs.marshal_us)
        k.stats.incr("groups.created")
        tctx = None
        if self._spans_on:
            c = k.trace_ctx
            tid, parent = c if c is not None else (self._spans.new_trace_id(), 0)
            sid = self._spans.span(
                tid, parent, f"grpnew {gid}", "grp.create", k.node_id,
                k.node.now, None, n,
            )
            if sid:
                tctx = TraceCtx(tid, sid, k.node.now)
        # Fan the creation out over the spanning tree; the local
        # handler runs immediately at the root.
        k.runtime.multicaster.multicast(
            k.endpoint, "grp_create", (gid, behavior.name, n, placement, args),
            trace_ctx=tctx,
        )
        return group

    def on_grp_create(
        self, src: int, gid: GroupId, behavior_name: str, n: int,
        placement: str, args: tuple, trace_ctx: Optional[TraceCtx] = None,
    ) -> None:
        k = self.kernel
        if trace_ctx is not None and self._spans_on:
            self._spans.span(
                trace_ctx.trace_id, trace_ctx.parent_span,
                f"grp serve {gid}", "grp.serve", k.node_id,
                trace_ctx.sent_at, k.node.now, src,
            )
        behavior = k.behavior_for(behavior_name)
        group = GroupRef(gid, n, placement, k.runtime.num_nodes)
        if gid in self.known:
            raise GroupError(f"duplicate grp_create for {gid}")
        self.known[gid] = group
        members: List[Tuple[int, Actor]] = []
        costs = k.costs
        for index in group.local_indices(k.node_id):
            k.node.charge(
                costs.descriptor_alloc_us + costs.nametable_insert_us
                + costs.create_state_us + costs.group_register_us
            )
            key = MailAddress(AddrKind.GROUP, gid[0], gid[1],
                              aux=index, home=k.node_id)
            desc = k.table.get(key)
            if desc is None:
                desc = k.table.alloc(key)
            state = behavior.make_state(_member_args(behavior, args, index, n))
            actor = Actor(behavior, state, k.node_id, key)
            actor.group = group
            actor.group_index = index
            desc.set_local(actor)
            members.append((index, actor))
            # Messages/FIRs that raced ahead of the creation:
            k.delivery.flush_deferred(desc)
            k.migration._answer_waiting_firs(desc, k.node_id, desc.addr)
        self.local_members[gid] = members
        k.stats.incr("groups.members_created", len(members))

    # ------------------------------------------------------------------
    def broadcast(self, group: GroupRef, selector: str, args: tuple) -> None:
        """Replicate a message to every member of ``group``."""
        k = self.kernel
        k.node.charge(k.costs.marshal_us)
        k.stats.incr("groups.broadcasts")
        tctx = None
        if self._spans_on:
            c = k.trace_ctx
            tid, parent = c if c is not None else (self._spans.new_trace_id(), 0)
            sid = self._spans.span(
                tid, parent, f"bcast {selector}", "bcast.send", k.node_id,
                k.node.now, None, group.size,
            )
            if sid:
                tctx = TraceCtx(tid, sid, k.node.now)
        k.runtime.multicaster.multicast(
            k.endpoint, "grp_bcast", (group.group_id, selector, args),
            trace_ctx=tctx,
        )

    def on_grp_bcast(self, src: int, gid: GroupId, selector: str, args: tuple,
                     trace_ctx: Optional[TraceCtx] = None) -> None:
        k = self.kernel
        k.node.charge(k.costs.mcast_forward_us)
        if trace_ctx is not None and self._spans_on:
            self._spans.span(
                trace_ctx.trace_id, trace_ctx.parent_span,
                f"bcast {selector}", "bcast.deliver", k.node_id,
                trace_ctx.sent_at, k.node.now, src,
            )
        members = self.local_members.get(gid)
        if members is None:
            # We have no members of this group (possible for small
            # groups on large partitions) — nothing to deliver.
            if gid not in self.known:
                raise GroupError(
                    f"broadcast for unknown group {gid} reached node {k.node_id}"
                )
            return
        live = [actor for _, actor in members]
        if not live:
            return
        if k.config.scheduler.collective_broadcast:
            k.dispatcher.enqueue(GroupBatch(live, selector, args))
        else:
            for actor in live:
                msg = ActorMessage(selector, args, sender_node=src,
                                   sent_at=k.node.now)
                k.execution.deliver_local(actor, msg)
