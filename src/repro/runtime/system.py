"""The user-facing runtime facade.

:class:`HalRuntime` boots a partition on the selected execution
backend (``config.backend``: the discrete-event simulator or the
real-time threaded machine), one kernel per processing element, the
spanning-tree multicaster, and the front-end.  External drivers
(examples, tests, benchmarks) use it to load programs, spawn actors,
send messages, perform synchronous calls and run the machine to
quiescence.  The runtime itself only touches the platform interfaces
(:mod:`repro.platform.base`), never a backend module directly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Type, Union

from repro.actors.behavior import behavior_of, is_behavior_class
from repro.am.broadcast import TreeMulticaster
from repro.am.cmam import Endpoint
from repro.config import RuntimeConfig
from repro.errors import DeliveryError, ReproError
from repro.platform import make_machine
from repro.runtime.costmodel import CostModel
from repro.runtime.frontend import FrontEnd
from repro.runtime.kernel import Kernel
from repro.runtime.names import ActorRef, DescState
from repro.runtime.program import HalProgram


class HalRuntime:
    """A booted HAL runtime on a CM-5-like partition (simulated or
    real-time threaded, per ``config.backend``)."""

    def __init__(
        self,
        config: Optional[RuntimeConfig] = None,
        *,
        costs: Optional[CostModel] = None,
        trace: bool = False,
        faults=None,
        backend: Optional[str] = None,
    ) -> None:
        self.config = config or RuntimeConfig()
        self.costs = costs or CostModel()
        self.machine = make_machine(
            self.config, backend=backend, trace=trace, faults=faults
        )
        #: Distributed machines (the mp backend) hold no kernels in
        #: this process: each node's kernel lives in a worker process
        #: and driver operations travel as commands over control pipes.
        self._distributed = bool(getattr(self.machine, "distributed", False))
        self.endpoint_directory: Dict[int, Endpoint] = {}
        self.frontend = FrontEnd(self)
        if self._distributed:
            self.kernels: List[Kernel] = []
            self.machine.start_workers(self.costs)
        else:
            self.kernels = [
                Kernel(self, i) for i in range(self.config.num_nodes)
            ]
            self.multicaster = TreeMulticaster(
                self.machine.topology, self.endpoint_directory
            )
            self.multicaster.install()
            # Quiescence probes: ready-but-unscheduled work sits in the
            # dispatchers, above the platform's view — register one
            # probe per kernel so machine.quiescent() can see it.
            for kernel in self.kernels:
                self.machine.register_work_probe(
                    lambda k=kernel: bool(k.dispatcher.ready)
                )
        self._anon_programs = 0

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.config.num_nodes

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self.machine.now

    @property
    def stats(self):
        return self.machine.stats

    @property
    def trace(self):
        return self.machine.trace

    @property
    def spans(self):
        """The machine's causal span recorder (a null recorder unless
        the runtime was built with ``trace=True``)."""
        return self.machine.spans

    def kernel(self, node: int) -> Kernel:
        if self._distributed:
            raise ReproError(
                "kernels live in worker processes on a distributed "
                "backend; drive the runtime through its public API"
            )
        return self.kernels[node]

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load(self, program: HalProgram) -> None:
        """Load (and HAL-compile) a program image on every node."""
        if self._distributed:
            # Each worker compiles and links its own copy (behaviours
            # and tasks ship by reference, so they must be importable
            # module-level objects).
            self.machine.load_program(program)
            return
        self.frontend.load(program)

    def load_behaviors(self, *classes: Type, tasks: Optional[Dict] = None) -> None:
        """Convenience: wrap loose behaviours into an anonymous program
        and load it."""
        self._anon_programs += 1
        program = HalProgram(f"__anon{self._anon_programs}__")
        for cls in classes:
            program.behavior(cls)
        for name, fn in (tasks or {}).items():
            program.tasks[name] = fn
        self.load(program)

    def _ensure_loaded(self, cls: Type) -> None:
        if not is_behavior_class(cls):
            raise ReproError(f"{cls!r} is not a @behavior class")
        name = behavior_of(cls).name
        if self._distributed:
            if name not in self.machine.loaded_behaviors:
                self.load_behaviors(cls)
            return
        if name not in self.kernels[0].behaviors:
            self.load_behaviors(cls)

    # ------------------------------------------------------------------
    # external driver operations
    # ------------------------------------------------------------------
    def spawn(self, cls: Type, *args: Any, at: int = 0) -> ActorRef:
        """Create an actor from outside the simulation (loads the
        behaviour on demand)."""
        self._ensure_loaded(cls)
        if self._distributed:
            return self.machine.command(at, ("spawn", cls, args))
        kernel = self.kernels[at]
        return kernel.node.bootstrap(
            lambda: kernel.creation.create(cls, args, at=None)
        )

    def spawn_remote(self, cls: Type, *args: Any, at: int, issuing_node: int = 0) -> ActorRef:
        """Issue a remote creation from ``issuing_node`` (exercises the
        alias latency-hiding path)."""
        self._ensure_loaded(cls)
        if self._distributed:
            return self.machine.command(
                issuing_node, ("spawn_remote", cls, args, at)
            )
        kernel = self.kernels[issuing_node]
        return kernel.node.bootstrap(
            lambda: kernel.creation.create(cls, args, at=at)
        )

    def send(self, ref: ActorRef, selector: str, *args: Any, from_node: int = 0) -> None:
        """Inject an asynchronous message from an external driver."""
        if self._distributed:
            self.machine.command(from_node, ("send", ref, selector, args))
            return
        kernel = self.kernels[from_node]
        kernel.node.bootstrap(
            lambda: kernel.delivery.send_message(ref, selector, args)
        )

    def grpnew(self, cls: Type, n: int, *args: Any, placement: str = "cyclic",
               from_node: int = 0):
        """Create an actor group from an external driver."""
        self._ensure_loaded(cls)
        if self._distributed:
            # The issuing worker runs the same grp_create fan-out the
            # in-process kernels do; the spanning-tree messages ride
            # the batched wire frames like any other AM.
            return self.machine.command(
                from_node, ("grpnew", cls, n, args, placement)
            )
        kernel = self.kernels[from_node]
        return kernel.node.bootstrap(
            lambda: kernel.groups.grpnew(cls, n, args, placement=placement)
        )

    def broadcast(self, group, selector: str, *args: Any, from_node: int = 0) -> None:
        if self._distributed:
            self.machine.command(
                from_node, ("broadcast", group, selector, args)
            )
            return
        kernel = self.kernels[from_node]
        kernel.node.bootstrap(
            lambda: kernel.groups.broadcast(group, selector, args)
        )

    def spawn_task(self, fn_name: str, *args: Any, at: int = 0) -> None:
        if self._distributed:
            self.machine.command(at, ("task", fn_name, args))
            return
        kernel = self.kernels[at]
        kernel.node.bootstrap(
            lambda: kernel.creation.spawn_task(fn_name, args, at=None)
        )

    # ------------------------------------------------------------------
    # synchronous call (external request/reply)
    # ------------------------------------------------------------------
    def call(
        self,
        ref: ActorRef,
        selector: str,
        *args: Any,
        from_node: int = 0,
        timeout_us: Optional[float] = None,
    ) -> Any:
        """Send a request and run the simulation until the reply lands.

        This is the external-driver analogue of HAL's ``request``: a
        root join continuation with one slot is allocated on
        ``from_node`` and the simulation advances until it fires.
        """
        if self._distributed:
            reply_id, box = self.machine.new_reply_box()
            self.machine.command(
                from_node, ("call", ref, selector, args, reply_id)
            )
        else:
            kernel = self.kernels[from_node]
            box = []

            def make_request() -> None:
                from repro.actors.message import ReplyTarget

                def fire(cont) -> None:
                    box.append(cont.values()[0])
                    kernel.continuations.discard(cont.cont_id)

                cont = kernel.continuations.new(1, fire, created_at=kernel.node.now)
                target = ReplyTarget(kernel.node_id, cont.cont_id, 0)
                kernel.delivery.send_message(ref, selector, args, reply_to=target)

            kernel.node.bootstrap(make_request)
        self.run(until=timeout_us, stop_when=lambda: bool(box))
        if not box:
            raise DeliveryError(
                f"call {selector!r} did not complete "
                + (f"within {timeout_us} us" if timeout_us else "(machine quiescent)")
            )
        return box[0]

    def make_collector(self, from_node: int = 0):
        """Allocate a one-slot root continuation for external drivers.

        Returns ``(target, box)``: pass ``target`` wherever a
        ReplyTarget is expected (task spawns, explicit CPS); the reply
        value appears in ``box[0]`` once delivered.
        """
        if self._distributed:
            reply_id, box = self.machine.new_reply_box()
            target = self.machine.command(from_node, ("collector", reply_id))
            return target, box
        kernel = self.kernels[from_node]
        box: List[Any] = []

        def mk():
            from repro.actors.message import ReplyTarget

            def fire(cont) -> None:
                box.append(cont.values()[0])
                kernel.continuations.discard(cont.cont_id)

            cont = kernel.continuations.new(1, fire, created_at=kernel.node.now)
            return ReplyTarget(kernel.node_id, cont.cont_id, 0)

        return kernel.node.bootstrap(mk), box

    # ------------------------------------------------------------------
    # execution control
    # ------------------------------------------------------------------
    def run(self, *, until: Optional[float] = None, stop_when=None) -> float:
        """Run the machine to quiescence, a deadline, or a predicate.
        Returns the platform time reached (simulated µs on the sim
        backend, wall-clock µs on the threaded one)."""
        if self.config.load_balance.enabled:
            for kernel in self.kernels:
                kernel.balancer.kick()
        return self.machine.run(until=until, stop_when=stop_when)

    def quiescent(self) -> bool:
        """True when no work remains anywhere: no in-flight messages
        (steal-protocol and reliability-ack chatter excluded) and no
        runnable work held above the platform.  The machine owns the
        judgement — counter arithmetic plus the work probes registered
        at boot on the in-process backends, the token ring's verdict on
        the distributed one."""
        return self.machine.quiescent()

    def close(self) -> None:
        """Release backend resources (worker threads on the threaded
        backend; a no-op on the simulator).  Idempotent."""
        self.machine.shutdown()

    def __enter__(self) -> "HalRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def collect_garbage(self, roots=None):
        """Run one distributed mark & sweep collection (the machine
        must be quiescent).  ``roots`` are refs the environment still
        holds; see :mod:`repro.runtime.gc`."""
        if self._distributed:
            raise ReproError(
                "distributed GC is not supported on the mp backend yet"
            )
        from repro.runtime.gc import collect_garbage
        return collect_garbage(self, roots)

    # ------------------------------------------------------------------
    # introspection (tests / benchmarks)
    # ------------------------------------------------------------------
    def locate(self, ref: ActorRef) -> int:
        """Ground-truth location of an actor (white-box; scans every
        node — not something a real node could do)."""
        if self._distributed:
            node = self.machine.locate(ref.address)
            if node is None:
                raise DeliveryError(f"{ref!r} is not resident anywhere")
            return node
        for kernel in self.kernels:
            desc = kernel.table.get(ref.address)
            if desc is not None and desc.is_local:
                return kernel.node_id
        raise DeliveryError(f"{ref!r} is not resident anywhere")

    def actor_of(self, ref: ActorRef):
        """Ground-truth actor object behind a ref (white-box)."""
        if self._distributed:
            raise ReproError(
                "actor objects live in worker processes on the mp "
                "backend; only locations and counters cross back"
            )
        return self.kernels[self.locate(ref)].table.get(ref.address).actor

    def state_of(self, ref: ActorRef):
        """Ground-truth state object behind a ref (white-box)."""
        return self.actor_of(ref).state

    def actor_locations(self) -> Dict:
        """Ground-truth ``{mail address: node}`` map of every resident
        actor (white-box; backend-neutral — the parity tests compare
        this across backends)."""
        if self._distributed:
            return self.machine.actor_locations()
        out: Dict = {}
        for kernel in self.kernels:
            for desc in kernel.table:
                if desc.is_local and desc.actor is not None and desc.key is not None:
                    out[desc.key] = kernel.node_id
        return out

    def total_actors(self) -> int:
        if self._distributed:
            return self.machine.total_actors()
        return sum(k.local_actor_count() for k in self.kernels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HalRuntime(P={self.num_nodes}, t={self.now:.1f}us)"
