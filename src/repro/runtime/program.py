"""Program images (§3: dynamic loading of executables).

A :class:`HalProgram` bundles the behaviours and task functions that
form one executable.  The front-end loads programs into every kernel
— the runtime supports concurrent execution of multiple programs on
one partition, and kernels do not discriminate between actors from
different programs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

from repro.actors.behavior import is_behavior_class
from repro.errors import LoadError


class HalProgram:
    """A loadable executable: behaviours + tasks + optional entry."""

    def __init__(self, name: str) -> None:
        if not name:
            raise LoadError("program name must be non-empty")
        self.name = name
        self.behaviors: List[Type] = []
        self.tasks: Dict[str, Callable] = {}
        self.main: Optional[Callable] = None
        #: Filled by the HAL compiler at load time.
        self.compiled = None

    # ------------------------------------------------------------------
    def behavior(self, cls: Type) -> Type:
        """Register a ``@behavior`` class (usable as a decorator)."""
        if not is_behavior_class(cls):
            raise LoadError(
                f"{cls!r} must be decorated with @behavior before being "
                "added to a program"
            )
        if cls not in self.behaviors:
            self.behaviors.append(cls)
        return cls

    def task(self, name: Optional[str] = None):
        """Register a task function (usable as ``@program.task()``)."""
        def wrap(fn: Callable) -> Callable:
            key = name or fn.__name__
            if key in self.tasks and self.tasks[key] is not fn:
                raise LoadError(f"duplicate task {key!r} in program {self.name}")
            self.tasks[key] = fn
            return fn
        return wrap

    def entry(self, fn: Callable) -> Callable:
        """Register the program's main entry point (a driver that
        receives the booted :class:`HalRuntime`)."""
        self.main = fn
        return fn

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HalProgram({self.name}, behaviours="
            f"{[c.__name__ for c in self.behaviors]}, tasks={sorted(self.tasks)})"
        )
