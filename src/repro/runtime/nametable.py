"""The per-node (local) name table (§4.2).

Each kernel maintains its own hash table of locality descriptors; name
translation from a mail address to location information consults only
this table — never another node.  Consistency across tables is
deliberately relaxed: entries for remote actors are best guesses,
corrected lazily by the delivery algorithm and the FIR protocol.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, Optional

from repro.errors import NameServiceError
from repro.runtime.names import LocalityDescriptor, MailAddress


class NameTable:
    """Hash table ``MailAddress -> LocalityDescriptor`` plus the node's
    descriptor "memory" indexed by descriptor address."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._by_key: Dict[MailAddress, LocalityDescriptor] = {}
        self._by_addr: Dict[int, LocalityDescriptor] = {}
        self._next_addr = itertools.count(1)

    # ------------------------------------------------------------------
    def alloc(self, key: Optional[MailAddress] = None) -> LocalityDescriptor:
        """Allocate a fresh descriptor, optionally bound to ``key``."""
        addr = next(self._next_addr)
        desc = LocalityDescriptor(addr, key)
        self._by_addr[addr] = desc
        if key is not None:
            if key in self._by_key:
                raise NameServiceError(
                    f"node {self.node_id}: {key!r} already bound"
                )
            self._by_key[key] = desc
        return desc

    def bind(self, key: MailAddress, desc: LocalityDescriptor) -> None:
        """Bind ``key`` to an existing descriptor (alias registration)."""
        if key in self._by_key:
            raise NameServiceError(f"node {self.node_id}: {key!r} already bound")
        if desc.key is not None and desc.key != key:
            # Rebinding would leave the old _by_key entry pointing at a
            # descriptor whose key no longer matches it; an alias
            # promotion must target an unbound (or same-key) descriptor.
            raise NameServiceError(
                f"node {self.node_id}: descriptor {desc.addr} is already "
                f"bound to {desc.key!r}; cannot rebind it to {key!r}"
            )
        desc.key = key
        self._by_key[key] = desc

    # ------------------------------------------------------------------
    def get(self, key: MailAddress) -> Optional[LocalityDescriptor]:
        """Hash lookup (the caller charges ``nametable_hash_us``)."""
        return self._by_key.get(key)

    def by_addr(self, addr: int) -> LocalityDescriptor:
        """Direct descriptor dereference via a cached memory address
        (the caller charges ``descriptor_deref_us``)."""
        try:
            return self._by_addr[addr]
        except KeyError:
            raise NameServiceError(
                f"node {self.node_id}: no descriptor at address {addr}"
            ) from None

    def has_addr(self, addr: int) -> bool:
        return addr in self._by_addr

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._by_addr)

    def __iter__(self) -> Iterator[LocalityDescriptor]:
        return iter(self._by_addr.values())

    def local_actors(self) -> Iterator:
        """All actors currently resident on this node."""
        for desc in self._by_addr.values():
            if desc.actor is not None:
                yield desc.actor
