"""Calibrated CPU cost model (simulated microseconds).

The two anchor points are published in the paper (§5, Table 2):

- issuing a remote creation completes **locally in 5.83 us** thanks to
  aliases, while the **actual creation takes 20.83 us**;
- the locality check for locally created actors completes **within
  1 us**.

All other constants are chosen so that composite operations land in
the range the paper and its comparables (ABCL/onAP1000, Concert)
report for a 33 MHz SPARC: a generic buffered local send + dispatch
costs ~5 us, a static dispatch with locality check ~1.6 us
(= locality check + function invocation, the Table 3 formula).

Costs are *components*: the benchmark harness measures end-to-end
paths, so the published numbers emerge from sums over the protocol
code rather than being echoed back.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class CostModel:
    # -- messaging layer (charged by the AM endpoint) -------------------
    am_send_overhead_us: float = 1.75
    am_receive_overhead_us: float = 1.75

    # -- name service ----------------------------------------------------
    #: Hash lookup in the local name table.
    nametable_hash_us: float = 0.55
    #: Insert a binding into the local name table.
    nametable_insert_us: float = 0.70
    #: Allocate a locality descriptor.
    descriptor_alloc_us: float = 0.80
    #: Follow a cached descriptor memory address (no hashing).
    descriptor_deref_us: float = 0.15
    #: Examine a descriptor's locality + enabled state.  Together with
    #: the hash lookup this is the paper's "locality check ... within
    #: 1 us using only locally available information".
    locality_check_us: float = 0.35

    # -- generic message path --------------------------------------------
    #: Marshal selector + args into a message.
    marshal_us: float = 0.60
    #: Mailbox enqueue + dispatcher bookkeeping.
    enqueue_us: float = 0.90
    #: Dequeue + decode at the head of a scheduling slice.
    dispatch_us: float = 1.80
    #: Method lookup when the receiver type is not statically known.
    method_lookup_us: float = 0.90
    #: Function invocation (compiled method entry).
    invoke_us: float = 0.65
    #: Per-message constraint evaluation when the selector has
    #: disabling conditions.
    constraint_check_us: float = 0.30
    #: Parking / unparking a message in the pending queue.
    pending_queue_us: float = 0.45
    #: ``become`` (behaviour replacement).
    become_us: float = 0.40

    # -- creation ----------------------------------------------------------
    #: Actor allocation + constructor, excluding name-service work.
    create_state_us: float = 4.00
    #: Fixed local-creation overhead (scheduler + kernel bookkeeping).
    #: Chosen so local creation totals 12.0 us:
    #: descriptor_alloc + nametable_insert + create_state + this.
    create_fixed_us: float = 6.50
    #: Sender-side fixed cost of issuing a remote creation.  Chosen so
    #: the issue path totals the paper's 5.83 us: descriptor_alloc
    #: (alias) + nametable_insert + marshal + am_send_overhead + this.
    remote_create_issue_fixed_us: float = 1.98
    #: Node-manager-side fixed cost of performing a remote creation
    #: (alias registration + ack preparation).  Calibrated so that the
    #: end-to-end remote creation latency lands on the paper's
    #: 20.83 us (see benchmarks/test_table2_primitives.py).
    remote_create_serve_fixed_us: float = 1.58

    # -- call/return -------------------------------------------------------
    #: Allocate + initialise a join continuation.
    continuation_alloc_us: float = 1.00
    #: Fill one reply slot and decrement the counter.
    continuation_fill_us: float = 0.60
    #: Invoke a completed continuation's function.
    continuation_fire_us: float = 1.20

    # -- broadcast / groups -------------------------------------------------
    #: Per-node cost of forwarding a tree multicast.
    mcast_forward_us: float = 1.10
    #: Dispatch cost per member under collective scheduling (amortised:
    #: the quantum shares one decode across the group's local members).
    collective_dispatch_us: float = 0.55
    #: Group bookkeeping at creation, per local member.
    group_register_us: float = 0.50

    # -- migration -----------------------------------------------------------
    #: Pack an actor (state capture + mailbox drain).
    migrate_pack_us: float = 6.00
    #: Unpack + register on the destination node.
    migrate_unpack_us: float = 8.00
    #: Node-manager work to relay one FIR hop.
    fir_relay_us: float = 1.00
    #: Delay before retrying a FIR that detected a transient cycle.
    fir_retry_delay_us: float = 50.0

    # -- load balancing --------------------------------------------------------
    steal_check_us: float = 0.80
    steal_pack_us: float = 1.50

    # -- program loading ---------------------------------------------------------
    #: Per-node cost of dynamically linking one behaviour.
    load_behavior_us: float = 25.0

    # -- application compute ----------------------------------------------------
    #: Cost of one floating-point operation.  434 MFlops over 64 nodes
    #: (Table 5 peak) is ~6.8 MFlops/node, i.e. ~0.147 us/flop.
    flop_us: float = 0.147

    # ------------------------------------------------------------------
    @property
    def create_local_total_us(self) -> float:
        """Documented sum for a local creation (~12 us)."""
        return (
            self.descriptor_alloc_us
            + self.nametable_insert_us
            + self.create_state_us
            + self.create_fixed_us
        )

    @property
    def remote_create_issue_total_us(self) -> float:
        """Documented sum for the alias-based issue path (5.83 us)."""
        return (
            self.descriptor_alloc_us
            + self.nametable_insert_us
            + self.marshal_us
            + self.am_send_overhead_us
            + self.remote_create_issue_fixed_us
        )

    @property
    def locality_check_total_us(self) -> float:
        """Hash lookup + descriptor examination (< 1 us)."""
        return self.nametable_hash_us + self.locality_check_us

    @property
    def static_dispatch_total_us(self) -> float:
        """Table 3 formula: locality check + function invocation."""
        return self.locality_check_total_us + self.invoke_us

    def scaled(self, factor: float) -> "CostModel":
        """A uniformly scaled copy (sensitivity analysis in benches)."""
        return CostModel(**{
            f.name: getattr(self, f.name) * factor for f in fields(self)
        })
