"""Distributed actor garbage collection (§9 future work).

The paper's conclusions: "The use of locality descriptors to support
location transparency has the advantage of supporting an efficient
garbage collection scheme", citing the scalable distributed GC for
actor systems of Venkatasubramaniam, Agha & Talcott.  This module
implements that direction as a distributed snapshot **mark & sweep**:

- the collection runs at a *quiescent* cut (no messages in flight —
  the runtime can detect this exactly), so the reachability snapshot
  is consistent;
- roots are the refs the environment still holds (passed explicitly)
  plus every actor with undelivered mail;
- marking traces actor state and queued messages with
  :mod:`repro.runtime.gcscan`; references to remote actors travel as
  ``gc_mark`` active messages that *route exactly like ordinary
  deliveries* — through locality descriptors, following forwarding
  pointers — which is precisely the efficiency argument: the name
  service already knows how to find every actor;
- the sweep reclaims unmarked local actors, unbinding their
  descriptors (later sends fail loudly with ``UnknownActorError``).

Being a tracing collector, it reclaims *cyclic* garbage — rings of
actors referring to each other die together once unreachable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.actors.actor import Actor
from repro.errors import ReproError
from repro.runtime.gcscan import extract_refs
from repro.runtime.names import ActorRef, DescState, MailAddress

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.kernel import Kernel
    from repro.runtime.system import HalRuntime

#: CPU cost of scanning one actor's state for references (us).
GC_SCAN_US = 3.0
#: CPU cost of reclaiming one actor (us).
GC_SWEEP_US = 1.5


@dataclass
class GcReport:
    """Outcome of one collection."""

    epoch: int
    live: int
    reclaimed: int
    mark_messages: int
    elapsed_us: float
    per_node_reclaimed: Dict[int, int] = field(default_factory=dict)

    def __str__(self) -> str:
        return (
            f"GC epoch {self.epoch}: {self.live} live, "
            f"{self.reclaimed} reclaimed, {self.mark_messages} mark msgs, "
            f"{self.elapsed_us:.1f} us"
        )


class GcService:
    """Per-kernel collector half; the driver lives on the front-end
    (:func:`collect_garbage`)."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.epoch = 0
        kernel.endpoint.register("gc_mark", self._on_mark)

    # ------------------------------------------------------------------
    # marking
    # ------------------------------------------------------------------
    def begin_epoch(self, epoch: int) -> None:
        self.epoch = epoch

    def mark_local_roots(self) -> None:
        """Actors with undelivered mail are roots: their messages will
        run and may use any ref they carry."""
        for actor in list(self.kernel.table.local_actors()):
            if actor.mailbox.ready_count or actor.mailbox.pending_count:
                self.mark_actor(actor)

    def mark_ref(self, ref: ActorRef) -> None:
        """Mark the actor behind ``ref``, local or remote."""
        k = self.kernel
        desc = k.table.get(ref.address)
        if desc is not None and desc.is_local:
            self.mark_actor(desc.actor)
            return
        # Route the mark like a delivery: toward the best guess (or
        # the home node encoded in the address).
        target = (
            desc.remote_node
            if desc is not None and desc.remote_node >= 0
            else ref.address.home_node()
        )
        if target == k.node_id:
            # believed local but not found: the actor was already
            # reclaimed in an earlier epoch — nothing to mark.
            return
        k.stats.incr("gc.mark_messages")
        k.endpoint.send(target, "gc_mark", (ref.address, self.epoch))

    def mark_actor(self, actor: Actor) -> None:
        """Mark + trace one local actor (iterative, cycle-safe)."""
        k = self.kernel
        stack = [actor]
        while stack:
            a = stack.pop()
            if getattr(a, "gc_epoch", 0) == self.epoch:
                continue
            a.gc_epoch = self.epoch
            k.node.charge(GC_SCAN_US)
            k.stats.incr("gc.marked")
            sources = [a.state] + list(a.mailbox)
            for source in sources:
                actor_refs, group_refs = extract_refs(source)
                for gref in group_refs:
                    actor_refs.extend(gref.members())
                for ref in actor_refs:
                    desc = k.table.get(ref.address)
                    if desc is not None and desc.is_local:
                        if getattr(desc.actor, "gc_epoch", 0) != self.epoch:
                            stack.append(desc.actor)
                    else:
                        self.mark_ref(ref)

    def _on_mark(self, src: int, key: MailAddress, epoch: int) -> None:
        k = self.kernel
        if epoch != self.epoch:
            self.epoch = epoch  # late joiner in this collection
        desc = k.table.get(key)
        if desc is not None and desc.is_local:
            self.mark_actor(desc.actor)
            return
        if desc is not None and desc.state is DescState.REMOTE:
            # forwarding pointer: relay the mark (bounded by the same
            # chain the FIR protocol repairs)
            k.stats.incr("gc.mark_messages")
            k.endpoint.send(desc.remote_node, "gc_mark", (key, epoch))
            return
        if key.home_node() != k.node_id:
            k.stats.incr("gc.mark_messages")
            k.endpoint.send(key.home_node(), "gc_mark", (key, epoch))
        # else: already reclaimed — garbage marking garbage.

    # ------------------------------------------------------------------
    # sweeping
    # ------------------------------------------------------------------
    def sweep(self) -> int:
        """Reclaim unmarked local actors; returns the count."""
        k = self.kernel
        reclaimed = 0
        for desc in [d for d in k.table if d.actor is not None]:
            actor = desc.actor
            if getattr(actor, "gc_epoch", 0) == self.epoch:
                continue
            k.node.charge(GC_SWEEP_US)
            self._unbind(desc)
            reclaimed += 1
        k.stats.incr("gc.reclaimed", reclaimed)
        return reclaimed

    def _unbind(self, desc) -> None:
        table = self.kernel.table
        if desc.key is not None:
            table._by_key.pop(desc.key, None)
        table._by_addr.pop(desc.addr, None)
        # group bookkeeping: drop reclaimed members
        groups = self.kernel.groups.local_members
        if desc.actor is not None and desc.actor.group is not None:
            gid = desc.actor.group.group_id
            members = groups.get(gid)
            if members:
                groups[gid] = [
                    (i, a) for (i, a) in members if a is not desc.actor
                ]
        desc.actor = None


def collect_garbage(
    rt: "HalRuntime",
    roots: Optional[List[ActorRef]] = None,
) -> GcReport:
    """Run one distributed collection on a quiescent machine.

    ``roots`` are the references the environment (driver, front-end)
    still holds; actors with undelivered mail are roots automatically.
    """
    if not rt.quiescent():
        raise ReproError(
            "garbage collection requires a quiescent machine; call "
            "rt.run() first"
        )
    start = rt.now
    epoch = rt._gc_epochs = getattr(rt, "_gc_epochs", 0) + 1
    marks_before = rt.stats.counter("gc.mark_messages")

    for kernel in rt.kernels:
        kernel.gc.begin_epoch(epoch)
    # Root marking runs on each node's CPU.
    for kernel in rt.kernels:
        kernel.node.bootstrap(kernel.gc.mark_local_roots)
    for ref in roots or []:
        home = ref.address.home_node()
        kernel = rt.kernels[home if 0 <= home < rt.num_nodes else 0]
        kernel.node.bootstrap(lambda k=kernel, r=ref: k.gc.mark_ref(r))
    # Marks propagate as ordinary active messages; run to quiescence.
    rt.run()

    reclaimed_per_node = {}
    for kernel in rt.kernels:
        reclaimed_per_node[kernel.node_id] = kernel.node.bootstrap(
            kernel.gc.sweep
        )
    live = rt.total_actors()
    return GcReport(
        epoch=epoch,
        live=live,
        reclaimed=sum(reclaimed_per_node.values()),
        mark_messages=rt.stats.counter("gc.mark_messages") - marks_before,
        elapsed_us=rt.now - start,
        per_node_reclaimed=reclaimed_per_node,
    )
