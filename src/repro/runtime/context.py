"""The execution context handed to actor methods and tasks.

``ctx`` is the language surface of HAL's primitives: asynchronous
``send``, ``new`` / ``grpnew`` creation, ``request``/``reply``
(call/return), ``broadcast``, ``become`` and ``migrate`` — plus the
simulation-only hooks ``charge`` and ``flops`` applications use to
model their compute.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING, Type

from repro.errors import BehaviorError, MigrationError, SchedulingError
from repro.runtime.calls import Request
from repro.runtime.names import ActorRef

if TYPE_CHECKING:  # pragma: no cover
    from repro.actors.actor import Actor
    from repro.actors.message import ActorMessage
    from repro.runtime.groups import GroupRef
    from repro.runtime.kernel import Kernel


class Context:
    """One method (or task) invocation's view of the runtime."""

    __slots__ = (
        "kernel",
        "actor",
        "msg",
        "method_name",
        "depth",
        "_replied",
        "_migrate_to",
    )

    def __init__(
        self,
        kernel: "Kernel",
        actor: Optional["Actor"],
        msg: Optional["ActorMessage"],
        method_name: str = "",
        depth: int = 0,
    ) -> None:
        self.kernel = kernel
        self.actor = actor
        self.msg = msg
        self.method_name = method_name
        #: Inline-invocation stack depth (compiler-controlled
        #: stack-based scheduling).
        self.depth = depth
        self._replied = False
        self._migrate_to: Optional[int] = None

    # ------------------------------------------------------------------
    # identity / environment
    # ------------------------------------------------------------------
    @property
    def me(self) -> ActorRef:
        """This actor's own mail address."""
        if self.actor is None or self.actor.key is None:
            raise BehaviorError("no self-reference in a task context")
        return ActorRef(self.actor.key)

    @property
    def node(self) -> int:
        return self.kernel.node_id

    @property
    def num_nodes(self) -> int:
        return self.kernel.runtime.num_nodes

    @property
    def now(self) -> float:
        """Node-local simulated time (microseconds)."""
        return self.kernel.node.now

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def send(self, ref: ActorRef, selector: str, *args: Any) -> None:
        """Asynchronous, buffered send (the actor primitive)."""
        self.kernel.delivery.send_message(
            ref, selector, args, sender_actor=self.actor, sender_ctx=self
        )

    def request(self, ref: ActorRef, selector: str, *args: Any) -> Request:
        """Build a call/return request.  Must be ``yield``-ed; the
        compiler (generator protocol) separates the continuation::

            value = yield ctx.request(server, "compute", x)
            a, b = yield [ctx.request(s1, "f"), ctx.request(s2, "g")]
        """
        return Request(ref, selector, args)

    def request_create(self, cls: Type, *args: Any, at: int) -> "Any":
        """Split-phase remote creation (pre-alias protocol): yield this
        to receive the new actor's ordinary mail address::

            ref = yield ctx.request_create(Worker, size, at=3)
        """
        from repro.runtime.calls import CreateRequest
        behavior = self.kernel.behavior_for(cls)
        return CreateRequest(behavior.name, args, at)

    def make_join(self, nslots: int, on_complete) -> list:
        """Allocate a join continuation explicitly (the compiled CPS
        form used by tasks).  ``on_complete`` receives the list of slot
        values; the returned list holds one ReplyTarget per slot."""
        from repro.actors.message import ReplyTarget
        k = self.kernel
        k.node.charge(k.costs.continuation_alloc_us)

        def fire(cont) -> None:
            values = cont.values()
            k.continuations.discard(cont.cont_id)
            on_complete(values)

        cont = k.continuations.new(nslots, fire, creator=self.actor,
                                   created_at=k.node.now)
        return [ReplyTarget(k.node_id, cont.cont_id, i) for i in range(nslots)]

    def reply_to(self, target: Any, value: Any) -> None:
        """Send ``value`` to an explicit reply target (compiled CPS
        form; ordinary methods use :meth:`reply`)."""
        self.kernel.reply_router.send_reply(target, value)

    def reply(self, value: Any) -> None:
        """Explicitly reply to the current message's continuation."""
        if self.msg is None or self.msg.reply_to is None:
            raise SchedulingError(
                "reply() outside a request-carrying message"
            )
        if self._replied:
            raise SchedulingError("reply() called twice for one request")
        self._replied = True
        self.kernel.reply_router.send_reply(self.msg.reply_to, value)

    @property
    def wants_reply(self) -> bool:
        """True when the current message is a request (has a
        continuation address)."""
        return self.msg is not None and self.msg.reply_to is not None

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------
    def new(self, cls: Type, *args: Any, at: Optional[int] = None) -> ActorRef:
        """Create an actor (``new``).  ``at`` pins the placement; the
        default is local creation.  Remote creations return an alias
        immediately (latency hiding, §5)."""
        return self.kernel.creation.create(cls, args, at=at)

    def grpnew(
        self,
        cls: Type,
        n: int,
        *args: Any,
        placement: str = "cyclic",
    ) -> "GroupRef":
        """Create a group of ``n`` actors with the same behaviour
        template (``grpnew``); returns a group identifier usable
        immediately."""
        return self.kernel.groups.grpnew(cls, n, args, placement=placement)

    def spawn_task(self, fn_name: str, *args: Any, at: Optional[int] = None) -> None:
        """Spawn a lightweight task (creation-elided actor, §7.2)."""
        self.kernel.creation.spawn_task(fn_name, args, at=at)

    # ------------------------------------------------------------------
    # groups
    # ------------------------------------------------------------------
    def broadcast(self, group: "GroupRef", selector: str, *args: Any) -> None:
        """Send to all members of a group (replicated per member)."""
        self.kernel.groups.broadcast(group, selector, args)

    # ------------------------------------------------------------------
    # behaviour change / mobility
    # ------------------------------------------------------------------
    def become(self, cls: Type, *args: Any) -> None:
        """Replace this actor's behaviour (and state)."""
        if self.actor is None:
            raise BehaviorError("become() outside an actor method")
        self.kernel.execution.do_become(self.actor, cls, args)

    def migrate(self, to_node: int) -> None:
        """Move this actor to ``to_node`` once the current method
        completes."""
        if self.actor is None:
            raise MigrationError("migrate() outside an actor method")
        if not (0 <= to_node < self.num_nodes):
            raise MigrationError(f"no such node {to_node}")
        self._migrate_to = to_node

    # ------------------------------------------------------------------
    # simulated compute
    # ------------------------------------------------------------------
    def charge(self, us: float) -> None:
        """Consume ``us`` microseconds of simulated CPU."""
        self.kernel.node.charge(us)

    def flops(self, n: float) -> None:
        """Consume the CPU time of ``n`` floating-point operations."""
        self.kernel.node.charge(n * self.kernel.costs.flop_us)

    # ------------------------------------------------------------------
    def io(self, text: str) -> None:
        """Write a line to the front-end console (partition manager)."""
        self.kernel.runtime.frontend.console_write(self.node, self.now, text)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        who = self.actor.behavior.name if self.actor else "task"
        return f"Context({who}.{self.method_name}@n{self.node}, depth={self.depth})"
