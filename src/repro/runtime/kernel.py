"""The per-node runtime kernel (§3, Fig. 2).

A kernel is a passive substrate on which actors execute: the actor
interface on top (exported to the compiler via the execution engine's
inline hooks), the communication and program-load modules at the
bottom, and the node manager, dispatcher and name server in between.
All computations on a node share one address space — the kernel does
not discriminate between actors created by different programs.
"""

from __future__ import annotations

from typing import Callable, Dict, Type, TYPE_CHECKING, Union

from repro.actors.behavior import Behavior, behavior_of, is_behavior_class
from repro.am.bulk import BulkManager
from repro.am.cmam import Endpoint
from repro.am.flowcontrol import AcceptAll, MinimalFlowControl
from repro.am.reliable import ReliableTransport
from repro.errors import LoadError
from repro.runtime.calls import ContinuationTable, GeneratorDriver, ReplyRouter
from repro.runtime.creation import CreationService
from repro.runtime.delivery import DeliveryService
from repro.runtime.dispatcher import Dispatcher
from repro.runtime.execution import Execution
from repro.runtime.gc import GcService
from repro.runtime.groups import GroupManager
from repro.runtime.loadbalance import LoadBalancer
from repro.runtime.migration import MigrationService
from repro.runtime.nametable import NameTable
from repro.runtime.node_manager import NodeManager

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.system import HalRuntime


class Kernel:
    """One processing element's runtime kernel."""

    def __init__(self, runtime: "HalRuntime", node_id: int) -> None:
        self.runtime = runtime
        self.node_id = node_id
        self.node = runtime.machine.nodes[node_id]
        self.config = runtime.config
        self.costs = runtime.costs
        self.stats = runtime.machine.stats
        self.trace = runtime.machine.trace
        self.spans = runtime.machine.spans
        #: Causal context of the execution currently on this node's
        #: CPU: ``(trace_id, span_id)`` while a traced message, task or
        #: continuation body runs, else None.  Sends issued from within
        #: that body parent their spans here.  The trace ID's low bit
        #: carries the head-sampling verdict; an unsampled execution
        #: still sets ``(trace_id, 0)`` so children inherit the trace
        #: (and its decision) instead of rooting fresh ones.
        self.trace_ctx = None
        self.network_params = runtime.config.network

        # communication module (CMAM endpoint + bulk protocol)
        self.endpoint = Endpoint(
            self.node,
            runtime.machine.network,
            runtime.endpoint_directory,
            self.stats,
            self.trace,
            send_overhead_us=self.costs.am_send_overhead_us,
            receive_overhead_us=self.costs.am_receive_overhead_us,
        )
        # Reliable-delivery sublayer: attached exactly when the machine
        # injects faults (or config forces it), so fault-free runs keep
        # the bare endpoint fast path.
        rel_cfg = self.config.reliability
        rel_on = (
            rel_cfg.enabled
            if rel_cfg.enabled is not None
            else runtime.machine.faults is not None
        )
        self.reliable = (
            ReliableTransport(self.endpoint, rel_cfg, self.stats,
                              spans=self.spans)
            if rel_on
            else None
        )
        policy = (
            MinimalFlowControl(1) if self.config.flow_control else AcceptAll()
        )
        self.bulk = BulkManager(
            self.endpoint,
            policy,
            request_cpu_us=self.costs.am_receive_overhead_us,
            ack_cpu_us=self.costs.am_send_overhead_us,
        )

        # name server
        self.table = NameTable(node_id)

        # scheduling + execution
        self.dispatcher = Dispatcher(self)
        self.execution = Execution(self)
        self.continuations = ContinuationTable(node_id)
        self.reply_router = ReplyRouter(self)
        self.driver = GeneratorDriver(self)

        # services
        self.delivery = DeliveryService(self)
        self.creation = CreationService(self)
        self.migration = MigrationService(self)
        self.groups = GroupManager(self)
        self.balancer = LoadBalancer(self)

        # program load module: behaviour + task registries
        self.behaviors: Dict[str, Behavior] = {}
        self.tasks: Dict[str, Callable] = {}
        self.loaded_programs: set[str] = set()

        # node manager registers every AM handler
        self.node_manager = NodeManager(self)

        # distributed garbage collection (extension, §9)
        self.gc = GcService(self)

    # ------------------------------------------------------------------
    # program load module
    # ------------------------------------------------------------------
    def register_behavior(self, beh_or_cls: Union[Behavior, Type]) -> Behavior:
        beh = (
            behavior_of(beh_or_cls)
            if is_behavior_class(beh_or_cls)
            else beh_or_cls
        )
        if not isinstance(beh, Behavior):
            raise LoadError(f"{beh_or_cls!r} is not a behaviour")
        existing = self.behaviors.get(beh.name)
        if existing is not None and existing is not beh:
            raise LoadError(
                f"node {self.node_id}: behaviour name collision {beh.name!r}"
            )
        self.behaviors[beh.name] = beh
        return beh

    def register_task(self, name: str, fn: Callable) -> None:
        existing = self.tasks.get(name)
        if existing is not None and existing is not fn:
            raise LoadError(f"node {self.node_id}: task name collision {name!r}")
        self.tasks[name] = fn

    def link_program(self, program_name: str) -> None:
        """Dynamically load a program image announced by the front-end
        (the registries were populated by the loader; this charges the
        linking cost on this node)."""
        if program_name in self.loaded_programs:
            return
        self.loaded_programs.add(program_name)
        program = self.runtime.frontend.program(program_name)
        self.node.charge(self.costs.load_behavior_us * max(1, len(program.behaviors)))
        self.stats.incr("load.linked")

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def behavior_for(self, ref: Union[str, Type, Behavior]) -> Behavior:
        """Resolve a behaviour by name, class or object."""
        if isinstance(ref, Behavior):
            return ref
        if isinstance(ref, str):
            try:
                return self.behaviors[ref]
            except KeyError:
                raise LoadError(
                    f"node {self.node_id}: behaviour {ref!r} is not loaded; "
                    "add it to the program image"
                ) from None
        if is_behavior_class(ref):
            beh = behavior_of(ref)
            loaded = self.behaviors.get(beh.name)
            if loaded is None:
                raise LoadError(
                    f"node {self.node_id}: behaviour {beh.name!r} is not "
                    "loaded; load it with HalRuntime.load(...)"
                )
            return loaded
        raise LoadError(f"{ref!r} is not a behaviour")

    def task_fn(self, name: str) -> Callable:
        try:
            return self.tasks[name]
        except KeyError:
            raise LoadError(
                f"node {self.node_id}: task {name!r} is not loaded"
            ) from None

    # ------------------------------------------------------------------
    def local_actor_count(self) -> int:
        return sum(1 for _ in self.table.local_actors())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Kernel(n{self.node_id})"
