"""Counters and timing accumulators used across the runtime.

A :class:`StatsRegistry` is shared by the machine, the AM layer and
the runtime kernels.

Counters are mutable :class:`Counter` cells so hot paths can bind a
cell once (``cell = stats.cell("am.sends")`` at construction) and then
bump ``cell.n += 1`` per message — no dotted-string hashing, no method
call.  :meth:`incr` remains for cold paths.  :meth:`reset` zeroes
cells *in place* so bound handles stay live across benchmark phases.

:class:`Histogram` adds fixed-bucket latency distributions (delivery
latency, execution time, mailbox depth, FIR chain length) with
p50/p95/p99 estimates.  Buckets are powers of two, so recording is one
``bit_length`` call and an indexed increment — cheap enough for the
traced hot path, and the bucket layout never depends on the data.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple


class Counter:
    """A single mutable counter cell; hot paths bump ``.n`` directly."""

    __slots__ = ("n",)

    def __init__(self, n: int = 0) -> None:
        self.n = n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.n})"


@dataclass
class TimerStat:
    """Aggregate of a repeatedly measured duration (microseconds)."""

    count: int = 0
    total_us: float = 0.0
    min_us: float = float("inf")
    max_us: float = 0.0

    def record(self, us: float) -> None:
        self.count += 1
        self.total_us += us
        if us < self.min_us:
            self.min_us = us
        if us > self.max_us:
            self.max_us = us

    def _zero(self) -> None:
        """In-place reset so cached handles survive a registry reset."""
        self.count = 0
        self.total_us = 0.0
        self.min_us = float("inf")
        self.max_us = 0.0

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0


class Histogram:
    """Fixed power-of-two buckets with percentile estimation.

    Bucket ``i`` covers ``[2**(i-1), 2**i)`` for ``i >= 1``; bucket 0
    covers ``[0, 1)``.  Values are assigned with ``int(v).bit_length()``
    so bucketing never allocates.  Percentiles walk the cumulative
    counts and interpolate linearly inside the chosen bucket, clamped
    to the observed ``[min, max]`` so tiny samples report sane numbers.

    Recording is split in two so the per-message cost is one list
    append: writers push raw samples through the bound ``stage``
    handle, and :meth:`_fold` buckets a whole batch in a tight loop —
    on read, or whenever the staging buffer reaches ``FOLD_AT``
    samples (hot sites that bypass :meth:`record` enforce the bound
    themselves, e.g. the execution layer's per-message countdown).
    Folding is exact — every staged sample lands in a bucket — it only
    *defers* the arithmetic off the per-message path.  Negative
    samples clamp to zero at fold time (delivery latency can go
    negative when a sender's virtual clock runs ahead).
    """

    __slots__ = ("name", "buckets", "_total", "_min", "_max", "staged",
                 "stage")

    #: 2**40 µs ≈ 12 days of simulated time — far beyond any run here.
    NUM_BUCKETS = 41

    #: Staging-buffer bound: :meth:`record` folds once this many raw
    #: samples accumulate, so memory stays O(FOLD_AT) per histogram.
    FOLD_AT = 1 << 15

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.buckets: List[int] = [0] * self.NUM_BUCKETS
        self._total = 0.0
        self._min = float("inf")
        self._max = 0.0
        #: Raw samples awaiting a fold.  Cleared in place so the bound
        #: ``stage`` handle stays live.
        self.staged: List[float] = []
        #: Hot-path handle: ``h.stage(v)`` is a single bound call.
        self.stage = self.staged.append

    def record(self, value: float) -> None:
        """Stage one sample (cold-path API; hot sites bind ``stage``)."""
        self.stage(value)
        if len(self.staged) >= self.FOLD_AT:
            self._fold()

    def _fold(self) -> None:
        """Bucket all staged samples in one batch.

        The batch is sorted first (C-speed Timsort), which turns
        bucketing into one ``bisect_left`` per occupied power-of-two
        boundary instead of one ``bit_length`` per sample, and gives
        the clamped total/min/max via ``sum`` and the endpoints.  The
        result is bit-for-bit what the per-sample loop produced:
        ``int(v).bit_length()`` assigns ``v`` to ``[2**(i-1), 2**i)``
        and truncation can never carry a float across a power-of-two
        boundary.
        """
        staged = self.staged
        if not staged:
            return
        staged.sort()
        n = len(staged)
        buckets = self.buckets
        # Negative samples clamp to zero: they count in bucket 0,
        # contribute nothing to the total, and pin the minimum at 0.
        lo = staged[0]
        if lo < 0.0:
            lo = 0.0
            self._total += sum(staged[bisect_left(staged, 0.0):])
        else:
            self._total += sum(staged)
        if lo < self._min:
            self._min = lo
        hi = staged[-1]
        if hi < 0.0:
            hi = 0.0
        if hi > self._max:
            self._max = hi
        prev = bisect_left(staged, 1.0)
        buckets[0] += prev
        bound = 1.0
        i = 1
        while prev < n:
            if i == self.NUM_BUCKETS - 1:
                buckets[i] += n - prev  # overflow bucket: >= 2**39
                break
            bound += bound
            nxt = bisect_left(staged, bound, prev)
            buckets[i] += nxt - prev
            prev = nxt
            i += 1
        staged.clear()

    @property
    def count(self) -> int:
        """Total samples recorded (folds staged samples; reads are cold)."""
        self._fold()
        return sum(self.buckets)

    # The aggregate fields fold on read so callers never see a value
    # that lags the staged samples; all reads are cold paths.
    @property
    def total(self) -> float:
        self._fold()
        return self._total

    @property
    def min(self) -> float:
        self._fold()
        return self._min

    @property
    def max(self) -> float:
        self._fold()
        return self._max

    @property
    def mean(self) -> float:
        n = self.count  # folds staged samples before total is read
        return self._total / n if n else 0.0

    @staticmethod
    def _bucket_bounds(i: int) -> Tuple[float, float]:
        if i == 0:
            return 0.0, 1.0
        return float(2 ** (i - 1)), float(2 ** i)

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (``0 < p <= 100``)."""
        if not self.count:
            return 0.0
        rank = p / 100.0 * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            if not n:
                continue
            if seen + n >= rank:
                lo, hi = self._bucket_bounds(i)
                frac = (rank - seen) / n
                est = lo + frac * (hi - lo)
                return min(max(est, self.min), self.max)
            seen += n
        return self.max

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def _zero(self) -> None:
        """In-place reset so cached handles survive a registry reset."""
        for i in range(self.NUM_BUCKETS):
            self.buckets[i] = 0
        self._total = 0.0
        self._min = float("inf")
        self._max = 0.0
        self.staged.clear()

    def as_dict(self) -> Dict[str, Any]:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 3),
            "p50": round(self.p50, 3),
            "p95": round(self.p95, 3),
            "p99": round(self.p99, 3),
            # Sparse bucket map: {bucket upper bound: count}.
            "buckets": {
                str(self._bucket_bounds(i)[1]): n
                for i, n in enumerate(self.buckets) if n
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram({self.name!r}, count={self.count}, "
                f"p50={self.p50:.1f}, p99={self.p99:.1f})")


class StatsRegistry:
    """Hierarchical counters: ``stats.incr("am.sends")`` etc."""

    def __init__(self) -> None:
        self._cells: Dict[str, Counter] = {}
        self.timers: Dict[str, TimerStat] = {}
        self.gauges: Dict[str, float] = {}
        self.hists: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def cell(self, name: str) -> Counter:
        """The mutable cell behind ``name``, created on first use.
        Bind once, bump ``cell.n`` on the hot path."""
        c = self._cells.get(name)
        if c is None:
            c = self._cells[name] = Counter()
        return c

    def incr(self, name: str, by: int = 1) -> None:
        c = self._cells.get(name)
        if c is None:
            c = self._cells[name] = Counter()
        c.n += by

    def record_time(self, name: str, us: float) -> None:
        self.timer(name).record(us)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def max_gauge(self, name: str, value: float) -> None:
        if value > self.gauges.get(name, float("-inf")):
            self.gauges[name] = value

    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        c = self._cells.get(name)
        return c.n if c is not None else 0

    def timer(self, name: str) -> TimerStat:
        """The (mutable) timer aggregate for ``name``; safe to cache."""
        t = self.timers.get(name)
        if t is None:
            t = self.timers[name] = TimerStat()
        return t

    def hist(self, name: str) -> Histogram:
        """The (mutable) histogram for ``name``; safe to cache and call
        ``.record(v)`` on the hot path."""
        h = self.hists.get(name)
        if h is None:
            h = self.hists[name] = Histogram(name)
        return h

    def record_hist(self, name: str, value: float) -> None:
        self.hist(name).record(value)

    @property
    def counters(self) -> Dict[str, int]:
        """Snapshot dict of nonzero counters (debugging convenience;
        pre-bound but untouched cells are omitted)."""
        return {k: c.n for k, c in self._cells.items() if c.n}

    def snapshot(self) -> Dict[str, float]:
        """Flat snapshot suitable for printing or diffing in tests.
        Cells and timers that were bound but never bumped are omitted,
        so pre-binding handles does not perturb snapshots."""
        out: Dict[str, float] = {}
        for k, c in sorted(self._cells.items()):
            if c.n:
                out[f"counter.{k}"] = float(c.n)
        for k, t in sorted(self.timers.items()):
            if t.count:
                out[f"timer.{k}.count"] = float(t.count)
                out[f"timer.{k}.mean_us"] = t.mean_us
        for k, v in sorted(self.gauges.items()):
            out[f"gauge.{k}"] = v
        for k, h in sorted(self.hists.items()):
            if h.count:
                out[f"hist.{k}.count"] = float(h.count)
                out[f"hist.{k}.p50"] = h.p50
                out[f"hist.{k}.p99"] = h.p99
        return out

    def as_dict(self) -> Dict[str, Any]:
        """Nested plain-dict snapshot for JSON serialization: one key
        per family (``counters``, ``timers``, ``gauges``, ``hists``).
        Bound-but-untouched entries are omitted, as in
        :meth:`snapshot`."""
        return {
            "counters": {
                k: c.n for k, c in sorted(self._cells.items()) if c.n
            },
            "timers": {
                k: {
                    "count": t.count,
                    "total_us": round(t.total_us, 3),
                    "mean_us": round(t.mean_us, 3),
                    "min_us": t.min_us,
                    "max_us": t.max_us,
                }
                for k, t in sorted(self.timers.items()) if t.count
            },
            "gauges": dict(sorted(self.gauges.items())),
            "hists": {
                k: h.as_dict()
                for k, h in sorted(self.hists.items()) if h.count
            },
        }

    def reset(self) -> None:
        """Zero everything in place; cached cell/timer handles stay
        bound (they read 0 afterwards)."""
        for c in self._cells.values():
            c.n = 0
        for t in self.timers.values():
            t._zero()
        for h in self.hists.values():
            h._zero()
        self.gauges.clear()

    def table(self, prefixes: Iterable[str] = ()) -> str:
        """Render selected counters as an aligned text table."""
        rows: list[Tuple[str, str]] = []
        for k in sorted(self._cells):
            n = self._cells[k].n
            if n and (not prefixes or any(k.startswith(p) for p in prefixes)):
                rows.append((k, str(n)))
        if not rows:
            return "(no counters)"
        width = max(len(k) for k, _ in rows)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)
