"""repro — a reproduction of Kim & Agha (SC '95).

"Efficient Support of Location Transparency in Concurrent
Object-Oriented Programming Languages": the HAL actor-language runtime
system — distributed name server with locality descriptors, alias-based
remote-creation latency hiding, migration with FIR forwarding, join
continuations, compiler-controlled intra-node scheduling, spanning-tree
broadcast with collective scheduling, minimal flow control, and
receiver-initiated dynamic load balancing — on a deterministic
discrete-event simulation of a CM-5-class multicomputer.

Quickstart::

    from repro import HalRuntime, RuntimeConfig, behavior, method

    @behavior
    class Greeter:
        def __init__(self):
            self.greeted = 0

        @method
        def greet(self, ctx, name):
            self.greeted += 1
            return f"hello, {name}"

    rt = HalRuntime(RuntimeConfig(num_nodes=4))
    ref = rt.spawn(Greeter, at=2)
    print(rt.call(ref, "greet", "world"))
"""

from repro.actors.behavior import behavior, method
from repro.actors.constraints import disable_when
from repro.config import (
    LoadBalanceParams,
    NetworkParams,
    RuntimeConfig,
    SchedulerParams,
)
from repro.config import ReliabilityParams
from repro.errors import InvariantViolation, ReliabilityError, ReproError
from repro.platform import BACKENDS, make_machine
from repro.runtime.costmodel import CostModel
from repro.runtime.groups import GroupRef
from repro.runtime.names import ActorRef, MailAddress
from repro.runtime.program import HalProgram
from repro.runtime.system import HalRuntime
from repro.sim.faults import FaultInjector, FaultPlan, FaultRule, NodeFault
from repro.sim.invariants import check_invariants

__version__ = "1.0.0"

__all__ = [
    "HalRuntime",
    "RuntimeConfig",
    "NetworkParams",
    "SchedulerParams",
    "LoadBalanceParams",
    "ReliabilityParams",
    "CostModel",
    "HalProgram",
    "behavior",
    "method",
    "disable_when",
    "ActorRef",
    "MailAddress",
    "GroupRef",
    "ReproError",
    "ReliabilityError",
    "InvariantViolation",
    "FaultPlan",
    "FaultRule",
    "NodeFault",
    "FaultInjector",
    "check_invariants",
    "BACKENDS",
    "make_machine",
    "__version__",
]
