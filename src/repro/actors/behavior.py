"""Behaviour templates.

A *behaviour* is HAL's analogue of a class (§2.2): a method table, a
constraint set, and a constructor for per-actor state.  Behaviours are
declared with the :func:`behavior` class decorator and the
:func:`method` marker::

    @behavior
    class Counter:
        def __init__(self, start=0):
            self.value = start

        @method
        def incr(self, ctx, by=1):
            self.value += by

Only ``@method``-marked callables are invocable by messages; plain
functions remain private helpers.  The HAL compiler
(:mod:`repro.hal.compiler`) later attaches analysis results to the
:class:`Behavior` (``compiled`` slot).
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, Optional, Type

from repro.actors.constraints import ConstraintSet
from repro.errors import BehaviorError

_METHOD_ATTR = "__hal_method__"
_BEHAVIOR_ATTR = "__hal_behavior__"


def method(fn: Callable) -> Callable:
    """Mark ``fn`` as message-invocable.  Methods take ``(self, ctx,
    *args)``; request/reply methods may be written in either frontend
    style, transparently:

    - **plain def** — ``v = ctx.request(ref, "sel", x)`` with no
      ``yield``; the HAL compiler's AST frontend
      (:mod:`repro.hal.lower`) finds the request sites, groups
      independent ones into shared joins, and rewrites the body into
      generator form at load time;
    - **explicit generator** — hand-written ``yield`` split points
      (see :mod:`repro.hal.dependence`).
    """
    setattr(fn, _METHOD_ATTR, True)
    return fn


def is_hal_method(fn: Any) -> bool:
    return callable(fn) and getattr(fn, _METHOD_ATTR, False)


class Behavior:
    """Runtime representation of a behaviour template."""

    def __init__(self, cls: Type) -> None:
        self.cls = cls
        self.name: str = cls.__name__
        #: The method table dispatch consults.  The HAL compiler
        #: replaces plain-def request methods here with their lowered
        #: generator form at load time (the class attribute keeps the
        #: original, so subclassing and direct calls are unaffected).
        self.methods: Dict[str, Callable] = {}
        for attr_name, fn in inspect.getmembers(cls, callable):
            if is_hal_method(fn):
                self.methods[attr_name] = fn
        self.constraints = ConstraintSet.from_methods(self.methods)
        #: Filled by the HAL compiler with a CompiledBehavior.
        self.compiled: Optional[Any] = None
        #: True for behaviours the compiler proved purely functional
        #: (enables the creation-elision optimisation of Table 4).
        self.functional: bool = False

    # ------------------------------------------------------------------
    def make_state(self, args: tuple, kwargs: Optional[dict] = None) -> Any:
        """Instantiate per-actor state."""
        try:
            return self.cls(*args, **(kwargs or {}))
        except TypeError as exc:
            raise BehaviorError(
                f"cannot construct {self.name} with args {args!r}: {exc}"
            ) from exc

    def lookup(self, selector: str) -> Callable:
        try:
            return self.methods[selector]
        except KeyError:
            raise BehaviorError(
                f"behaviour {self.name} has no method {selector!r}; "
                f"available: {sorted(self.methods)}"
            ) from None

    def has_method(self, selector: str) -> bool:
        return selector in self.methods

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Behavior({self.name}, methods={sorted(self.methods)})"


def behavior(cls: Type) -> Type:
    """Class decorator declaring a behaviour template.

    The :class:`Behavior` is attached to the class; the class itself is
    returned unmodified so normal Python subclassing and testing work.
    """
    if not inspect.isclass(cls):
        raise BehaviorError("@behavior must decorate a class")
    beh = Behavior(cls)
    if not beh.methods:
        raise BehaviorError(
            f"behaviour {cls.__name__} declares no @method-marked methods"
        )
    setattr(cls, _BEHAVIOR_ATTR, beh)
    return cls


def is_behavior_class(cls: Any) -> bool:
    return inspect.isclass(cls) and _BEHAVIOR_ATTR in vars(cls)


def behavior_of(cls: Type) -> Behavior:
    """The :class:`Behavior` attached to a ``@behavior`` class."""
    beh = vars(cls).get(_BEHAVIOR_ATTR)
    if beh is None:
        raise BehaviorError(f"{cls!r} is not a @behavior class")
    return beh
