"""Join continuations (§6.2, Fig. 4).

A join continuation has four components: a *counter* of empty slots, a
*function* implementing the compiler-separated continuation of a
request send, the *creator* actor, and a set of *argument slots*.
Replies fill slots and decrement the counter; at zero the function is
invoked with the continuation as its argument.  Join continuations are
deterministic: they fire exactly once and never receive further
messages.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.errors import ContinuationError

_EMPTY = object()  # sentinel distinguishing "unfilled" from a None reply


class JoinContinuation:
    """Node-local join of one or more outstanding replies."""

    __slots__ = ("cont_id", "counter", "function", "creator", "slots", "fired",
                 "created_at", "trace_ctx")

    def __init__(
        self,
        cont_id: int,
        nslots: int,
        function: Callable[["JoinContinuation"], None],
        creator: Optional[Any] = None,
        *,
        known: Optional[dict[int, Any]] = None,
        created_at: float = 0.0,
    ) -> None:
        if nslots < 0:
            raise ContinuationError(f"negative slot count {nslots}")
        self.cont_id = cont_id
        self.function = function
        self.creator = creator
        self.slots: List[Any] = [_EMPTY] * nslots
        self.fired = False
        self.created_at = created_at
        #: Causal context of the reply that completed the join (set by
        #: the reply router so the continuation body can be traced).
        self.trace_ctx = None
        # Slots whose values were already known at creation time are
        # pre-filled and do not count toward the join.
        if known:
            for idx, value in known.items():
                self._check_slot(idx)
                self.slots[idx] = value
        self.counter = sum(1 for s in self.slots if s is _EMPTY)

    # ------------------------------------------------------------------
    def _check_slot(self, idx: int) -> None:
        if not (0 <= idx < len(self.slots)):
            raise ContinuationError(
                f"slot {idx} out of range for continuation {self.cont_id} "
                f"({len(self.slots)} slots)"
            )

    def fill(self, idx: int, value: Any) -> bool:
        """Fill slot ``idx``; returns True when the join completes."""
        if self.fired:
            raise ContinuationError(
                f"continuation {self.cont_id} already fired"
            )
        self._check_slot(idx)
        if self.slots[idx] is not _EMPTY:
            raise ContinuationError(
                f"slot {idx} of continuation {self.cont_id} filled twice"
            )
        self.slots[idx] = value
        self.counter -= 1
        return self.counter == 0

    @property
    def complete(self) -> bool:
        return self.counter == 0

    def values(self) -> List[Any]:
        """All slot values; only valid once complete."""
        if not self.complete:
            raise ContinuationError(
                f"continuation {self.cont_id} read before completion "
                f"({self.counter} slots empty)"
            )
        return list(self.slots)

    def invoke(self) -> None:
        """Run the continuation function.  Fires exactly once."""
        if not self.complete:
            raise ContinuationError(
                f"continuation {self.cont_id} invoked with {self.counter} "
                "slots still empty"
            )
        if self.fired:
            raise ContinuationError(
                f"continuation {self.cont_id} invoked twice"
            )
        self.fired = True
        self.function(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JoinContinuation(id={self.cont_id}, counter={self.counter}, "
            f"slots={len(self.slots)}, fired={self.fired})"
        )
