"""Actor messages.

Every HAL message carries a destination mail address, a method
selector, and optionally a continuation address (§3).  The destination
is carried by the delivery machinery; :class:`ActorMessage` is the part
queued in mailboxes — selector, arguments and the optional reply
target that implements the call/return abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple


@dataclass(frozen=True)
class ReplyTarget:
    """Where a ``reply`` must go: a join-continuation slot on a node.

    The paper's continuation address — node-local continuations are
    named by ``(node, continuation id)`` and the request reserves a
    specific argument ``slot``.
    """

    node: int
    cont_id: int
    slot: int

    #: wire size: node + id + slot, one word each
    WIRE_BYTES = 12


@dataclass
class ActorMessage:
    """A buffered message awaiting (or undergoing) dispatch."""

    selector: str
    args: Tuple[Any, ...] = ()
    reply_to: Optional[ReplyTarget] = None
    #: Node where the send was issued (for stats/traces only).
    sender_node: int = -1
    #: Simulated time at which the send was issued.
    sent_at: float = 0.0
    #: Causal trace identity (0 when untraced); never compared so that
    #: tracing cannot change message-equality semantics.
    trace_id: int = field(default=0, compare=False)
    #: Span the next processing stage should attach to (0 = root).
    span_id: int = field(default=0, compare=False)
    #: True once the message has been parked in the pending queue at
    #: least once (used to avoid re-counting deferrals).
    was_deferred: bool = field(default=False, compare=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        r = f"->cont{self.reply_to.cont_id}@{self.reply_to.node}" if self.reply_to else ""
        return f"Msg({self.selector}{self.args!r}{r})"
