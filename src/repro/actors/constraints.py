"""Local synchronization constraints (disabling conditions).

HAL specifies synchronization modularly as *disabling conditions* on a
per-object basis (§2.2, §6.1): a constraint names a method and a
predicate over the object's state (and optionally the message); while
the predicate holds, the method is disabled and matching messages park
in the pending queue.

Constraints are declared on behaviour classes with the
:func:`disable_when` decorator::

    @behavior
    class BoundedBuffer:
        def __init__(self, n):
            self.items, self.n = [], n

        @method
        @disable_when(lambda self, msg: len(self.items) >= self.n)
        def put(self, ctx, x): ...

        @method
        @disable_when(lambda self, msg: not self.items)
        def get(self, ctx): ...
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.actors.message import ActorMessage
from repro.errors import ConstraintError

#: ``predicate(state, message) -> bool`` — True means *disabled*.
Predicate = Callable[[Any, ActorMessage], bool]

_ATTR = "__hal_disable_when__"


def disable_when(predicate: Predicate):
    """Attach a disabling condition to a behaviour method.

    Multiple conditions on one method are OR-ed: the method is disabled
    if *any* of them holds.
    """
    if not callable(predicate):
        raise ConstraintError("disable_when requires a callable predicate")

    def wrap(fn):
        conditions: List[Predicate] = list(getattr(fn, _ATTR, ()))
        conditions.append(predicate)
        setattr(fn, _ATTR, conditions)
        return fn

    return wrap


def conditions_of(fn) -> List[Predicate]:
    """The disabling conditions attached to a method function."""
    return list(getattr(fn, _ATTR, ()))


class ConstraintSet:
    """All disabling conditions of one behaviour, keyed by selector."""

    def __init__(self, by_selector: Optional[Dict[str, List[Predicate]]] = None) -> None:
        self._by_selector: Dict[str, List[Predicate]] = dict(by_selector or {})

    @classmethod
    def from_methods(cls, methods: Dict[str, Callable]) -> "ConstraintSet":
        table: Dict[str, List[Predicate]] = {}
        for selector, fn in methods.items():
            conds = conditions_of(fn)
            if conds:
                table[selector] = conds
        return cls(table)

    # ------------------------------------------------------------------
    def is_disabled(self, selector: str, state: Any, msg: ActorMessage) -> bool:
        """True if any condition currently disables ``selector``."""
        for pred in self._by_selector.get(selector, ()):
            try:
                if pred(state, msg):
                    return True
            except Exception as exc:  # constraint bugs must be loud
                raise ConstraintError(
                    f"constraint predicate for {selector!r} raised: {exc!r}"
                ) from exc
        return False

    def has_constraints(self, selector: str) -> bool:
        return selector in self._by_selector

    @property
    def constrained_selectors(self) -> List[str]:
        return sorted(self._by_selector)

    def __bool__(self) -> bool:
        return bool(self._by_selector)
