"""Actor-model core: the data structures of HAL's object model.

Everything here is machine-independent — actors, behaviours, mail
queues, synchronization constraints and join continuations are plain
objects that the runtime kernel (:mod:`repro.runtime`) animates on the
simulated multicomputer.
"""

from repro.actors.actor import Actor
from repro.actors.behavior import Behavior, behavior_of, is_behavior_class
from repro.actors.constraints import ConstraintSet, disable_when
from repro.actors.continuations import JoinContinuation
from repro.actors.mailbox import Mailbox
from repro.actors.message import ActorMessage, ReplyTarget

__all__ = [
    "Actor",
    "Behavior",
    "behavior_of",
    "is_behavior_class",
    "ConstraintSet",
    "disable_when",
    "JoinContinuation",
    "Mailbox",
    "ActorMessage",
    "ReplyTarget",
]
