"""Mail queues.

Communication between actors is buffered (§2.1): incoming messages
queue until the actor is ready.  Each actor additionally owns an
auxiliary *pending queue* (§6.1) holding messages whose method is
currently disabled by a local synchronization constraint; the pending
queue is re-examined after every completed method execution.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, Optional

from repro.actors.message import ActorMessage
from repro.errors import DeliveryError


class Mailbox:
    """FIFO mail queue plus the constraint pending queue."""

    __slots__ = ("queue", "pending", "total_enqueued", "total_deferred")

    def __init__(self) -> None:
        self.queue: Deque[ActorMessage] = deque()
        self.pending: Deque[ActorMessage] = deque()
        self.total_enqueued = 0
        self.total_deferred = 0

    # ------------------------------------------------------------------
    def enqueue(self, msg: ActorMessage) -> None:
        self.queue.append(msg)
        self.total_enqueued += 1

    def enqueue_front(self, msg: ActorMessage) -> None:
        """Requeue at the front (used when a migration interrupts
        dispatch: the message travels with the actor and must keep its
        place)."""
        self.queue.appendleft(msg)

    def dequeue(self) -> ActorMessage:
        if not self.queue:
            raise DeliveryError("dequeue from empty mailbox")
        return self.queue.popleft()

    # ------------------------------------------------------------------
    def defer(self, msg: ActorMessage) -> None:
        """Park a message whose method is currently disabled."""
        if not msg.was_deferred:
            msg.was_deferred = True
            self.total_deferred += 1
        self.pending.append(msg)

    def take_pending(self) -> Deque[ActorMessage]:
        """Remove and return the whole pending queue for re-examination
        (the caller re-defers whatever is still disabled)."""
        taken = self.pending
        self.pending = deque()
        return taken

    # ------------------------------------------------------------------
    @property
    def ready_count(self) -> int:
        return len(self.queue)

    @property
    def pending_count(self) -> int:
        return len(self.pending)

    def __len__(self) -> int:
        return len(self.queue) + len(self.pending)

    def __bool__(self) -> bool:
        return bool(self.queue) or bool(self.pending)

    def __iter__(self) -> Iterator[ActorMessage]:
        yield from self.queue
        yield from self.pending

    def drain(self) -> list[ActorMessage]:
        """Remove and return every queued message (migration packs the
        mailbox into the actor's travel state)."""
        out = list(self.queue) + list(self.pending)
        self.queue.clear()
        self.pending.clear()
        return out
