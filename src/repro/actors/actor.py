"""The actor object animated by the runtime kernel.

An :class:`Actor` is pure bookkeeping: behaviour + state + mailbox +
lifecycle flags.  All *execution* (dispatch, constraint checks, cost
charging, scheduling) lives in :mod:`repro.runtime.dispatcher` so the
data structure stays machine-independent and directly unit-testable.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.actors.behavior import Behavior
from repro.actors.mailbox import Mailbox
from repro.errors import BehaviorError, MigrationError


class Actor:
    """A single actor: independent, concurrent, buffered communication."""

    __slots__ = (
        "behavior",
        "state",
        "mailbox",
        "node_id",
        "key",
        "scheduled",
        "busy",
        "migrating",
        "messages_processed",
        "group",
        "group_index",
        "gc_epoch",
    )

    def __init__(
        self,
        behavior: Behavior,
        state: Any,
        node_id: int,
        key: Any = None,
    ) -> None:
        self.behavior = behavior
        self.state = state
        self.mailbox = Mailbox()
        #: Node currently hosting the actor.
        self.node_id = node_id
        #: The actor's mail address (a MailAddress once registered).
        self.key = key
        #: True while sitting in the dispatcher's ready queue.
        self.scheduled = False
        #: True while a method is executing (inline-dispatch guard).
        self.busy = False
        #: True while mid-migration (messages are parked by the kernel).
        self.migrating = False
        self.messages_processed = 0
        #: Last garbage-collection epoch that marked this actor live.
        self.gc_epoch = 0
        #: Group membership (set by grpnew), if any.
        self.group: Optional[Any] = None
        self.group_index: int = -1

    # ------------------------------------------------------------------
    def become(self, behavior: Behavior, state: Any) -> None:
        """Replace behaviour and state (the actor model's ``become``).

        The mail address, mailbox and pending queue are retained — a
        become changes how *future* messages are interpreted, nothing
        else.
        """
        if behavior is None:
            raise BehaviorError("become requires a behaviour")
        self.behavior = behavior
        self.state = state

    # ------------------------------------------------------------------
    def pack_for_migration(self) -> Tuple[Behavior, Any, list]:
        """Capture behaviour, state and all queued mail for transport.

        The mailbox is drained: queued messages travel with the actor
        so delivery order per sender is preserved across the move.
        """
        if self.busy:
            raise MigrationError("cannot pack an actor mid-execution")
        return (self.behavior, self.state, self.mailbox.drain())

    @property
    def ready(self) -> bool:
        """True when the actor has deliverable mail."""
        return self.mailbox.ready_count > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Actor({self.behavior.name}@n{self.node_id}, "
            f"mail={self.mailbox.ready_count}+{self.mailbox.pending_count}p)"
        )
