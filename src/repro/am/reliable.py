"""Reliable-delivery sublayer over the active-message endpoint.

On the CM-5, CMAM gave the paper's protocols exactly-once, ordered
delivery for free.  When the fault injector (:mod:`repro.sim.faults`)
withdraws that guarantee, this layer restores it end-to-end without
touching any protocol handler:

- every outgoing AM is wrapped in a ``__rel__`` envelope carrying a
  per-``(sender, destination)`` **sequence number** (8 bytes of wire
  overhead) — dense from 0 on each directed pair, so a receiver sees
  every seq of the stream it dedupes;
- the receiver immediately acks the sequence number (``__rel_ack__``)
  and runs the inner handler exactly once — duplicates are absorbed by
  a **windowed** per-sender dedupe *before* dispatch: each sender's
  delivered seqs are kept as a contiguous *floor* (every seq at or
  below it was dispatched) plus the out-of-order residue above it, so
  the table's size is bounded by the reordering window, not by the
  connection's lifetime traffic;
- the sender keeps the envelope until acked, retransmitting on timeout
  with exponential backoff, and fails loudly with
  :class:`~repro.errors.ReliabilityError` when the retry budget is
  exhausted (a partitioned network, not a lossy one).

Sends marked **expendable** skip the envelope entirely: they are
fire-and-forget hints (the paper's ``cache_addr`` back-patches) whose
loss only costs a later repair and whose duplication is harmless.  The
layer refuses to send an expendable message to a handler that was not
registered idempotent.

The envelope preserves fault *targeting*: the wire packet is labelled
with the inner handler's name, so a plan that drops 5% of ``fir``
packets hits FIRs whether or not they travel inside envelopes.

A :class:`ReliableTransport` is attached per endpoint by the kernel
exactly when the machine has a fault plan (or ``config.reliability``
forces it); fault-free machines keep the bare endpoint and pay one
``is None`` test per send.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.am.messages import message_nbytes
from repro.config import ReliabilityParams
from repro.errors import HandlerError, ReliabilityError
from repro.stats import StatsRegistry
from repro.tracectx import TraceCtx

#: Wire overhead of the envelope's sequence number.
SEQ_BYTES = 8

#: Ceiling on the exponent fed to ``backoff_factor ** k``.  Attempt
#: counts are unbounded when ``max_retries`` is raised for long-lived
#: network backends, and a float power overflows near ``2.0 ** 1024``
#: — long before that, ``ack_timeout_us * factor**k`` has exceeded any
#: sane ``max_backoff_us``, so clamping the *exponent* loses nothing.
BACKOFF_EXP_CAP = 64

ENV_HANDLER = "__rel__"
ACK_HANDLER = "__rel_ack__"


class ReliableTransport:
    """Per-endpoint at-least-once sender + exactly-once dispatcher."""

    def __init__(
        self,
        endpoint,
        params: ReliabilityParams,
        stats: StatsRegistry,
        *,
        spans=None,
    ) -> None:
        self.ep = endpoint
        self.params = params
        self.node = endpoint.node
        # Span recorder for the error paths: retransmits and delivery
        # failures force their spans past head sampling (a fault run
        # must always show its recovery traffic).  None when the
        # machine is untraced — one cached test per timeout.
        self._spans = (
            spans if spans is not None and spans.enabled else None
        )
        #: Next seq per destination.  Seqs are per directed pair, not
        #: per sender: the receiver's windowed dedupe needs to see a
        #: *dense* stream to advance its contiguous floor.
        self._next_seq: Dict[int, int] = {}
        #: (dst, seq) -> [dst, handler, args, env_nbytes, attempts,
        #:                timer, sent_time, trace_ctx]
        self._pending: Dict[Tuple[int, int], list] = {}
        #: Windowed dedupe state, per sender: ``_floor[src]`` is the
        #: highest seq S such that every seq <= S from ``src`` has been
        #: dispatched; ``_above[src]`` holds the seqs delivered out of
        #: order above that floor.  Senders allocate seqs densely from
        #: 0, so in-order traffic keeps ``_above`` empty and the whole
        #: table is one int per peer — the residue only grows while
        #: reordering/loss holds a gap open.
        self._floor: Dict[int, int] = {}
        self._above: Dict[int, Set[int]] = {}
        self._c_sent = stats.cell("rel.envelopes")
        self._c_acks = stats.cell("rel.acks")
        self._c_retries = stats.cell("rel.retries")
        self._c_timeouts = stats.cell("rel.timeouts")
        self._c_dup = stats.cell("rel.dup_absorbed")
        self._c_expendable = stats.cell("rel.expendable_sends")
        # Ack-packet flight accounting: acks ride am.sends/am.delivered
        # like any packet, but they are pure control traffic — the
        # quiescence probe must exclude them or idle nodes trading
        # steal polls (whose acks are always briefly in flight) would
        # never observe quiescence and poll forever.
        self._c_ack_sent = stats.cell("rel.ack_sent")
        self._c_ack_recv = stats.cell("rel.ack_recv")
        self._rec_rtt = stats.timer("rel.ack_rtt_us").record
        endpoint.register(ENV_HANDLER, self._on_env)
        endpoint.register(ACK_HANDLER, self._on_ack)
        endpoint._rel = self

    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Unacked envelopes held by this sender (white-box for tests
        and the invariant checker)."""
        return len(self._pending)

    @property
    def dedupe_residue(self) -> int:
        """Out-of-order seqs currently held above the contiguous
        floors, summed over senders (white-box for tests: this — not
        total traffic — is what bounds the dedupe table's memory)."""
        return sum(len(s) for s in self._above.values())

    def _now(self) -> float:
        return self.node.time()

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def send(
        self,
        dst: int,
        handler: str,
        args: tuple = (),
        *,
        nbytes: Optional[int] = None,
        charge_sender: bool = True,
        trace_ctx: Optional[tuple] = None,
        expendable: bool = False,
    ) -> None:
        if expendable:
            if not self.ep.handlers.is_idempotent(handler):
                raise HandlerError(
                    f"expendable send to non-idempotent handler {handler!r}; "
                    "register it with idempotent=True or use a tracked send"
                )
            self._c_expendable.n += 1
            self.ep.send_raw(
                dst, handler, args, nbytes=nbytes,
                charge_sender=charge_sender, trace_ctx=trace_ctx,
                wire_kind=handler,
            )
            return
        seq = self._next_seq.get(dst, 0)
        self._next_seq[dst] = seq + 1
        size = nbytes if nbytes is not None else message_nbytes(
            args, self.ep._packet_bytes
        )
        if trace_ctx is not None:
            # Same contract as the bare endpoint: sized before append.
            args = args + (trace_ctx,)
        entry = [dst, handler, args, size + SEQ_BYTES, 0, None, self._now(),
                 trace_ctx]
        self._pending[(dst, seq)] = entry
        self._transmit_env(seq, entry, charge_sender)

    def _transmit_env(self, seq: int, entry: list, charge_sender: bool) -> None:
        dst, handler, args, env_nbytes = entry[0], entry[1], entry[2], entry[3]
        self._c_sent.n += 1
        self.ep.send_raw(
            dst, ENV_HANDLER, (seq, handler, args), nbytes=env_nbytes,
            charge_sender=charge_sender, wire_kind=handler,
        )
        p = self.params
        # Clamp the exponent *before* the power: ``float ** k`` raises
        # OverflowError around k=1024 with the default factor of 2,
        # which a high-max_retries network run can reach.  The except
        # is belt-and-braces for extreme factors below the cap — the
        # product is about to be min()-ed against max_backoff_us
        # anyway, so the ceiling is the right answer on both paths.
        exp = entry[4] if entry[4] < BACKOFF_EXP_CAP else BACKOFF_EXP_CAP
        try:
            backoff = p.ack_timeout_us * (p.backoff_factor ** exp)
        except OverflowError:
            backoff = p.max_backoff_us
        timeout = min(backoff, p.max_backoff_us)
        entry[5] = self.node.execute(
            self._now() + timeout,
            lambda: self._on_timeout(dst, seq),
            label="rel.timeout",
        )

    def _on_timeout(self, dst: int, seq: int) -> None:
        entry = self._pending.get((dst, seq))
        if entry is None:
            return  # acked while the timer event was in flight
        self._c_timeouts.n += 1
        entry[4] += 1
        spans = self._spans
        if entry[4] > self.params.max_retries:
            if spans is not None:
                tctx = entry[7]
                spans.force_span(
                    tctx[0] if tctx is not None else 0,
                    tctx[1] if tctx is not None else 0,
                    f"rel failed {entry[1]}", "rel.failed",
                    self.ep.node_id, self._now(), None, entry[0], seq,
                )
            raise ReliabilityError(
                f"node {self.ep.node_id}: no ack from node {entry[0]} for "
                f"{entry[1]!r} (seq {seq}) after {self.params.max_retries} "
                "retransmits — peer unreachable"
            )
        self._c_retries.n += 1
        if spans is not None:
            # Forced past head sampling: retransmits are recorded even
            # in unsampled traces (and at sample rate 0, where they
            # root their own forced trace).  Successive retransmits of
            # one envelope chain parent→child.
            tctx = entry[7]
            tid, sid = spans.force_span(
                tctx[0] if tctx is not None else 0,
                tctx[1] if tctx is not None else 0,
                f"rel retransmit {entry[1]}", "rel.retransmit",
                self.ep.node_id, self._now(), None, entry[0], entry[4],
            )
            entry[7] = TraceCtx(tid, sid, self._now())
        self._transmit_env(seq, entry, True)

    def _on_ack(self, src: int, seq: int) -> None:
        self._c_ack_recv.n += 1
        entry = self._pending.pop((src, seq), None)
        if entry is None:
            return  # duplicate ack (retransmit raced the first ack)
        self._c_acks.n += 1
        timer = entry[5]
        if timer is not None:
            timer.cancel()
        self._rec_rtt(self._now() - entry[6])

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------
    def _on_env(self, src: int, seq: int, handler: str, args: tuple) -> None:
        # Always ack, even a duplicate: the original ack may be the
        # packet that was lost.
        self._c_ack_sent.n += 1
        self.ep.send_raw(src, ACK_HANDLER, (seq,), wire_kind=ACK_HANDLER)
        floor = self._floor.get(src, -1)
        if seq <= floor:
            self._c_dup.n += 1
            return
        above = self._above.get(src)
        if above is None:
            above = self._above[src] = set()
        if seq in above:
            self._c_dup.n += 1
            return
        if seq == floor + 1:
            # Advance the contiguous floor through any residue it now
            # connects to — this is the pruning step that keeps the
            # table bounded under sustained traffic.
            floor += 1
            while floor + 1 in above:
                floor += 1
                above.discard(floor)
            self._floor[src] = floor
        else:
            above.add(seq)
        ep = self.ep
        fn = ep._handler_table.get(handler)
        if fn is None:
            fn = ep.handlers.lookup(handler)
        fn(src, *args)

    # ------------------------------------------------------------------
    def unacked(self) -> List[Tuple[int, int, str]]:
        """Outstanding (seq, dst, handler) triples, for diagnostics."""
        return [
            (seq, dst, e[1])
            for (dst, seq), e in sorted(self._pending.items())
        ]
