"""Reliable-delivery sublayer over the active-message endpoint.

On the CM-5, CMAM gave the paper's protocols exactly-once, ordered
delivery for free.  When the fault injector (:mod:`repro.sim.faults`)
withdraws that guarantee, this layer restores it end-to-end without
touching any protocol handler:

- every outgoing AM is wrapped in a ``__rel__`` envelope carrying a
  per-sender **sequence number** (8 bytes of wire overhead);
- the receiver immediately acks the sequence number (``__rel_ack__``)
  and runs the inner handler exactly once — duplicates are absorbed by
  a ``(sender, seq)`` seen-set *before* dispatch;
- the sender keeps the envelope until acked, retransmitting on timeout
  with exponential backoff, and fails loudly with
  :class:`~repro.errors.ReliabilityError` when the retry budget is
  exhausted (a partitioned network, not a lossy one).

Sends marked **expendable** skip the envelope entirely: they are
fire-and-forget hints (the paper's ``cache_addr`` back-patches) whose
loss only costs a later repair and whose duplication is harmless.  The
layer refuses to send an expendable message to a handler that was not
registered idempotent.

The envelope preserves fault *targeting*: the wire packet is labelled
with the inner handler's name, so a plan that drops 5% of ``fir``
packets hits FIRs whether or not they travel inside envelopes.

A :class:`ReliableTransport` is attached per endpoint by the kernel
exactly when the machine has a fault plan (or ``config.reliability``
forces it); fault-free machines keep the bare endpoint and pay one
``is None`` test per send.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.am.messages import message_nbytes
from repro.config import ReliabilityParams
from repro.errors import HandlerError, ReliabilityError
from repro.stats import StatsRegistry
from repro.tracectx import TraceCtx

#: Wire overhead of the envelope's sequence number.
SEQ_BYTES = 8

ENV_HANDLER = "__rel__"
ACK_HANDLER = "__rel_ack__"


class ReliableTransport:
    """Per-endpoint at-least-once sender + exactly-once dispatcher."""

    def __init__(
        self,
        endpoint,
        params: ReliabilityParams,
        stats: StatsRegistry,
        *,
        spans=None,
    ) -> None:
        self.ep = endpoint
        self.params = params
        self.node = endpoint.node
        # Span recorder for the error paths: retransmits and delivery
        # failures force their spans past head sampling (a fault run
        # must always show its recovery traffic).  None when the
        # machine is untraced — one cached test per timeout.
        self._spans = (
            spans if spans is not None and spans.enabled else None
        )
        self._seq = 0
        #: seq -> [dst, handler, args, env_nbytes, attempts, timer,
        #:         sent_time, trace_ctx]
        self._pending: Dict[int, list] = {}
        self._seen: Set[Tuple[int, int]] = set()
        self._c_sent = stats.cell("rel.envelopes")
        self._c_acks = stats.cell("rel.acks")
        self._c_retries = stats.cell("rel.retries")
        self._c_timeouts = stats.cell("rel.timeouts")
        self._c_dup = stats.cell("rel.dup_absorbed")
        self._c_expendable = stats.cell("rel.expendable_sends")
        # Ack-packet flight accounting: acks ride am.sends/am.delivered
        # like any packet, but they are pure control traffic — the
        # quiescence probe must exclude them or idle nodes trading
        # steal polls (whose acks are always briefly in flight) would
        # never observe quiescence and poll forever.
        self._c_ack_sent = stats.cell("rel.ack_sent")
        self._c_ack_recv = stats.cell("rel.ack_recv")
        self._rec_rtt = stats.timer("rel.ack_rtt_us").record
        endpoint.register(ENV_HANDLER, self._on_env)
        endpoint.register(ACK_HANDLER, self._on_ack)
        endpoint._rel = self

    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Unacked envelopes held by this sender (white-box for tests
        and the invariant checker)."""
        return len(self._pending)

    def _now(self) -> float:
        return self.node.time()

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def send(
        self,
        dst: int,
        handler: str,
        args: tuple = (),
        *,
        nbytes: Optional[int] = None,
        charge_sender: bool = True,
        trace_ctx: Optional[tuple] = None,
        expendable: bool = False,
    ) -> None:
        if expendable:
            if not self.ep.handlers.is_idempotent(handler):
                raise HandlerError(
                    f"expendable send to non-idempotent handler {handler!r}; "
                    "register it with idempotent=True or use a tracked send"
                )
            self._c_expendable.n += 1
            self.ep.send_raw(
                dst, handler, args, nbytes=nbytes,
                charge_sender=charge_sender, trace_ctx=trace_ctx,
                wire_kind=handler,
            )
            return
        seq = self._seq
        self._seq = seq + 1
        size = nbytes if nbytes is not None else message_nbytes(
            args, self.ep._packet_bytes
        )
        if trace_ctx is not None:
            # Same contract as the bare endpoint: sized before append.
            args = args + (trace_ctx,)
        entry = [dst, handler, args, size + SEQ_BYTES, 0, None, self._now(),
                 trace_ctx]
        self._pending[seq] = entry
        self._transmit_env(seq, entry, charge_sender)

    def _transmit_env(self, seq: int, entry: list, charge_sender: bool) -> None:
        dst, handler, args, env_nbytes = entry[0], entry[1], entry[2], entry[3]
        self._c_sent.n += 1
        self.ep.send_raw(
            dst, ENV_HANDLER, (seq, handler, args), nbytes=env_nbytes,
            charge_sender=charge_sender, wire_kind=handler,
        )
        p = self.params
        timeout = min(
            p.ack_timeout_us * (p.backoff_factor ** entry[4]), p.max_backoff_us
        )
        entry[5] = self.node.execute(
            self._now() + timeout,
            lambda: self._on_timeout(seq),
            label="rel.timeout",
        )

    def _on_timeout(self, seq: int) -> None:
        entry = self._pending.get(seq)
        if entry is None:
            return  # acked while the timer event was in flight
        self._c_timeouts.n += 1
        entry[4] += 1
        spans = self._spans
        if entry[4] > self.params.max_retries:
            if spans is not None:
                tctx = entry[7]
                spans.force_span(
                    tctx[0] if tctx is not None else 0,
                    tctx[1] if tctx is not None else 0,
                    f"rel failed {entry[1]}", "rel.failed",
                    self.ep.node_id, self._now(), None, entry[0], seq,
                )
            raise ReliabilityError(
                f"node {self.ep.node_id}: no ack from node {entry[0]} for "
                f"{entry[1]!r} (seq {seq}) after {self.params.max_retries} "
                "retransmits — peer unreachable"
            )
        self._c_retries.n += 1
        if spans is not None:
            # Forced past head sampling: retransmits are recorded even
            # in unsampled traces (and at sample rate 0, where they
            # root their own forced trace).  Successive retransmits of
            # one envelope chain parent→child.
            tctx = entry[7]
            tid, sid = spans.force_span(
                tctx[0] if tctx is not None else 0,
                tctx[1] if tctx is not None else 0,
                f"rel retransmit {entry[1]}", "rel.retransmit",
                self.ep.node_id, self._now(), None, entry[0], entry[4],
            )
            entry[7] = TraceCtx(tid, sid, self._now())
        self._transmit_env(seq, entry, True)

    def _on_ack(self, src: int, seq: int) -> None:
        self._c_ack_recv.n += 1
        entry = self._pending.pop(seq, None)
        if entry is None:
            return  # duplicate ack (retransmit raced the first ack)
        self._c_acks.n += 1
        timer = entry[5]
        if timer is not None:
            timer.cancel()
        self._rec_rtt(self._now() - entry[6])

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------
    def _on_env(self, src: int, seq: int, handler: str, args: tuple) -> None:
        # Always ack, even a duplicate: the original ack may be the
        # packet that was lost.
        self._c_ack_sent.n += 1
        self.ep.send_raw(src, ACK_HANDLER, (seq,), wire_kind=ACK_HANDLER)
        key = (src, seq)
        if key in self._seen:
            self._c_dup.n += 1
            return
        self._seen.add(key)
        ep = self.ep
        fn = ep._handler_table.get(handler)
        if fn is None:
            fn = ep.handlers.lookup(handler)
        fn(src, *args)

    # ------------------------------------------------------------------
    def unacked(self) -> List[Tuple[int, int, str]]:
        """Outstanding (seq, dst, handler) triples, for diagnostics."""
        return [(seq, e[0], e[1]) for seq, e in sorted(self._pending.items())]
