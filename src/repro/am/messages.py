"""Wire-size model for active-message payloads.

The paper's messages carry a destination mail address, a method
selector and often a continuation address; bulk messages carry matrix
blocks.  The byte estimate below drives NIC serialisation and the
receive-buffer occupancy in the network model, so it only needs to be
*consistent*, not exact: scalars cost one 1995-era machine word,
containers cost the sum of their elements plus a small header, and
NumPy arrays cost their true buffer size.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.tracectx import TraceCtx

#: Bytes per scalar value (a 1995 machine word).
WORD_BYTES = 4
#: Fixed per-container overhead.
CONTAINER_HEADER_BYTES = 4
#: Maximum recursion depth when sizing nested payloads.
_MAX_DEPTH = 16


def payload_nbytes(value: Any, _depth: int = 0) -> int:
    """Estimate the wire size of ``value`` in bytes (at least one word)."""
    if _depth > _MAX_DEPTH:
        return WORD_BYTES
    if isinstance(value, TraceCtx):
        # Observability metadata is out-of-band: a NamedTuple, so it
        # must be intercepted before the generic tuple branch below.
        return TraceCtx.WIRE_BYTES
    if value is None or isinstance(value, (bool, int, float)):
        return WORD_BYTES
    if isinstance(value, str):
        return CONTAINER_HEADER_BYTES + len(value.encode("utf-8"))
    if isinstance(value, bytes):
        return CONTAINER_HEADER_BYTES + len(value)
    if isinstance(value, np.ndarray):
        return CONTAINER_HEADER_BYTES + int(value.nbytes)
    if isinstance(value, np.generic):
        return int(value.nbytes)
    if isinstance(value, (tuple, list, set, frozenset)):
        return CONTAINER_HEADER_BYTES + sum(
            payload_nbytes(v, _depth + 1) for v in value
        )
    if isinstance(value, dict):
        return CONTAINER_HEADER_BYTES + sum(
            payload_nbytes(k, _depth + 1) + payload_nbytes(v, _depth + 1)
            for k, v in value.items()
        )
    # Opaque runtime objects (mail addresses, descriptors carried in
    # protocol messages) marshal to a few words.
    size_hint = getattr(value, "WIRE_BYTES", None)
    if size_hint is not None:
        return int(size_hint)
    return 2 * WORD_BYTES


def message_nbytes(args: tuple, packet_bytes: int) -> int:
    """Total wire size of an AM with ``args``, including the header."""
    return packet_bytes + sum(payload_nbytes(a) for a in args)
