"""Per-node active-message endpoint (the CMAM interface).

An :class:`Endpoint` is the kernel's communication module's view of the
machine: ``send`` injects a message whose named handler runs on the
destination CPU at delivery.  The endpoint charges the CPU costs the
paper attributes to the messaging layer (send overhead on the sender,
handler-entry overhead on the receiver); wire and NIC serialisation
costs live in :class:`repro.sim.network.Network`.

Endpoints of one machine share a *directory* (``dict[int, Endpoint]``)
so a sender can hand delivery to the destination endpoint's handler
table — the moral equivalent of all nodes running the same program
image with the same handler indices.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.am.handler import Handler, HandlerRegistry
from repro.am.messages import message_nbytes
from repro.errors import HandlerError, NetworkError
from repro.sim.engine import SimNode
from repro.sim.network import Network
from repro.sim.stats import StatsRegistry
from repro.sim.trace import TraceLog


class Endpoint:
    """One node's attachment point to the messaging layer."""

    def __init__(
        self,
        node: SimNode,
        network: Network,
        directory: Dict[int, "Endpoint"],
        stats: StatsRegistry,
        trace: TraceLog,
        *,
        send_overhead_us: float,
        receive_overhead_us: float,
    ) -> None:
        self.node = node
        self.network = network
        self.directory = directory
        self.stats = stats
        self.trace = trace
        self.send_overhead_us = send_overhead_us
        self.receive_overhead_us = receive_overhead_us
        self.handlers = HandlerRegistry()
        #: Messages delivered to this endpoint (white-box for tests).
        self.delivered: int = 0
        if node.node_id in directory:
            raise HandlerError(f"node {node.node_id} already has an endpoint")
        directory[node.node_id] = self

    # ------------------------------------------------------------------
    @property
    def node_id(self) -> int:
        return self.node.node_id

    def register(self, name: str, fn: Handler, *, replace: bool = False) -> None:
        self.handlers.register(name, fn, replace=replace)

    # ------------------------------------------------------------------
    def send(
        self,
        dst: int,
        handler: str,
        args: tuple = (),
        *,
        nbytes: Optional[int] = None,
        charge_sender: bool = True,
    ) -> None:
        """Send an active message to node ``dst``.

        The sender's CPU is charged ``send_overhead_us``; the message
        is then injected into the network.  ``nbytes`` overrides the
        payload-size estimate (used by the bulk protocol, which sizes
        the data phase explicitly).
        """
        if dst == self.node_id:
            raise NetworkError(
                "Endpoint.send is remote-only; local work runs directly"
            )
        peer = self.directory.get(dst)
        if peer is None:
            raise NetworkError(f"no endpoint attached at node {dst}")
        if charge_sender:
            self.node.charge(self.send_overhead_us)
        size = nbytes if nbytes is not None else message_nbytes(
            args, self.network.params.packet_bytes
        )
        src = self.node_id
        self.stats.incr("am.sends")
        self.trace.emit(self.node.now, src, "am.send", handler, dst, size)

        def transmit() -> None:
            self.network.unicast(
                src, dst, size,
                lambda: peer._deliver(src, handler, args),
                label=f"am:{handler}",
            )

        # A long-running handler may issue this send with its virtual
        # clock far ahead of the global event clock.  Mutating the
        # shared NIC state *now* would let this future send delay
        # other nodes' earlier (but not-yet-executed) messages.  Defer
        # the transmission to an event at its true simulated time so
        # network state is always touched in time order.
        issue_at = self.node.now if self.node.in_handler else self.network.sim.now
        if issue_at > self.network.sim.now:
            self.network.sim.schedule(issue_at, transmit, label=f"am.tx:{handler}")
        else:
            transmit()

    def _deliver(self, src: int, handler: str, args: tuple) -> None:
        """Runs on this (destination) node's CPU, scheduled by the network."""
        self.node.charge(self.receive_overhead_us)
        self.delivered += 1
        self.stats.incr("am.delivered")
        self.trace.emit(self.node.now, self.node_id, "am.recv", handler, src)
        self.handlers.lookup(handler)(src, *args)

    # ------------------------------------------------------------------
    def run_local(self, handler: str, args: tuple = ()) -> None:
        """Invoke a handler on this node without touching the network.

        Used by the broadcast tree when the root is also a recipient.
        """
        self.handlers.lookup(handler)(self.node_id, *args)
