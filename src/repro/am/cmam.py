"""Per-node active-message endpoint (the CMAM interface).

An :class:`Endpoint` is the kernel's communication module's view of the
machine: ``send`` injects a message whose named handler runs on the
destination CPU at delivery.  The endpoint charges the CPU costs the
paper attributes to the messaging layer (send overhead on the sender,
handler-entry overhead on the receiver); wire and NIC serialisation
costs live in the platform transport (on the simulator,
:class:`repro.sim.network.Network`).

The endpoint is written against the platform seam
(:class:`~repro.platform.base.NodeExecutor` /
:class:`~repro.platform.base.Transport`), so the same send/deliver
code runs on the discrete-event and the real-time threaded backends.

Endpoints of one machine share a *directory* (``dict[int, Endpoint]``)
so a sender can hand delivery to the destination endpoint's handler
table — the moral equivalent of all nodes running the same program
image with the same handler indices.

The send/deliver pair is the single hottest path in the repository
(every actor message, FIR, steal and bulk phase crosses it), so it is
written allocation-free when tracing is off: counter cells and the
resolved handler table are bound once at construction, payloads ride
the engine's ``args`` pass-through instead of a closure chain, and
trace emission is guarded by one cached flag.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.am.handler import Handler, HandlerRegistry
from repro.am.messages import message_nbytes
from repro.errors import HandlerError, NetworkError
from repro.platform.base import NodeExecutor, Transport
from repro.stats import StatsRegistry
from repro.tracectx import TraceCtx
from repro.tracing import TraceLog


class Endpoint:
    """One node's attachment point to the messaging layer."""

    def __init__(
        self,
        node: NodeExecutor,
        network: Transport,
        directory: Dict[int, "Endpoint"],
        stats: StatsRegistry,
        trace: TraceLog,
        *,
        send_overhead_us: float,
        receive_overhead_us: float,
    ) -> None:
        if send_overhead_us < 0 or receive_overhead_us < 0:
            raise NetworkError("endpoint overheads must be non-negative")
        self.node = node
        self.network = network
        self.directory = directory
        self.stats = stats
        self.trace = trace
        self.send_overhead_us = send_overhead_us
        self.receive_overhead_us = receive_overhead_us
        self.handlers = HandlerRegistry()
        #: Messages delivered to this endpoint (white-box for tests).
        self.delivered: int = 0
        if node.node_id in directory:
            raise HandlerError(f"node {node.node_id} already has an endpoint")
        directory[node.node_id] = self
        # Hot-path bindings: counter cells (no string hash per message),
        # the registry's live name->fn table (no lookup() call per
        # delivery), the cached trace flag, and the packet header size.
        self._c_sends = stats.cell("am.sends")
        self._c_delivered = stats.cell("am.delivered")
        self._handler_table = self.handlers.resolved_table()
        self._trace_on = bool(trace.enabled)
        self._packet_bytes = network.params.packet_bytes
        #: Reliable-delivery sublayer (attached by the kernel on faulty
        #: machines; see :mod:`repro.am.reliable`).  ``None`` keeps the
        #: bare fast path: one is-None test per send.
        self._rel = None
        # A wire-only transport (distributed backend) routes packets by
        # destination id and never invokes the delivery callback on the
        # sending side, so the peer-endpoint lookup must not be a hard
        # requirement there: remote nodes live in other processes and
        # have no entry in this directory.
        self._wire_only = bool(getattr(network, "wire_only", False))
        # On a faulty network every packet must be labelled with its
        # message kind or the injector's per-kind rules cannot see it —
        # this matters when reliability is explicitly disabled (the
        # envelope layer normally labels for us).  Cached boolean keeps
        # the fault-free send path unchanged.
        self._faulty_net = network._faults_on

    # ------------------------------------------------------------------
    @property
    def node_id(self) -> int:
        return self.node.node_id

    def register(
        self,
        name: str,
        fn: Handler,
        *,
        replace: bool = False,
        idempotent: bool = False,
    ) -> None:
        self.handlers.register(name, fn, replace=replace, idempotent=idempotent)

    # ------------------------------------------------------------------
    def send(
        self,
        dst: int,
        handler: str,
        args: tuple = (),
        *,
        nbytes: Optional[int] = None,
        charge_sender: bool = True,
        trace_ctx: Optional[tuple] = None,
        expendable: bool = False,
    ) -> None:
        """Send an active message to node ``dst``.

        The sender's CPU is charged ``send_overhead_us``; the message
        is then injected into the network.  ``nbytes`` overrides the
        payload-size estimate (used by the bulk protocol, which sizes
        the data phase explicitly).  ``trace_ctx`` (a
        :class:`repro.tracectx.TraceCtx`) rides as a trailing argument
        appended *after* the wire size is computed, so causal tracing
        never perturbs simulated network time.  ``expendable`` marks a
        fire-and-forget hint (e.g. a ``cache_addr`` back-patch) whose
        loss is harmless: when the reliable sublayer is active such
        sends skip the ack/retry machinery.
        """
        rel = self._rel
        if rel is not None:
            rel.send(
                dst, handler, args, nbytes=nbytes,
                charge_sender=charge_sender, trace_ctx=trace_ctx,
                expendable=expendable,
            )
            return
        if self._faulty_net:
            # Faulty machine without the reliable sublayer (reliability
            # explicitly disabled): still label the wire packet so
            # per-kind fault rules apply to it.
            self.send_raw(
                dst, handler, args, nbytes=nbytes,
                charge_sender=charge_sender, trace_ctx=trace_ctx,
                wire_kind=handler,
            )
            return
        node = self.node
        if dst == node.node_id:
            raise NetworkError(
                "Endpoint.send is remote-only; local work runs directly"
            )
        peer = self.directory.get(dst)
        if peer is None:
            if not self._wire_only:
                raise NetworkError(f"no endpoint attached at node {dst}")
            # Wire-only transport: the callback is ignored (delivery is
            # re-bound on the destination process); stand in for the
            # absent peer with ourselves so the transmit path is shared.
            peer = self
        if charge_sender:
            # Inlined node.charge(self.send_overhead_us); the overhead
            # was validated non-negative at construction.
            node.now += self.send_overhead_us
            node.busy_us += self.send_overhead_us
        size = nbytes if nbytes is not None else message_nbytes(
            args, self._packet_bytes
        )
        self._c_sends.n += 1
        if self._trace_on and (trace_ctx is None or trace_ctx.trace_id & 1):
            # Event records follow the trace's head-sampling verdict
            # (the trace ID's low bit); context-free sends are always
            # logged.  At the default rate 1.0 every bit is set, so
            # this is the historical always-log behaviour.
            self.trace.emit(node.now, node.node_id, "am.send", handler, dst, size)
        if trace_ctx is not None:
            # Out-of-band metadata: appended after sizing (and TraceCtx
            # is defensively sized 0 in payload_nbytes anyway).
            args = args + (trace_ctx,)

        # A long-running handler may issue this send with its virtual
        # clock far ahead of the global event clock.  Mutating the
        # shared NIC state *now* would let this future send delay
        # other nodes' earlier (but not-yet-executed) messages.
        # ``defer`` re-posts the transmission at its true platform time
        # (the simulator's lazy-charge divergence); backends whose
        # clocks never diverge call straight through.
        node.defer(self._transmit, (dst, peer, handler, args, size))

    def _transmit(
        self, dst: int, peer: "Endpoint", handler: str, args: tuple, size: int
    ) -> None:
        # The label names the message kind: free on the fault-free sim
        # path (only the fault injector and the threaded transport's
        # chatter classification read it).
        self.network.unicast(
            self.node.node_id, dst, size,
            peer._deliver, (self.node.node_id, handler, args),
            label=handler,
        )

    # ------------------------------------------------------------------
    def send_raw(
        self,
        dst: int,
        handler: str,
        args: tuple = (),
        *,
        nbytes: Optional[int] = None,
        charge_sender: bool = True,
        trace_ctx: Optional[tuple] = None,
        wire_kind: Optional[str] = None,
    ) -> None:
        """Send bypassing the reliable sublayer.

        Used by :class:`~repro.am.reliable.ReliableTransport` for its
        envelopes, acks, retransmits and expendable sends.  The wire
        packet is labelled ``wire_kind`` (defaulting to ``handler``) so
        the fault injector targets the *logical* message kind even when
        it travels inside a ``__rel__`` envelope.
        """
        node = self.node
        if dst == node.node_id:
            raise NetworkError(
                "Endpoint.send_raw is remote-only; local work runs directly"
            )
        peer = self.directory.get(dst)
        if peer is None:
            if not self._wire_only:
                raise NetworkError(f"no endpoint attached at node {dst}")
            peer = self  # wire-only: routed by dst, callback unused
        if charge_sender:
            node.now += self.send_overhead_us
            node.busy_us += self.send_overhead_us
        size = nbytes if nbytes is not None else message_nbytes(
            args, self._packet_bytes
        )
        self._c_sends.n += 1
        if self._trace_on and (trace_ctx is None or trace_ctx.trace_id & 1):
            self.trace.emit(node.now, node.node_id, "am.send", handler, dst, size)
        if trace_ctx is not None:
            args = args + (trace_ctx,)
        kind = wire_kind if wire_kind is not None else handler
        node.defer(
            self._transmit_kinded, (dst, peer, handler, args, size, kind)
        )

    def _transmit_kinded(
        self, dst: int, peer: "Endpoint", handler: str, args: tuple,
        size: int, kind: str,
    ) -> None:
        self.network.unicast(
            self.node.node_id, dst, size,
            peer._deliver, (self.node.node_id, handler, args),
            label=kind,
        )

    def _deliver(self, src: int, handler: str, args: tuple) -> None:
        """Runs on this (destination) node's CPU, scheduled by the network."""
        node = self.node
        # Inlined node.charge(self.receive_overhead_us).
        node.now += self.receive_overhead_us
        node.busy_us += self.receive_overhead_us
        self.delivered += 1
        self._c_delivered.n += 1
        if self._trace_on:
            # Mirror the send side's head-sampling gate: the context, if
            # any, rides as the trailing argument (appended by send).
            tail = args[-1] if args else None
            if type(tail) is not TraceCtx or tail.trace_id & 1:
                self.trace.emit(node.now, node.node_id, "am.recv", handler, src)
        fn = self._handler_table.get(handler)
        if fn is None:
            # Raises the canonical HandlerError for unknown names.
            fn = self.handlers.lookup(handler)
        fn(src, *args)

    # ------------------------------------------------------------------
    def run_local(self, handler: str, args: tuple = ()) -> None:
        """Invoke a handler on this node without touching the network.

        Used by the broadcast tree when the root is also a recipient.
        """
        self.handlers.lookup(handler)(self.node_id, *args)
