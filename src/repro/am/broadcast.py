"""Spanning-tree multicast over point-to-point active messages.

The paper implements ``broadcast`` "in terms of point-to-point
communication, using a hypercube-like minimum spanning tree" (§3,
§6.4).  :class:`TreeMulticaster` wires one forwarding handler into
every endpoint; a multicast carries its root so each node can compute
its children locally from the topology.

The *user* handler runs once per node (including the root).  Group
fan-out to individual actors on a node is the runtime's job (collective
scheduling, :mod:`repro.runtime.scheduling`); this layer only gets one
copy of the message to every node.
"""

from __future__ import annotations

from typing import Dict

from repro.am.cmam import Endpoint
from repro.errors import HandlerError
from repro.topology import Topology

_TREE_HANDLER = "__mcast.tree__"


class TreeMulticaster:
    """Binds the tree-forwarding handler on every endpoint of a machine."""

    def __init__(self, topology: Topology, directory: Dict[int, Endpoint]) -> None:
        self.topology = topology
        self.directory = directory
        self._installed = False

    def install(self) -> None:
        """Register the forwarding handler on all endpoints.  Call once
        after every node's endpoint has been constructed."""
        if self._installed:
            raise HandlerError("TreeMulticaster.install called twice")
        for endpoint in self.directory.values():
            endpoint.register(_TREE_HANDLER, self._make_forwarder(endpoint))
        self._installed = True

    def _make_forwarder(self, endpoint: Endpoint):
        def forward(src: int, root: int, handler: str, args: tuple,
                    trace_ctx=None) -> None:
            me = endpoint.node_id
            # One payload tuple shared across all children: wire
            # transports that serialise (the mp backend) key a payload
            # cache on tuple identity, so the fan-out pickles once.
            # The trace context (absent on untraced machines, and on mp
            # where spans are unsupported) is relayed verbatim — the
            # runtime layer above records the spans, so every node's
            # delivery parents to the multicast's root span.
            payload = (root, handler, args)
            for child in self.topology.spanning_tree_children(root, me):
                endpoint.send(child, _TREE_HANDLER, payload,
                              trace_ctx=trace_ctx)
            if trace_ctx is not None:
                endpoint.run_local(handler, args + (trace_ctx,))
            else:
                endpoint.run_local(handler, args)
        return forward

    # ------------------------------------------------------------------
    def multicast(self, endpoint: Endpoint, handler: str, args: tuple = (),
                  *, trace_ctx=None) -> None:
        """Deliver ``handler(args)`` once on every node, rooted at
        ``endpoint``'s node.  Runs locally at the root immediately.
        ``trace_ctx`` rides the tree so deliveries join the sender's
        causal trace (zero wire bytes, like any TraceCtx)."""
        if not self._installed:
            raise HandlerError("TreeMulticaster not installed")
        root = endpoint.node_id
        payload = (root, handler, args)
        if trace_ctx is not None:
            payload = payload + (trace_ctx,)
        endpoint.run_local(_TREE_HANDLER, payload)

    def tree_edges(self, root: int) -> list[tuple[int, int]]:
        """All (parent, child) edges of the broadcast tree (for tests)."""
        edges: list[tuple[int, int]] = []
        stack = [root]
        while stack:
            me = stack.pop()
            for child in self.topology.spanning_tree_children(root, me):
                edges.append((me, child))
                stack.append(child)
        return edges
