"""Three-phase bulk transfer protocol (CMAM ``xfer``).

Active messages are not buffered, so bulk data moves in three phases
(§6.5): the sender issues a small *request*; the receiving node manager
*acks* when the transfer may proceed (subject to the flow-control
policy); the sender then injects the *data* message, whose arrival runs
the user's completion handler.

Each node owns one :class:`BulkManager`; senders park the pending
payload locally until the ack returns, exactly like keeping the source
buffer alive until the transfer completes.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Tuple

from repro.am.cmam import Endpoint
from repro.am.flowcontrol import FlowControlPolicy, TransferKey
from repro.errors import FlowControlError

_H_REQ = "__bulk.req__"
_H_ACK = "__bulk.ack__"
_H_DATA = "__bulk.data__"

#: Completion handler: ``fn(src_node, payload)``.
Completion = Callable[[int, tuple], None]


class BulkManager:
    """Per-node endpoint extension implementing the three-phase protocol."""

    def __init__(
        self,
        endpoint: Endpoint,
        policy: FlowControlPolicy,
        *,
        request_cpu_us: float,
        ack_cpu_us: float,
    ) -> None:
        self.endpoint = endpoint
        self.policy = policy
        self.request_cpu_us = request_cpu_us
        self.ack_cpu_us = ack_cpu_us
        self._ids = itertools.count(1)
        # Sender side: transfer_id -> (dst, handler, args, nbytes)
        self._outgoing: Dict[int, Tuple[int, str, tuple, int]] = {}
        # Receiver side: (src, transfer_id) -> nbytes (awaiting data)
        self._inbound: Dict[TransferKey, int] = {}
        endpoint.register(_H_REQ, self._on_request)
        endpoint.register(_H_ACK, self._on_ack)
        endpoint.register(_H_DATA, self._on_data)

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def send_bulk(self, dst: int, handler: str, args: tuple, nbytes: int,
                  *, trace_ctx: tuple | None = None) -> int:
        """Start a bulk transfer of ``nbytes`` to ``dst``; ``handler``
        runs there with ``args`` when the data lands.  Returns the
        transfer id (useful in tests).  ``trace_ctx`` rides the data
        phase as a trailing argument; the phase is sized by the
        explicit ``nbytes``, so causal context never changes wire
        time."""
        if nbytes <= 0:
            raise FlowControlError(f"bulk transfer of {nbytes} bytes")
        if trace_ctx is not None:
            args = args + (trace_ctx,)
        tid = next(self._ids)
        self._outgoing[tid] = (dst, handler, args, nbytes)
        self.endpoint.stats.incr("bulk.requests")
        self.endpoint.send(dst, _H_REQ, (tid, nbytes))
        return tid

    def _on_ack(self, src: int, tid: int) -> None:
        try:
            dst, handler, args, nbytes = self._outgoing.pop(tid)
        except KeyError:
            raise FlowControlError(f"ack for unknown transfer {tid}") from None
        if dst != src:
            raise FlowControlError(f"ack for transfer {tid} from wrong node {src}")
        self.endpoint.stats.incr("bulk.data_sends")
        self.endpoint.send(dst, _H_DATA, (tid, handler, args), nbytes=nbytes)

    # ------------------------------------------------------------------
    # receiver side (node-manager role)
    # ------------------------------------------------------------------
    def _on_request(self, src: int, tid: int, nbytes: int) -> None:
        self.endpoint.node.charge(self.request_cpu_us)
        key: TransferKey = (src, tid)
        self._inbound[key] = nbytes
        if self.policy.on_request(key, nbytes):
            self._send_ack(key)
        else:
            self.endpoint.stats.incr("bulk.fc_deferred")

    def _send_ack(self, key: TransferKey) -> None:
        src, tid = key
        self.endpoint.node.charge(self.ack_cpu_us)
        self.endpoint.send(src, _H_ACK, (tid,))

    def _on_data(self, src: int, tid: int, handler: str, args: tuple) -> None:
        key: TransferKey = (src, tid)
        if key not in self._inbound:
            raise FlowControlError(f"data for unannounced transfer {key}")
        del self._inbound[key]
        self.endpoint.stats.incr("bulk.completions")
        nxt = self.policy.on_complete(key)
        if nxt is not None:
            self._send_ack(nxt)
        self.endpoint.handlers.lookup(handler)(src, *args)

    # ------------------------------------------------------------------
    @property
    def pending_outgoing(self) -> int:
        return len(self._outgoing)

    @property
    def pending_inbound(self) -> int:
        return len(self._inbound)
