"""Flow-control policies for the three-phase bulk protocol.

The paper (§6.5): "A node manager controls sending the acknowledgment
for a bulk data transfer request to the requesting node so that only
one such transfer is active at a time."  :class:`MinimalFlowControl`
is that policy; :class:`AcceptAll` is the ablation (no flow control),
under which concurrent bulks to one node overflow its receive buffer
and pay the network model's back-up penalty — exactly the failure mode
Table 1's pipelined Cholesky exposes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.errors import FlowControlError

#: (src_node, transfer_id) uniquely names an inbound transfer.
TransferKey = Tuple[int, int]


class FlowControlPolicy:
    """Decides when a bulk-transfer request may be acknowledged."""

    def on_request(self, key: TransferKey, nbytes: int) -> bool:
        """Return True if the transfer may be acked immediately."""
        raise NotImplementedError

    def on_complete(self, key: TransferKey) -> Optional[TransferKey]:
        """Called when a transfer's data has arrived; returns the next
        queued transfer to ack, if any."""
        raise NotImplementedError


class AcceptAll(FlowControlPolicy):
    """No flow control: every request is acked immediately."""

    def on_request(self, key: TransferKey, nbytes: int) -> bool:
        return True

    def on_complete(self, key: TransferKey) -> Optional[TransferKey]:
        return None


class MinimalFlowControl(FlowControlPolicy):
    """At most ``max_active`` inbound transfers at a time (paper: 1)."""

    def __init__(self, max_active: int = 1) -> None:
        if max_active < 1:
            raise FlowControlError("max_active must be >= 1")
        self.max_active = max_active
        self._active: set[TransferKey] = set()
        self._waiting: Deque[TransferKey] = deque()

    def on_request(self, key: TransferKey, nbytes: int) -> bool:
        if key in self._active:
            raise FlowControlError(f"duplicate bulk request {key}")
        if key in self._waiting:
            # Duplicate of a queued request (a retransmitted wire
            # packet): the key is already in line and will be acked
            # exactly once when its turn comes.  Re-appending it would
            # ack the transfer twice.
            return False
        if len(self._active) < self.max_active:
            self._active.add(key)
            return True
        self._waiting.append(key)
        return False

    def on_complete(self, key: TransferKey) -> Optional[TransferKey]:
        if key not in self._active:
            raise FlowControlError(f"completion for inactive transfer {key}")
        self._active.remove(key)
        if self._waiting:
            nxt = self._waiting.popleft()
            self._active.add(nxt)
            return nxt
        return None

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def waiting_count(self) -> int:
        return len(self._waiting)
