"""Handler registry for active messages.

CMAM identifies handlers by index compiled into the program image; we
identify them by name.  Each node's endpoint holds its own registry so
a kernel can bind its own node-manager methods, but handler *names*
must agree across nodes (they are part of the wire format).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable

from repro.errors import HandlerError

#: Handler signature: ``fn(src_node, *args)`` run on the receiving
#: node's CPU at delivery time.
Handler = Callable[..., None]


class HandlerRegistry:
    """Name → handler mapping with explicit registration discipline."""

    def __init__(self) -> None:
        self._handlers: Dict[str, Handler] = {}
        self._idempotent: set[str] = set()

    def register(
        self,
        name: str,
        fn: Handler,
        *,
        replace: bool = False,
        idempotent: bool = False,
    ) -> None:
        """Bind ``name`` to ``fn``.

        Re-registration without ``replace=True`` raises — a silent
        rebind is almost always a programming error in kernel boot.
        ``idempotent=True`` declares that re-running the handler for a
        duplicated packet is harmless; only such handlers may be the
        target of an *expendable* (untracked, fire-and-forget) send
        when the reliable sublayer is active.
        """
        if not name:
            raise HandlerError("handler name must be non-empty")
        if name in self._handlers and not replace:
            raise HandlerError(f"handler {name!r} already registered")
        self._handlers[name] = fn
        if idempotent:
            self._idempotent.add(name)

    def is_idempotent(self, name: str) -> bool:
        return name in self._idempotent

    def resolved_table(self) -> Dict[str, Handler]:
        """The live name → handler dict, for delivery fast paths that
        want a single ``dict.get`` per message.  The same dict object
        is mutated by :meth:`register`, so a binding taken at boot sees
        later (re-)registrations.  Callers must treat it as read-only.
        """
        return self._handlers

    def lookup(self, name: str) -> Handler:
        try:
            return self._handlers[name]
        except KeyError:
            raise HandlerError(f"no handler registered for {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._handlers

    def names(self) -> Iterable[str]:
        return sorted(self._handlers)

    def __len__(self) -> int:
        return len(self._handlers)
