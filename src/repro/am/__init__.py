"""Active-messages layer (the CMAM substitute).

CMAM properties the runtime relies on, all modelled here:

- messages carry a handler index executed on arrival (no buffering at
  the messaging layer) — :mod:`repro.am.cmam`;
- bulk data moves through a three-phase request/ack/data protocol —
  :mod:`repro.am.bulk`;
- broadcast is built from point-to-point sends over a hypercube-like
  minimum spanning tree — :mod:`repro.am.broadcast`;
- the node manager performs minimal flow control so only one bulk
  transfer is inbound per node at a time — :mod:`repro.am.flowcontrol`.
"""

from repro.am.broadcast import TreeMulticaster
from repro.am.bulk import BulkManager
from repro.am.cmam import Endpoint
from repro.am.flowcontrol import AcceptAll, FlowControlPolicy, MinimalFlowControl
from repro.am.handler import HandlerRegistry
from repro.am.messages import payload_nbytes

__all__ = [
    "Endpoint",
    "HandlerRegistry",
    "TreeMulticaster",
    "BulkManager",
    "FlowControlPolicy",
    "MinimalFlowControl",
    "AcceptAll",
    "payload_nbytes",
]
