"""Exception hierarchy for the HAL-runtime reproduction.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures without masking programming
errors in their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SimulationError(ReproError):
    """The discrete-event engine was driven into an invalid state."""


class CausalityError(SimulationError):
    """An event was scheduled in the simulated past."""


class TopologyError(ReproError):
    """An invalid node id or partition shape was used."""


class NetworkError(ReproError):
    """The interconnect model rejected a transmission."""


class HandlerError(ReproError):
    """An active-message handler was missing or misused."""


class NameServiceError(ReproError):
    """The distributed name server was driven into an invalid state."""


class UnknownActorError(NameServiceError):
    """A mail address does not (and can never) resolve to an actor."""


class MigrationError(ReproError):
    """An actor migration request could not be honoured."""


class DeliveryError(ReproError):
    """A message could not be delivered to its target actor."""


class SchedulingError(ReproError):
    """The dispatcher or an inline-invocation plan was misused."""


class ConstraintError(ReproError):
    """A local synchronization constraint was declared incorrectly."""


class ContinuationError(ReproError):
    """A join continuation was used after firing or with bad slots."""


class BehaviorError(ReproError):
    """A behaviour definition is malformed (bad method, bad become)."""


class CompileError(ReproError):
    """The HAL compiler could not analyse or lower a behaviour.

    Carries the position of the offending construct when known:
    ``behavior`` and ``method`` name the method, ``lineno`` is the
    absolute line in the defining source file (so editors and CI logs
    can point straight at it).
    """

    def __init__(
        self,
        message: str,
        *,
        behavior: "str | None" = None,
        method: "str | None" = None,
        lineno: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.behavior = behavior
        self.method = method
        self.lineno = lineno


class TypeInferenceError(CompileError):
    """Constraint-based type inference found an inconsistency."""


class GroupError(ReproError):
    """An actor-group (``grpnew``) operation failed."""


class LoadError(ReproError):
    """The program load module rejected an executable."""


class FlowControlError(ReproError):
    """The bulk-transfer flow-control protocol was violated."""


class ReliabilityError(ReproError):
    """The reliable-delivery sublayer exhausted its retry budget."""


class InvariantViolation(ReproError):
    """A post-run invariant check failed (see :mod:`repro.sim.invariants`)."""
