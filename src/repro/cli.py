"""Command-line interface: regenerate the paper's tables, inspect the
compiler, and export causal traces.

::

    python -m repro tables            # every table, small configs
    python -m repro table2            # just the runtime primitives
    python -m repro table4 --n 22 --nodes 16
    python -m repro compile-report    # what the HAL compiler decided
    python -m repro run fibonacci_loadbalance --backend threaded
    python -m repro trace migration_tour --out tour.json
    python -m repro stats fibonacci_loadbalance --json
    python -m repro faults migration_tour --seed 7 --drop 0.05 --dup 0.05
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.reporting import fmt_ms, fmt_s, fmt_us, render_hists, render_table


def _cmd_table1(args) -> None:
    from repro.apps.cholesky import VARIANTS, run_cholesky
    rows = []
    for p in args.partitions:
        results = {v: run_cholesky(v, args.n, p) for v in VARIANTS}
        rows.append([f"P={p}"] + [fmt_ms(results[v].elapsed_us) for v in VARIANTS])
    print(render_table(
        f"Table 1 — Cholesky decomposition, n={args.n} (simulated ms)",
        ["", *VARIANTS], rows,
        note="BP/CP: pipelined, local synchronization only; "
             "Seq/Bcast: global synchronization.",
    ))


def _cmd_table2(args) -> None:
    from repro.apps import microbench as mb
    rows = []
    rt = mb.fresh_runtime(4)
    rows.append(("local creation", fmt_us(mb.measure_local_creation(rt)), "-"))
    rt = mb.fresh_runtime(4)
    rows.append(("remote creation (issue, alias)",
                 fmt_us(mb.measure_remote_creation_issue(rt)), "5.83"))
    rt = mb.fresh_runtime(4)
    rows.append(("remote creation (actual)",
                 fmt_us(mb.measure_remote_creation_actual(rt)), "20.83"))
    rt = mb.fresh_runtime(4)
    rows.append(("locality check (local actor)",
                 fmt_us(mb.measure_locality_check(rt)), "< 1"))
    print(render_table(
        "Table 2 — runtime primitives (simulated us)",
        ["primitive", "measured", "paper"], rows,
    ))


def _cmd_table3(args) -> None:
    from repro.apps.microbench import measure_invocation_regimes
    regimes = measure_invocation_regimes()
    print(render_table(
        "Table 3 — method-invocation costs (simulated us)",
        ["dispatch mechanism", "us"],
        [(k, fmt_us(v)) for k, v in regimes.items()],
    ))


def _cmd_table4(args) -> None:
    from repro.apps.fibonacci import c_model_us, cilk_model_us, fib_calls, run_fib
    rows = []
    for p in args.partitions:
        static = run_fib(args.n, p, load_balance=False)
        lb = run_fib(args.n, p, load_balance=True) if p > 1 else None
        rows.append((f"P={p}", fmt_s(static.elapsed_us),
                     fmt_s(lb.elapsed_us) if lb else "-",
                     lb.steals if lb else 0))
    rows.append(("Cilk (modelled)", fmt_s(cilk_model_us(args.n)), "-", "-"))
    rows.append(("optimised C (modelled)", fmt_s(c_model_us(args.n)), "-", "-"))
    print(render_table(
        f"Table 4 — Fibonacci({args.n}) = {fib_calls(args.n):,} tasks "
        "(simulated s)",
        ["", "static", "load balancing", "steals"], rows,
    ))


def _cmd_table5(args) -> None:
    from repro.apps.systolic import run_systolic
    rows = []
    for p in args.partitions:
        q = int(p ** 0.5)
        if q * q != p:
            continue
        n = args.n - (args.n % q)
        r = run_systolic(n, p)
        rows.append((f"{n}x{n}", f"P={p}", fmt_s(r.elapsed_us),
                     f"{r.mflops:.1f}"))
    print(render_table(
        "Table 5 — systolic matrix multiplication (simulated)",
        ["matrix", "partition", "time (s)", "MFlops"], rows,
        note="paper: peaks at 434 MFlops for 1024x1024 on 64 nodes",
    ))


def _cmd_compile_report(args) -> None:
    from repro.actors.behavior import behavior_of
    from repro.hal.compiler import compile_behaviors
    from repro.apps.cholesky import cholesky_program
    from repro.apps.fibonacci import fib_program
    from repro.apps.systolic import systolic_program
    for program in (fib_program(), cholesky_program(), systolic_program()):
        behaviors = {
            behavior_of(cls).name: behavior_of(cls)
            for cls in program.behaviors
        }
        print(compile_behaviors(behaviors, name=program.name).report())
        print()


def _cmd_compile(args) -> None:
    """Compile one scenario's program ahead of run and print the
    per-behaviour dispatch-plan report."""
    import json
    from repro.apps.scenarios import scenario_program
    from repro.hal.compiler import compile_program
    try:
        program = scenario_program(args.app)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    compiled = compile_program(program, strict=not args.no_strict)
    if args.json:
        print(json.dumps(compiled.report_dict(), indent=2))
    else:
        print(compiled.report())


def _fault_plan(args):
    """Build a FaultPlan from the shared fault flags, or None when no
    fault rate was requested."""
    drop = getattr(args, "drop", 0.0)
    dup = getattr(args, "dup", 0.0)
    delay = getattr(args, "delay", 0.0)
    reorder = getattr(args, "reorder", 0.0)
    if not (drop or dup or delay or reorder):
        return None
    from repro.sim.faults import FaultPlan
    return FaultPlan.protocol_chaos(
        seed=getattr(args, "faults_seed", None),
        drop=drop, duplicate=dup, delay=delay, reorder=reorder,
    )


def _mp_params(args):
    """MpParams from the mp wire-path flags (None = config defaults)."""
    transport = getattr(args, "mp_transport", None)
    batch_bytes = getattr(args, "mp_batch_bytes", None)
    batch_msgs = getattr(args, "mp_batch_msgs", None)
    ring_bytes = getattr(args, "mp_ring_bytes", None)
    if (
        transport is None and batch_bytes is None
        and batch_msgs is None and ring_bytes is None
    ):
        return None
    from repro.config import MpParams
    defaults = MpParams()
    return MpParams(
        transport=transport or defaults.transport,
        batch_bytes=batch_bytes or defaults.batch_bytes,
        batch_max_msgs=batch_msgs or defaults.batch_max_msgs,
        ring_bytes=ring_bytes or defaults.ring_bytes,
    )


def _net_params(args):
    """NetParams from the asyncio socket-mesh flags (None = config
    defaults: ephemeral TCP on 127.0.0.1)."""
    transport = getattr(args, "net_transport", None)
    host = getattr(args, "net_host", None)
    port_base = getattr(args, "net_port_base", None)
    if transport is None and host is None and port_base is None:
        return None
    from repro.config import NetParams
    defaults = NetParams()
    return NetParams(
        transport=transport or defaults.transport,
        host=host or defaults.host,
        port_base=defaults.port_base if port_base is None else port_base,
    )


def _tracing_params(args):
    """TracingParams from the sampling flags (None = config defaults:
    rate 1.0, capacity 65536)."""
    rate = getattr(args, "sample_rate", None)
    capacity = getattr(args, "span_capacity", None)
    if rate is None and capacity is None:
        return None
    from repro.config import TracingParams
    defaults = TracingParams()
    return TracingParams(
        sample_rate=defaults.sample_rate if rate is None else rate,
        span_capacity=capacity or defaults.span_capacity,
    )


def _run_scenario_for_cli(args, faults=None):
    from repro.apps.scenarios import run_scenario
    try:
        return run_scenario(args.app, num_nodes=args.nodes, n=args.n,
                            seed=args.seed, faults=faults,
                            backend=getattr(args, "backend", "sim"),
                            mp=_mp_params(args),
                            net=_net_params(args),
                            tracing=_tracing_params(args))
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")


def _cmd_run(args) -> None:
    """Run a scenario on the selected execution backend and print its
    summary (the backend-parity smoke the acceptance criteria name)."""
    res = _run_scenario_for_cli(args)
    rt = res.runtime
    try:
        rows = [(k, str(v)) for k, v in sorted(res.summary.items())]
        rows.append(("backend", rt.config.backend))
        rows.append(("final actors", rt.total_actors()))
        rows.append(("quiescent", rt.quiescent()))
        print(render_table(
            f"Run — {args.app} (P={rt.num_nodes}, "
            f"backend={rt.config.backend})",
            ["", "value"], rows,
            note="elapsed_us is simulated time on backend=sim, "
                 "wall-clock time on backend=threaded/mp/asyncio",
        ))
    finally:
        rt.close()


def _cmd_trace(args) -> None:
    import json
    from collections import Counter
    from repro.timeline import chrome_trace, spans_jsonl

    backend = getattr(args, "backend", "sim")
    from repro.platform.capabilities import supports, unsupported_message
    if not supports(backend, "supports_tracing"):
        # Span recording needs a shared recorder, which per-process
        # nodes don't have; the message names the backends that do.
        raise SystemExit(
            "error: " + unsupported_message(backend, "supports_tracing")
        )

    res = _run_scenario_for_cli(args)
    rt = res.runtime
    try:
        spans = rt.spans.spans
        if args.format == "chrome":
            out = args.out or f"{args.app}_trace.json"
            payload = json.dumps(chrome_trace(spans))
        else:
            out = args.out or f"{args.app}_spans.jsonl"
            payload = spans_jsonl(spans)
        with open(out, "w") as fh:
            fh.write(payload)

        kinds = Counter(s.kind for s in spans)
        acct = rt.spans.accounting()
        rows = [(k, str(v)) for k, v in sorted(res.summary.items())]
        rows.append(("backend", backend))
        rows.append(("traces", len(rt.spans.trace_ids())))
        rows.append(("spans", len(spans)))
        rows.append(("spans recorded", acct["spans_recorded"]))
        rows.append(("spans elided (sampling)", acct["spans_elided"]))
        rows.append(("ring overwrites", acct["ring_overwrites"]))
        rows.append(("sample rate", acct["sample_rate"]))
        rows.extend((f"spans[{k}]", n) for k, n in sorted(kinds.items()))
        print(render_table(
            f"Trace — {args.app} (P={rt.num_nodes})",
            ["", "value"], rows,
            note=f"wrote {out} "
                 + ("(load in Perfetto / chrome://tracing)"
                    if args.format == "chrome" else "(one span per line)"),
        ))
    finally:
        rt.close()


#: Counter prefixes that tell the fault-injection / self-healing story:
#: what was injected, what the reliable layer retried and absorbed, and
#: which protocol watchdogs had to re-issue requests.
FAULT_PREFIXES = ("faults.", "rel.", "fir.", "migration.", "creation.")


def _cmd_stats(args) -> None:
    import json

    res = _run_scenario_for_cli(args, faults=_fault_plan(args))
    stats = res.runtime.stats
    if args.json:
        doc = stats.as_dict()
        doc["tracing"] = res.runtime.spans.accounting()
        print(json.dumps(doc, indent=2, sort_keys=True))
        return
    rows = [(k, str(v)) for k, v in sorted(res.summary.items())]
    print(render_table(
        f"Scenario — {args.app} (P={res.runtime.num_nodes})",
        ["", "value"], rows,
    ))
    print()
    fault_table = stats.table(prefixes=FAULT_PREFIXES)
    if fault_table != "(no counters)":
        print(fault_table)
        print()
    print(render_hists(stats))


def _cmd_faults(args) -> None:
    """Run a scenario under an injected fault plan, then audit the
    run's invariants and print the recovery counters."""
    from repro.errors import InvariantViolation
    from repro.sim.invariants import check_invariants

    plan = _fault_plan(args)
    res = _run_scenario_for_cli(args, faults=plan)
    rt = res.runtime
    try:
        try:
            report = check_invariants(rt)
        except InvariantViolation as exc:
            print(f"FAIL — {exc}", file=sys.stderr)
            backend = getattr(args, "backend", "sim")
            print(
                f"replay: python -m repro faults {args.app} --seed {args.seed}"
                f" --backend {backend}"
                f" --drop {args.drop} --dup {args.dup} --delay {args.delay}"
                + (f" --faults-seed {args.faults_seed}"
                   if args.faults_seed is not None else ""),
                file=sys.stderr,
            )
            raise SystemExit(1)

        rows = [(k, str(v)) for k, v in sorted(res.summary.items())]
        pk = report["packets"]
        rows.append(("packets", f"{pk['sends']} sent + {pk['duplicated']} dup "
                                f"- {pk['dropped']} dropped = {pk['delivered']} "
                                "delivered"))
        rows.append(("forwarding chains", f"{report['chains_checked']} checked, "
                                          f"max {report['max_chain_hops']} hops"))
        rows.append(("invariants", "OK"))
        print(render_table(
            f"Faults — {args.app} (P={rt.num_nodes}, "
            f"drop={args.drop} dup={args.dup} delay={args.delay})",
            ["", "value"], rows,
            note="packet conservation, chain convergence, quiescence, "
                 "birthplace back-patching all verified",
        ))
        print()
        print(rt.stats.table(prefixes=FAULT_PREFIXES))
    finally:
        rt.close()


def _cmd_tables(args) -> None:
    for fn in (_cmd_table1, _cmd_table2, _cmd_table3, _cmd_table4, _cmd_table5):
        fn(args)
        print()


def _partitions(value: str) -> List[int]:
    return [int(x) for x in value.split(",")]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the tables of Kim & Agha (SC '95) on the "
                    "simulated HAL runtime.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    specs = {
        "tables": (_cmd_tables, 96, "4,8,16"),
        "table1": (_cmd_table1, 96, "4,8,16"),
        "table2": (_cmd_table2, 0, "4"),
        "table3": (_cmd_table3, 0, "4"),
        "table4": (_cmd_table4, 18, "1,4,8,16"),
        "table5": (_cmd_table5, 256, "4,16,64"),
        "compile-report": (_cmd_compile_report, 0, "4"),
    }
    for name, (fn, default_n, default_p) in specs.items():
        p = sub.add_parser(name)
        p.add_argument("--n", type=int, default=default_n,
                       help="problem size (table-specific)")
        p.add_argument("--partitions", type=_partitions, default=_partitions(default_p),
                       help="comma-separated node counts")
        p.set_defaults(fn=fn)

    # Ahead-of-run compilation: dispatch plans + continuation summary.
    p = sub.add_parser(
        "compile",
        help="compile a scenario's behaviours without running it and "
             "print the per-behaviour dispatch-plan report: static/"
             "lookup/generic send sites, demotion reasons, and the "
             "continuation splits each frontend produced",
    )
    p.add_argument("app", help="scenario name")
    p.add_argument("--report", action="store_true",
                   help="print the human-readable report (the default)")
    p.add_argument("--json", action="store_true",
                   help="emit the report as structured JSON instead")
    p.add_argument("--no-strict", action="store_true",
                   help="don't fail on sends whose inferred receiver "
                        "types declare no such method")
    p.set_defaults(fn=_cmd_compile)

    # Execution: run a scenario on a chosen backend.
    p = sub.add_parser(
        "run",
        help="run a scenario on an execution backend and print its "
             "summary (ping_pong, migration_tour, fibonacci_loadbalance)",
    )
    def add_mp_flags(p):
        p.add_argument("--mp-transport", choices=("pipe", "socket", "shm"),
                       default=None,
                       help="mp interconnect: full-mesh duplex pipes "
                            "(default), UNIX-domain socketpairs, or "
                            "shared-memory SPSC rings (no kernel copy)")
        p.add_argument("--mp-batch-bytes", type=int, default=None,
                       help="mp: flush a destination's frame at this many "
                            "buffered bytes (default 32768)")
        p.add_argument("--mp-batch-msgs", type=int, default=None,
                       help="mp: ... or at this many buffered messages "
                            "(default 128)")
        p.add_argument("--mp-ring-bytes", type=int, default=None,
                       help="mp shm: data capacity of each per-edge ring "
                            "in bytes (default 262144; larger frames "
                            "cross in chunks)")

    def add_net_flags(p):
        p.add_argument("--net-transport", choices=("tcp", "unix"),
                       default=None,
                       help="asyncio socket mesh: real TCP listeners "
                            "(default) or single-host UNIX-domain sockets")
        p.add_argument("--net-host", default=None,
                       help="asyncio tcp: interface the per-node listeners "
                            "bind (default 127.0.0.1)")
        p.add_argument("--net-port-base", type=int, default=None,
                       help="asyncio tcp: node i listens on port_base+i "
                            "(default 0 = ephemeral ports, addresses "
                            "distributed by the driver)")

    p.add_argument("app", help="scenario name")
    p.add_argument("--backend", choices=("sim", "threaded", "mp", "asyncio"),
                   default="sim",
                   help="sim: deterministic discrete-event simulator; "
                        "threaded: real-time, one OS thread per node; "
                        "mp: one OS process per node, batched binary "
                        "frames, token-ring quiescence; asyncio: one "
                        "process per node over a TCP/UNIX socket mesh "
                        "with the reliable-AM sublayer always on")
    add_mp_flags(p)
    add_net_flags(p)
    p.add_argument("--nodes", type=int, default=None, help="partition size")
    p.add_argument("--n", type=int, default=None,
                   help="problem size (scenario-specific)")
    p.add_argument("--seed", type=int, default=1995)
    p.set_defaults(fn=_cmd_run)

    # Observability: run a traced scenario, export/inspect its spans.
    def add_tracing_flags(p):
        p.add_argument("--sample-rate", type=float, default=None,
                       help="head-sampling rate in [0, 1]: the fraction of "
                            "traces whose spans are recorded (decided once "
                            "per trace at its root; error/retransmit paths "
                            "are always kept; default 1.0 = keep all)")
        p.add_argument("--span-capacity", type=int, default=None,
                       help="span ring-buffer capacity; when full the "
                            "oldest spans are overwritten (default 65536)")

    p = sub.add_parser(
        "trace",
        help="run a scenario with causal tracing and export the span "
             "timeline (migration_tour, fibonacci_loadbalance)",
    )
    p.add_argument("app", help="scenario name")
    p.add_argument("--backend", choices=("sim", "threaded", "mp"),
                   default="sim",
                   help="execution backend to trace (mp records no spans "
                        "and is refused)")
    p.add_argument("--nodes", type=int, default=None, help="partition size")
    p.add_argument("--n", type=int, default=None,
                   help="problem size (scenario-specific)")
    p.add_argument("--seed", type=int, default=1995)
    p.add_argument("--out", default=None, help="output file path")
    p.add_argument("--format", choices=("chrome", "jsonl"), default="chrome",
                   help="chrome: trace-event JSON for Perfetto; "
                        "jsonl: one span per line")
    add_tracing_flags(p)
    p.set_defaults(fn=_cmd_trace)

    def add_fault_flags(p, *, drop=0.0, dup=0.0, delay=0.0):
        p.add_argument("--drop", type=float, default=drop,
                       help="per-packet drop probability for protocol kinds")
        p.add_argument("--dup", type=float, default=dup,
                       help="per-packet duplication probability")
        p.add_argument("--delay", type=float, default=delay,
                       help="per-packet extra-delay probability")
        p.add_argument("--reorder", type=float, default=0.0,
                       help="per-packet reorder probability")
        p.add_argument("--faults-seed", type=int, default=None,
                       help="fault RNG seed (default: derived from --seed)")

    p = sub.add_parser(
        "stats",
        help="run a traced scenario and print its latency histograms",
    )
    p.add_argument("app", help="scenario name")
    p.add_argument("--nodes", type=int, default=None, help="partition size")
    p.add_argument("--n", type=int, default=None,
                   help="problem size (scenario-specific)")
    p.add_argument("--seed", type=int, default=1995)
    p.add_argument("--json", action="store_true",
                   help="dump the full stats registry as JSON (plus span "
                        "sampling/ring accounting under 'tracing')")
    add_fault_flags(p)
    add_tracing_flags(p)
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser(
        "faults",
        help="run a scenario under deterministic fault injection and "
             "audit the run's invariants (exit 1 on violation)",
    )
    p.add_argument("app", help="scenario name")
    p.add_argument("--backend", choices=("sim", "mp", "asyncio"),
                   default="sim",
                   help="backend to inject on: sim (fully deterministic), "
                        "mp or asyncio (per-(seed, node) deterministic "
                        "draw streams; audit runs on merged exact "
                        "counters)")
    add_mp_flags(p)
    add_net_flags(p)
    p.add_argument("--nodes", type=int, default=None, help="partition size")
    p.add_argument("--n", type=int, default=None,
                   help="problem size (scenario-specific)")
    p.add_argument("--seed", type=int, default=1995)
    add_fault_flags(p, drop=0.05, dup=0.05, delay=0.05)
    p.set_defaults(fn=_cmd_faults)

    args = parser.parse_args(argv)
    if args.command == "tables":
        # `tables` runs every table with its own default problem size.
        for name in ("table1", "table2", "table3", "table4", "table5"):
            fn, default_n, default_p = specs[name]
            fn(argparse.Namespace(n=default_n, partitions=_partitions(default_p)))
            print()
        return 0
    args.fn(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
