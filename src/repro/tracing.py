"""Structured event tracing for debugging and white-box tests.

Tracing is off by default and free when off: untraced machines carry a
:class:`NullTraceLog` whose ``emit`` is a no-op, and hot paths guard
with a single cached ``enabled`` flag so no argument tuple is packed
per message.  Tests enable tracing to assert on protocol-level
behaviour, e.g. that a forwarded message triggered exactly one FIR
chase.

Besides the flat :class:`TraceLog`, this module provides *causal*
tracing: every actor message is assigned a trace ID and a span ID that
propagate through sends, buffered delivery, FIR forwarding chains,
migrations, remote creations and join-continuation replies, so a
complete message journey can be reconstructed as a span tree
(:class:`SpanRecorder`).  The :class:`~repro.tracectx.TraceCtx` tuple
is the wire form of that context: it rides protocol payloads as a
trailing argument but is *excluded* from the wire-size model, so
enabling tracing never perturbs simulated time (see
:func:`repro.am.messages.payload_nbytes`).

Always-on design
----------------
The span path is built so tracing can stay enabled in production:

* **Ring-buffer storage.**  The recorder pre-allocates a flat slot
  list of ``capacity`` entries and writes raw tuples into it with one
  index bump — no per-span dataclass, no list growth.  When the ring
  wraps, the *oldest* spans are overwritten (the recent past is what
  you debug with) and ``overwrites`` counts what was lost.  ``Span``
  objects are materialised lazily, at query/export time only.

* **Deterministic head sampling.**  The keep-or-elide decision is
  made exactly once, when a trace is rooted: ``new_trace_id`` draws
  from a seeded RNG stream and encodes the verdict in the trace ID's
  low bit (``tid & 1`` ⇒ sampled).  Because every propagation channel
  — ``TraceCtx`` on the wire, ``msg.trace_id``, ``kernel.trace_ctx``,
  ``Task.trace_ctx`` — already carries the trace ID, the decision
  travels for free and downstream hops never re-roll it.  Unsampled
  traces still propagate their (even) ID so causality is preserved
  if an error path later forces spans into them.

* **Always-sampled error paths.**  ``force_span`` records regardless
  of the head decision: retransmits, FIR reissues, migration resends
  and reliability failures must never be elided by sampling.

* **Exact histograms.**  Sampling applies to *span recording only*.
  ``StatsRegistry`` histograms (delivery latency, exec time, mailbox
  depth) are recorded unconditionally for every traced message, so
  they are bit-identical at any sample rate.

The module is execution-backend-neutral: the discrete-event simulator
and the real-time threaded backend feed the same recorders
(``repro.sim.trace`` remains as a backwards-compatible re-export).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.tracectx import TraceCtx

__all__ = [
    "TraceCtx",
    "TraceRecord",
    "TraceLog",
    "NullTraceLog",
    "Span",
    "SpanRecorder",
    "NullSpanRecorder",
    "DEFAULT_SPAN_CAPACITY",
]

#: Ring size when the recorder is built without an explicit capacity.
#: 64k raw slot tuples ≈ a few MB — bounded however long the run is.
DEFAULT_SPAN_CAPACITY = 65_536


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    node: int
    kind: str
    detail: Tuple[Any, ...]

    def __str__(self) -> str:
        parts = " ".join(str(d) for d in self.detail)
        return f"[{self.time:10.2f}us n{self.node}] {self.kind} {parts}"


class TraceLog:
    """An append-only in-memory trace with simple query helpers."""

    def __init__(self, enabled: bool = False, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.records: List[TraceRecord] = []
        #: Records discarded because ``capacity`` was reached.  Tracked
        #: so a truncated trace is never mistaken for a complete one.
        self.dropped: int = 0

    def emit(self, time: float, node: int, kind: str, *detail: Any) -> None:
        if not self.enabled:
            return
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time, node, kind, detail))

    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for r in self.records if r.kind == kind)

    def where(self, pred: Callable[[TraceRecord], bool]) -> List[TraceRecord]:
        return [r for r in self.records if pred(r)]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def dump(self, limit: int = 200) -> str:
        """Render up to ``limit`` records for debugging output."""
        lines = [str(r) for r in self.records[:limit]]
        if len(self.records) > limit:
            lines.append(f"... ({len(self.records) - limit} more)")
        if self.dropped:
            lines.append(
                f"... ({self.dropped} records dropped at capacity "
                f"{self.capacity})"
            )
        return "\n".join(lines)


class NullTraceLog(TraceLog):
    """The trace sink of an untraced machine: ``emit`` is a no-op and
    ``enabled`` is pinned False.

    Flipping ``enabled`` on a null log would silently record nothing,
    so the setter raises instead — construct the machine/runtime with
    ``trace=True`` to get a live :class:`TraceLog`.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        super().__init__(enabled=False, capacity=capacity)

    @property
    def enabled(self) -> bool:
        return False

    @enabled.setter
    def enabled(self, value: bool) -> None:
        if value:
            raise ValueError(
                "NullTraceLog cannot be enabled; build the machine with "
                "trace=True to record a trace"
            )

    def emit(self, time: float, node: int, kind: str, *detail: Any) -> None:
        return None


# ======================================================================
# causal spans
# ======================================================================
@dataclass(frozen=True)
class Span:
    """One stage of a traced message journey.

    ``parent_id == 0`` marks a root span.  Instantaneous occurrences
    (e.g. a send issue or a name-table back-patch) have
    ``start_us == end_us``.  The trace ID's low bit carries the head-
    sampling verdict (see module docstring); IDs remain opaque to
    every consumer.
    """

    trace_id: int
    span_id: int
    parent_id: int
    name: str
    kind: str
    node: int
    start_us: float
    end_us: float
    attrs: Tuple[Any, ...] = ()

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    def __str__(self) -> str:
        return (
            f"[{self.start_us:10.2f}us n{self.node}] {self.kind:<12} "
            f"{self.name} (trace {self.trace_id}, span {self.span_id}"
            f"<-{self.parent_id})"
        )


class SpanRecorder:
    """Collects causal spans for one machine.

    The recorder hands out trace IDs (one per root message journey,
    low bit = head-sampling verdict) and span IDs (one per stage), and
    stores completed spans as raw tuples in a pre-allocated ring.
    Like :class:`TraceLog` it is inert when disabled; the untraced
    machine carries a :class:`NullSpanRecorder` so hot paths pay a
    single cached flag check.

    ``sampler`` is the RNG the head-sampling draw comes from — pass a
    dedicated substream (``rng.stream("tracing.head")``) so the
    decision sequence is a pure function of the machine seed and never
    perturbs other consumers.  At ``sample_rate >= 1`` no draw is made
    at all and every trace is sampled (the default, and what tests
    rely on).
    """

    def __init__(
        self,
        enabled: bool = False,
        capacity: Optional[int] = None,
        *,
        sample_rate: float = 1.0,
        sampler: Optional[random.Random] = None,
    ) -> None:
        if not (0.0 <= sample_rate <= 1.0):
            raise ValueError("sample_rate must be within [0, 1]")
        self.enabled = enabled
        self.capacity = capacity if capacity is not None else DEFAULT_SPAN_CAPACITY
        if self.capacity < 1:
            raise ValueError("span capacity must be >= 1")
        self.sample_rate = sample_rate
        self._sampler = sampler if sampler is not None else random.Random(0)
        #: Pre-allocated ring of raw span tuples; ``_n`` is the
        #: monotonic write count (ring position = ``_n % capacity``).
        self._slots: List[Optional[tuple]] = [None] * self.capacity
        self._n = 0
        self._next_trace = 1
        self._next_span = 1
        # -- accounting (surfaced via accounting(): a sampled or
        # wrapped trace must never be mistaken for a complete one) --
        #: Would-be spans elided because their trace lost the head
        #: draw.  Call sites bump this when they skip span recording
        #: for an unsampled trace; ``span()`` also counts refusals.
        self.elided: int = 0
        #: Spans recorded past the head decision (error paths).
        self.forced: int = 0
        self.traces_started: int = 0
        self.traces_sampled: int = 0

    # ------------------------------------------------------------------
    # identity allocation
    # ------------------------------------------------------------------
    def new_trace_id(self) -> int:
        """Root a new trace: allocate its ID and make the head-sampling
        decision, encoded in the ID's low bit (``tid & 1`` ⇒ record
        spans for this trace)."""
        n = self._next_trace
        self._next_trace = n + 1
        self.traces_started += 1
        rate = self.sample_rate
        if rate >= 1.0 or (rate > 0.0 and self._sampler.random() < rate):
            self.traces_sampled += 1
            return (n << 1) | 1
        return n << 1

    def new_span_id(self) -> int:
        sid = self._next_span
        self._next_span = sid + 1
        return sid

    # ------------------------------------------------------------------
    # recording (the hot path: one index bump + one slot store)
    # ------------------------------------------------------------------
    def record(
        self,
        trace_id: int,
        span_id: int,
        parent_id: int,
        name: str,
        kind: str,
        node: int,
        start_us: float,
        end_us: float,
        *attrs: Any,
    ) -> None:
        """Store a span whose ID was allocated up-front (execution
        spans allocate before running the body so children can attach).
        The caller has already checked ``enabled`` and the sample bit.
        """
        if not self.enabled:
            return
        n = self._n
        self._slots[n % self.capacity] = (
            trace_id, span_id, parent_id, name, kind, node,
            start_us, end_us, attrs,
        )
        self._n = n + 1

    def span(
        self,
        trace_id: int,
        parent_id: int,
        name: str,
        kind: str,
        node: int,
        start_us: float,
        end_us: Optional[float] = None,
        *attrs: Any,
    ) -> int:
        """Allocate a span ID and record the span in one step; returns
        the new span ID (so children can attach to it), or 0 when
        nothing was recorded — a span ID is only ever consumed by a
        span that actually lands in the ring."""
        if not self.enabled:
            return 0
        if not trace_id & 1:
            self.elided += 1
            return 0
        sid = self._next_span
        self._next_span = sid + 1
        n = self._n
        self._slots[n % self.capacity] = (
            trace_id, sid, parent_id, name, kind, node,
            start_us, end_us if end_us is not None else start_us, attrs,
        )
        self._n = n + 1
        return sid

    def force_span(
        self,
        trace_id: int,
        parent_id: int,
        name: str,
        kind: str,
        node: int,
        start_us: float,
        end_us: Optional[float] = None,
        *attrs: Any,
    ) -> Tuple[int, int]:
        """Record a span regardless of the head-sampling decision.

        Error and recovery paths — ``rel.*`` retransmits, FIR
        reissues, migration resends, reliability failures — call this
        so they are captured even in traces that lost the head draw
        (or at sample rate 0).  ``trace_id == 0`` (no causal context
        at the site) roots a fresh trace, forced sampled, so the
        resulting spans are queryable as a tree.  Returns
        ``(trace_id, span_id)``; span_id 0 means the recorder is
        disabled.
        """
        if not self.enabled:
            return trace_id, 0
        if trace_id == 0:
            n = self._next_trace
            self._next_trace = n + 1
            self.traces_started += 1
            self.traces_sampled += 1
            trace_id = (n << 1) | 1
        self.forced += 1
        sid = self._next_span
        self._next_span = sid + 1
        n = self._n
        self._slots[n % self.capacity] = (
            trace_id, sid, parent_id, name, kind, node,
            start_us, end_us if end_us is not None else start_us, attrs,
        )
        self._n = n + 1
        return trace_id, sid

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def recorded(self) -> int:
        """Total spans written to the ring (including overwritten)."""
        return self._n

    @property
    def overwrites(self) -> int:
        """Spans lost to ring wraparound (oldest evicted first)."""
        n = self._n
        return n - self.capacity if n > self.capacity else 0

    def accounting(self) -> Dict[str, Any]:
        """Sampling/ring accounting so a sampled or wrapped trace is
        never mistaken for a complete one."""
        return {
            "spans_recorded": self._n,
            "spans_held": len(self),
            "spans_elided": self.elided,
            "spans_forced": self.forced,
            "ring_overwrites": self.overwrites,
            "ring_capacity": self.capacity,
            "sample_rate": self.sample_rate,
            "traces_started": self.traces_started,
            "traces_sampled": self.traces_sampled,
        }

    # ------------------------------------------------------------------
    # materialisation + queries (cold path)
    # ------------------------------------------------------------------
    def _raw(self) -> List[tuple]:
        """Held slots, oldest → newest."""
        n, cap = self._n, self.capacity
        if n <= cap:
            return self._slots[:n]  # type: ignore[return-value]
        p = n % cap
        return self._slots[p:] + self._slots[:p]  # type: ignore[operator]

    @property
    def spans(self) -> List[Span]:
        """The held spans, materialised oldest → newest.  Deferred:
        ``Span`` objects exist only while you query/export, never on
        the recording hot path."""
        return [Span(*t) for t in self._raw()]

    def of_kind(self, kind: str) -> List[Span]:
        return [Span(*t) for t in self._raw() if t[4] == kind]

    def count(self, kind: str) -> int:
        return sum(1 for t in self._raw() if t[4] == kind)

    def of_trace(self, trace_id: int) -> List[Span]:
        return sorted(
            (Span(*t) for t in self._raw() if t[0] == trace_id),
            key=lambda s: (s.start_us, s.span_id),
        )

    def trace_ids(self) -> List[int]:
        seen: Dict[int, None] = {}
        for t in self._raw():
            seen.setdefault(t[0], None)
        return list(seen)

    def tree(self, trace_id: int) -> List[dict]:
        """The trace's span forest: a list of root nodes, each a dict
        ``{"span": Span, "children": [...]}`` ordered by start time.
        Spans whose parent was elided or overwritten surface as
        roots."""
        spans = self.of_trace(trace_id)
        nodes = {s.span_id: {"span": s, "children": []} for s in spans}
        roots: List[dict] = []
        for s in spans:
            parent = nodes.get(s.parent_id)
            if parent is None:
                roots.append(nodes[s.span_id])
            else:
                parent["children"].append(nodes[s.span_id])
        return roots

    def kinds_in_tree(self, trace_id: int) -> List[str]:
        """Depth-first kind sequence of the trace's span tree (a
        compact shape signature for tests)."""
        out: List[str] = []

        def walk(node: dict) -> None:
            out.append(node["span"].kind)
            for child in node["children"]:
                walk(child)

        for root in self.tree(trace_id):
            walk(root)
        return out

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def __len__(self) -> int:
        n = self._n
        return n if n < self.capacity else self.capacity

    def clear(self) -> None:
        """Forget held spans and accounting; ID counters keep running
        so cleared-away traces are never aliased by later ones."""
        self._slots = [None] * self.capacity
        self._n = 0
        self.elided = 0
        self.forced = 0
        self.traces_started = 0
        self.traces_sampled = 0

    def dump(self, limit: int = 200) -> str:
        """Render up to ``limit`` spans for debugging output."""
        spans = self.spans
        lines = [str(s) for s in spans[:limit]]
        if len(spans) > limit:
            lines.append(f"... ({len(spans) - limit} more)")
        if self.overwrites:
            lines.append(
                f"... ({self.overwrites} older spans overwritten in "
                f"ring of {self.capacity})"
            )
        if self.elided:
            lines.append(
                f"... ({self.elided} spans elided by head sampling at "
                f"rate {self.sample_rate})"
            )
        return "\n".join(lines)


class NullSpanRecorder(SpanRecorder):
    """The span sink of an untraced machine: recording is a no-op and
    ``enabled`` is pinned False (same contract as :class:`NullTraceLog`).

    The ring is one slot so an untraced machine never pays the 64k
    pre-allocation.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        super().__init__(enabled=False, capacity=1)

    @property
    def enabled(self) -> bool:
        return False

    @enabled.setter
    def enabled(self, value: bool) -> None:
        if value:
            raise ValueError(
                "NullSpanRecorder cannot be enabled; build the machine "
                "with trace=True to record spans"
            )

    def record(self, *args: Any, **kwargs: Any) -> None:
        return None

    def span(self, *args: Any, **kwargs: Any) -> int:
        return 0

    def force_span(self, trace_id: int, *args: Any, **kwargs: Any) -> Tuple[int, int]:
        return trace_id, 0
