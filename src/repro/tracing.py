"""Structured event tracing for debugging and white-box tests.

Tracing is off by default and free when off: untraced machines carry a
:class:`NullTraceLog` whose ``emit`` is a no-op, and hot paths guard
with a single cached ``enabled`` flag so no argument tuple is packed
per message.  Tests enable tracing to assert on protocol-level
behaviour, e.g. that a forwarded message triggered exactly one FIR
chase.

Besides the flat :class:`TraceLog`, this module provides *causal*
tracing: every actor message is assigned a trace ID and a span ID that
propagate through sends, buffered delivery, FIR forwarding chains,
migrations, remote creations and join-continuation replies, so a
complete message journey can be reconstructed as a span tree
(:class:`SpanRecorder`).  The :class:`~repro.tracectx.TraceCtx` tuple
is the wire form of that context: it rides protocol payloads as a
trailing argument but is *excluded* from the wire-size model, so
enabling tracing never perturbs simulated time (see
:func:`repro.am.messages.payload_nbytes`).

The module is execution-backend-neutral: both the discrete-event
simulator and the real-time threaded backend feed the same recorders
(``repro.sim.trace`` remains as a backwards-compatible re-export).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.tracectx import TraceCtx

__all__ = [
    "TraceCtx",
    "TraceRecord",
    "TraceLog",
    "NullTraceLog",
    "Span",
    "SpanRecorder",
    "NullSpanRecorder",
]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    node: int
    kind: str
    detail: Tuple[Any, ...]

    def __str__(self) -> str:
        parts = " ".join(str(d) for d in self.detail)
        return f"[{self.time:10.2f}us n{self.node}] {self.kind} {parts}"


class TraceLog:
    """An append-only in-memory trace with simple query helpers."""

    def __init__(self, enabled: bool = False, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.records: List[TraceRecord] = []
        #: Records discarded because ``capacity`` was reached.  Tracked
        #: so a truncated trace is never mistaken for a complete one.
        self.dropped: int = 0

    def emit(self, time: float, node: int, kind: str, *detail: Any) -> None:
        if not self.enabled:
            return
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time, node, kind, detail))

    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for r in self.records if r.kind == kind)

    def where(self, pred: Callable[[TraceRecord], bool]) -> List[TraceRecord]:
        return [r for r in self.records if pred(r)]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def dump(self, limit: int = 200) -> str:
        """Render up to ``limit`` records for debugging output."""
        lines = [str(r) for r in self.records[:limit]]
        if len(self.records) > limit:
            lines.append(f"... ({len(self.records) - limit} more)")
        if self.dropped:
            lines.append(
                f"... ({self.dropped} records dropped at capacity "
                f"{self.capacity})"
            )
        return "\n".join(lines)


class NullTraceLog(TraceLog):
    """The trace sink of an untraced machine: ``emit`` is a no-op and
    ``enabled`` is pinned False.

    Flipping ``enabled`` on a null log would silently record nothing,
    so the setter raises instead — construct the machine/runtime with
    ``trace=True`` to get a live :class:`TraceLog`.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        super().__init__(enabled=False, capacity=capacity)

    @property
    def enabled(self) -> bool:
        return False

    @enabled.setter
    def enabled(self, value: bool) -> None:
        if value:
            raise ValueError(
                "NullTraceLog cannot be enabled; build the machine with "
                "trace=True to record a trace"
            )

    def emit(self, time: float, node: int, kind: str, *detail: Any) -> None:
        return None


# ======================================================================
# causal spans
# ======================================================================
@dataclass(frozen=True)
class Span:
    """One stage of a traced message journey.

    ``parent_id == 0`` marks a root span.  Instantaneous occurrences
    (e.g. a send issue or a name-table back-patch) have
    ``start_us == end_us``.
    """

    trace_id: int
    span_id: int
    parent_id: int
    name: str
    kind: str
    node: int
    start_us: float
    end_us: float
    attrs: Tuple[Any, ...] = ()

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    def __str__(self) -> str:
        return (
            f"[{self.start_us:10.2f}us n{self.node}] {self.kind:<12} "
            f"{self.name} (trace {self.trace_id}, span {self.span_id}"
            f"<-{self.parent_id})"
        )


class SpanRecorder:
    """Collects causal spans for one machine.

    The recorder hands out trace IDs (one per root message journey) and
    span IDs (one per stage), and stores completed :class:`Span`
    records.  Like :class:`TraceLog` it is inert when disabled; the
    untraced machine carries a :class:`NullSpanRecorder` so hot paths
    pay a single cached flag check.
    """

    def __init__(self, enabled: bool = False, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.spans: List[Span] = []
        self.dropped: int = 0
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # identity allocation
    # ------------------------------------------------------------------
    def new_trace_id(self) -> int:
        return next(self._trace_ids)

    def new_span_id(self) -> int:
        return next(self._span_ids)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(
        self,
        trace_id: int,
        span_id: int,
        parent_id: int,
        name: str,
        kind: str,
        node: int,
        start_us: float,
        end_us: float,
        *attrs: Any,
    ) -> None:
        if not self.enabled:
            return
        if self.capacity is not None and len(self.spans) >= self.capacity:
            self.dropped += 1
            return
        self.spans.append(
            Span(trace_id, span_id, parent_id, name, kind, node,
                 start_us, end_us, attrs)
        )

    def span(
        self,
        trace_id: int,
        parent_id: int,
        name: str,
        kind: str,
        node: int,
        start_us: float,
        end_us: Optional[float] = None,
        *attrs: Any,
    ) -> int:
        """Allocate a span ID and record the span in one step; returns
        the new span ID (so children can attach to it)."""
        sid = next(self._span_ids)
        self.record(trace_id, sid, parent_id, name, kind, node, start_us,
                    end_us if end_us is not None else start_us, *attrs)
        return sid

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[Span]:
        return [s for s in self.spans if s.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for s in self.spans if s.kind == kind)

    def of_trace(self, trace_id: int) -> List[Span]:
        return sorted(
            (s for s in self.spans if s.trace_id == trace_id),
            key=lambda s: (s.start_us, s.span_id),
        )

    def trace_ids(self) -> List[int]:
        seen: Dict[int, None] = {}
        for s in self.spans:
            seen.setdefault(s.trace_id, None)
        return list(seen)

    def tree(self, trace_id: int) -> List[dict]:
        """The trace's span forest: a list of root nodes, each a dict
        ``{"span": Span, "children": [...]}`` ordered by start time.
        Spans whose parent was dropped (capacity) surface as roots."""
        spans = self.of_trace(trace_id)
        nodes = {s.span_id: {"span": s, "children": []} for s in spans}
        roots: List[dict] = []
        for s in spans:
            parent = nodes.get(s.parent_id)
            if parent is None:
                roots.append(nodes[s.span_id])
            else:
                parent["children"].append(nodes[s.span_id])
        return roots

    def kinds_in_tree(self, trace_id: int) -> List[str]:
        """Depth-first kind sequence of the trace's span tree (a
        compact shape signature for tests)."""
        out: List[str] = []

        def walk(node: dict) -> None:
            out.append(node["span"].kind)
            for child in node["children"]:
                walk(child)

        for root in self.tree(trace_id):
            walk(root)
        return out

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def __len__(self) -> int:
        return len(self.spans)

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0

    def dump(self, limit: int = 200) -> str:
        """Render up to ``limit`` spans for debugging output."""
        lines = [str(s) for s in self.spans[:limit]]
        if len(self.spans) > limit:
            lines.append(f"... ({len(self.spans) - limit} more)")
        if self.dropped:
            lines.append(
                f"... ({self.dropped} spans dropped at capacity "
                f"{self.capacity})"
            )
        return "\n".join(lines)


class NullSpanRecorder(SpanRecorder):
    """The span sink of an untraced machine: recording is a no-op and
    ``enabled`` is pinned False (same contract as :class:`NullTraceLog`)."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        super().__init__(enabled=False, capacity=capacity)

    @property
    def enabled(self) -> bool:
        return False

    @enabled.setter
    def enabled(self, value: bool) -> None:
        if value:
            raise ValueError(
                "NullSpanRecorder cannot be enabled; build the machine "
                "with trace=True to record spans"
            )

    def record(self, *args: Any, **kwargs: Any) -> None:
        return None
