"""Named deterministic random substreams.

Every stochastic decision in the system (random polling targets,
workload generation, failure injection in tests) draws from a named
substream so that adding a new consumer never perturbs existing ones
and every experiment is exactly reproducible from a single seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def _derive_seed(seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``(seed, name)`` via SHA-256."""
    digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """A factory of independent, reproducible :class:`random.Random`."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the substream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(_derive_seed(self.seed, name))
            self._streams[name] = rng
        return rng

    def node_stream(self, purpose: str, node_id: int) -> random.Random:
        """Return a per-node substream, e.g. ``node_stream("steal", 3)``."""
        return self.stream(f"{purpose}/node{node_id}")

    def fork(self, name: str) -> "RngStreams":
        """Derive an independent child family of streams."""
        return RngStreams(_derive_seed(self.seed, f"fork:{name}"))
