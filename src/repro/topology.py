"""Interconnect topologies: CM-5 fat-tree and binary hypercube.

Two things are needed from a topology:

1. ``hops(src, dst)`` — path length, which feeds the latency model;
2. ``spanning_tree_children(root, me)`` — the hypercube-like minimum
   spanning tree the paper uses to implement group broadcast on top of
   point-to-point active messages (Section 6.4).

The spanning tree is the classic binomial tree: relative to the root,
node ``r`` forwards to ``r | (1 << b)`` for every bit position ``b``
above ``r``'s highest set bit.  On a hypercube this is a *minimum*
spanning tree; on the CM-5 fat-tree it is the standard embedding the
paper describes as "hypercube-like".
"""

from __future__ import annotations

from typing import List

from repro.errors import TopologyError


def _check_node(n: int, size: int) -> None:
    if not (0 <= n < size):
        raise TopologyError(f"node {n} outside partition of size {size}")


class Topology:
    """Common interface for interconnect topologies."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise TopologyError(f"partition size must be >= 1, got {size}")
        self.size = size

    # -- metric --------------------------------------------------------
    def hops(self, src: int, dst: int) -> int:
        raise NotImplementedError

    def diameter(self) -> int:
        """Maximum hop count over all node pairs."""
        return max(
            self.hops(s, d) for s in range(self.size) for d in range(self.size)
        )

    # -- broadcast tree --------------------------------------------------
    def spanning_tree_children(self, root: int, me: int) -> List[int]:
        """Children of ``me`` in the binomial broadcast tree rooted at
        ``root``.  Works for any partition size (non powers of two are
        handled by skipping out-of-range virtual ranks)."""
        _check_node(root, self.size)
        _check_node(me, self.size)
        rel = (me - root) % self.size
        children: List[int] = []
        bit = 1
        # The lowest set bit of `rel` bounds which bits we may add: a
        # binomial-tree node owns exactly the ranks obtained by setting
        # bits strictly below its own lowest set bit.
        limit = rel & -rel if rel else self.size
        while bit < limit and bit < _next_pow2(self.size):
            child_rel = rel | bit
            if child_rel != rel and child_rel < self.size:
                children.append((root + child_rel) % self.size)
            bit <<= 1
        return children

    def spanning_tree_parent(self, root: int, me: int) -> int | None:
        """Parent of ``me`` in the broadcast tree (None for the root)."""
        _check_node(root, self.size)
        _check_node(me, self.size)
        rel = (me - root) % self.size
        if rel == 0:
            return None
        low = rel & -rel
        return (root + (rel & ~low)) % self.size


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


class HypercubeTopology(Topology):
    """Binary hypercube; ``hops`` is the Hamming distance.

    Partition sizes that are not powers of two are embedded in the next
    power-of-two cube (distance computed over the padded ranks).
    """

    def hops(self, src: int, dst: int) -> int:
        _check_node(src, self.size)
        _check_node(dst, self.size)
        return (src ^ dst).bit_count()


class FatTreeTopology(Topology):
    """CM-5-style 4-ary fat tree.

    Nodes are leaves; the hop count is twice the height of the lowest
    common ancestor in the 4-ary tree (up to the switch, back down),
    which matches the CM-5 data network's routing structure.
    """

    ARITY = 4

    def hops(self, src: int, dst: int) -> int:
        _check_node(src, self.size)
        _check_node(dst, self.size)
        if src == dst:
            return 0
        a, b, h = src, dst, 0
        while a != b:
            a //= self.ARITY
            b //= self.ARITY
            h += 1
        return 2 * h


def make_topology(kind: str, size: int) -> Topology:
    """Factory used by :class:`repro.sim.machine.Machine`."""
    if kind == "fattree":
        return FatTreeTopology(size)
    if kind == "hypercube":
        return HypercubeTopology(size)
    raise TopologyError(f"unknown topology kind {kind!r}")
