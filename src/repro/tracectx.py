"""The causal trace context that rides active-message payloads.

:class:`TraceCtx` is the *wire form* of causal tracing: a tuple
appended to protocol payloads so the receiving hop can attach its span
to the sender's.  It is deliberately layer-neutral — the AM layer
marshals it, every execution backend carries it, and the observability
stack (:mod:`repro.tracing`) consumes it — so it lives above both the
runtime and the simulator rather than inside ``repro.sim``.

Observability metadata is out-of-band by contract: ``WIRE_BYTES = 0``
and :func:`repro.am.messages.payload_nbytes` enforces that enabling
tracing never perturbs modelled network time.
"""

from __future__ import annotations

from typing import NamedTuple


class TraceCtx(NamedTuple):
    """Causal context carried on the wire alongside a traced message.

    ``parent_span`` is the span the receiving hop must attach to;
    ``sent_at`` is the sender's node-local time at injection, which
    lets the receiver record the hop as a (start, end) interval.
    """

    trace_id: int
    parent_span: int
    sent_at: float

    #: Observability metadata is out-of-band: it costs nothing on the
    #: simulated wire (enforced in repro.am.messages.payload_nbytes).
    WIRE_BYTES = 0
