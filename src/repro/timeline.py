"""Span exporters: Chrome trace-event JSON and JSONL dumps.

Backend-neutral: the exporters are pure functions over
:class:`repro.tracing.Span` iterables, so they serve any platform
whose machine records spans (``supports_tracing`` in the capability
matrix — the simulator and the threaded backend today).

:func:`chrome_trace` emits the Trace Event Format understood by
Perfetto / ``chrome://tracing``: one process per machine, one thread
(track) per node, complete events (``ph: "X"``) for spans with
duration and instant events (``ph: "i"``) for point occurrences.
Timestamps are already microseconds — the simulator's native unit, and
the threaded backend's wall-clock unit — so no scaling is applied.

:func:`spans_jsonl` is the flat machine-readable form: one JSON object
per span per line, suitable for ad-hoc analysis with ``jq`` or pandas.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from repro.tracing import Span

#: Perfetto sorts tracks by tid; the front-end node (-1) is remapped so
#: it sorts above the data-network nodes instead of crashing viewers
#: that dislike negative tids.
_FRONTEND_TID = 10_000


def _tid(node: int) -> int:
    return _FRONTEND_TID if node < 0 else node


def chrome_trace(spans: Iterable[Span]) -> Dict[str, Any]:
    """Build a Chrome trace-event document (a plain dict; dump with
    ``json.dump``) with one track per node."""
    events: List[Dict[str, Any]] = []
    nodes_seen: Dict[int, None] = {}
    for s in spans:
        nodes_seen.setdefault(s.node, None)
        args: Dict[str, Any] = {
            "trace_id": s.trace_id,
            "span_id": s.span_id,
            "parent_id": s.parent_id,
            "kind": s.kind,
        }
        if s.attrs:
            args["attrs"] = [repr(a) for a in s.attrs]
        ev: Dict[str, Any] = {
            "name": s.name,
            "cat": s.kind.split(".", 1)[0],
            "pid": 0,
            "tid": _tid(s.node),
            "ts": s.start_us,
            "args": args,
        }
        if s.end_us > s.start_us:
            ev["ph"] = "X"
            ev["dur"] = s.end_us - s.start_us
        else:
            ev["ph"] = "i"
            ev["s"] = "t"  # thread-scoped instant
        events.append(ev)

    meta: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": "HAL machine"}},
    ]
    for node in sorted(nodes_seen):
        label = "frontend" if node < 0 else f"node {node}"
        meta.append({
            "name": "thread_name", "ph": "M", "pid": 0,
            "tid": _tid(node), "args": {"name": label},
        })
        meta.append({
            "name": "thread_sort_index", "ph": "M", "pid": 0,
            "tid": _tid(node), "args": {"sort_index": _tid(node)},
        })
    return {"traceEvents": meta + events, "displayTimeUnit": "ns"}


def spans_jsonl(spans: Iterable[Span]) -> str:
    """Render spans as JSONL: one compact JSON object per line."""
    lines = []
    for s in spans:
        obj: Dict[str, Any] = {
            "trace_id": s.trace_id,
            "span_id": s.span_id,
            "parent_id": s.parent_id,
            "name": s.name,
            "kind": s.kind,
            "node": s.node,
            "start_us": s.start_us,
            "end_us": s.end_us,
        }
        if s.attrs:
            obj["attrs"] = [repr(a) for a in s.attrs]
        lines.append(json.dumps(obj, separators=(",", ":")))
    return "\n".join(lines) + ("\n" if lines else "")
