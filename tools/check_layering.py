#!/usr/bin/env python
"""Layering lint: the runtime must not reach beneath the platform seam.

``repro.runtime`` and ``repro.am`` are written against the platform
interfaces (:mod:`repro.platform.base`); importing an execution
backend directly — any ``repro.sim.*`` module, or a concrete backend
module like ``repro.platform.simbackend`` / ``repro.platform.threaded``
— couples protocol code to one substrate and silently breaks the
other.  This checker walks the import statements (AST only, nothing is
executed) of every module under the guarded packages and exits 1 with
a file:line listing when it finds a violation.

Allowed from guarded packages:

- ``repro.platform`` and ``repro.platform.base`` (the seam itself);
- layer-neutral modules (``repro.stats``, ``repro.tracing``,
  ``repro.tracectx``, ``repro.topology``, ``repro.rng``, ``repro.config``,
  ``repro.errors``, ...);
- anything inside the guarded packages themselves.

Run from the repo root (CI's lint job does)::

    python tools/check_layering.py
"""

from __future__ import annotations

import ast
import os
import sys
from typing import Iterator, List, Tuple

_HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(_HERE)
SRC = os.path.join(REPO_ROOT, "src")

#: Packages whose modules must stay backend-agnostic.
GUARDED = ("repro/runtime", "repro/am")

#: Import prefixes a guarded module may never name.  ``repro.sim`` is
#: the whole simulator; the concrete platform modules are the backends
#: themselves, and ``repro.platform.wireformat`` is their transport
#: machinery — how bytes cross an OS boundary is a backend concern, so
#: protocol code may not depend on it either (the ``repro.platform``
#: package root and ``repro.platform.base`` remain allowed).
FORBIDDEN_PREFIXES = (
    "repro.sim",
    "repro.platform.simbackend",
    "repro.platform.threaded",
    "repro.platform.mp",
    "repro.platform.asyncio_net",
    "repro.platform.wireformat",
    "repro.platform.shmring",
)


def _is_forbidden(module: str) -> bool:
    return any(
        module == p or module.startswith(p + ".")
        for p in FORBIDDEN_PREFIXES
    )


def _imports(tree: ast.AST) -> Iterator[Tuple[int, str]]:
    """Yield (lineno, dotted-module) for every import in the tree,
    including those nested in functions or ``if TYPE_CHECKING`` blocks
    — a type-only dependency on a backend is still a layering bug."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: stays inside the package
                continue
            if node.module:
                yield node.lineno, node.module


def check(src: str = SRC) -> List[str]:
    problems: List[str] = []
    for pkg in GUARDED:
        root = os.path.join(src, *pkg.split("/"))
        for dirpath, _dirnames, filenames in os.walk(root):
            for fname in sorted(filenames):
                if not fname.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fname)
                with open(path) as fh:
                    tree = ast.parse(fh.read(), filename=path)
                rel = os.path.relpath(path, REPO_ROOT)
                for lineno, module in _imports(tree):
                    if _is_forbidden(module):
                        problems.append(
                            f"{rel}:{lineno}: imports {module!r} "
                            "(guarded layers may only use repro.platform "
                            "interfaces)"
                        )
    return problems


def main() -> int:
    problems = check()
    if problems:
        print("layering violations:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    n_pkgs = ", ".join(p.replace("/", ".") for p in GUARDED)
    print(f"layering OK: {n_pkgs} import no execution backend")
    return 0


if __name__ == "__main__":
    sys.exit(main())
