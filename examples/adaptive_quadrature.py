#!/usr/bin/env python3
"""Adaptive quadrature: the dynamic, irregular workload class the
paper's introduction motivates location transparency with.

The integrand is smooth except for one violent spike, so the adaptive
recursion tree is deeply unbalanced in a way no static placement can
predict — the nodes that happen to own the spike become the critical
path unless idle nodes steal work.

    python examples/adaptive_quadrature.py [nodes]
"""

import sys

from repro.apps.quadrature import run_quadrature


def main(nodes: int = 8) -> None:
    print(f"integrating sin(3x) + a Lorentzian spike over [0, 1] "
          f"on {nodes} simulated nodes\n")
    static = run_quadrature(nodes, load_balance=False)
    lb = run_quadrature(nodes, load_balance=True)

    print(f"  {'':24}{'time':>10}  {'tasks':>6}  {'steals':>6}  {'|error|':>9}")
    for name, r in (("static placement", static), ("work stealing", lb)):
        print(f"  {name:<24}{r.elapsed_us / 1000:8.2f}ms  {r.tasks:6d}  "
              f"{r.steals:6d}  {r.error:9.2e}")
    print(f"\nresult {lb.value:.9f} vs closed form {lb.expected:.9f}")
    print(f"stealing is {static.elapsed_us / lb.elapsed_us:.1f}x faster on "
          "this irregular tree.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
