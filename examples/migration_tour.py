#!/usr/bin/env python3
"""Location transparency under migration: the FIR protocol at work.

A stateful actor tours the whole partition while clients on every node
keep calling it through the *same* reference.  Stale name-table
entries trigger forwarding-information-request (FIR) chases; the
replies back-patch every table on the chain, so repeated senders go
direct again.

    python examples/migration_tour.py [nodes]
"""

import sys

from repro import HalRuntime, RuntimeConfig, behavior, method


@behavior
class TouringOracle:
    def __init__(self):
        self.answers = 0

    @method
    def ask(self, ctx, question):
        self.answers += 1
        return f"answer #{self.answers} (from node {ctx.node}): {question}!"

    @method
    def relocate(self, ctx, to):
        ctx.migrate(to)


def main(nodes: int = 8) -> None:
    rt = HalRuntime(RuntimeConfig(num_nodes=nodes), trace=True)
    rt.load_behaviors(TouringOracle)
    oracle = rt.spawn(TouringOracle, at=0)

    print(f"oracle born on node 0; touring {nodes} nodes\n")
    for stop in range(1, nodes):
        # a client on a node with a stale cache asks a question
        client = (stop * 3) % nodes
        reply = rt.call(oracle, "ask", "why", from_node=client)
        print(f"client n{client}: {reply}")
        # the oracle moves on
        rt.send(oracle, "relocate", stop, from_node=0)
        rt.run()
        assert rt.locate(oracle) == stop

    s = rt.stats
    print(f"\nmigrations   : {s.counter('migration.arrived')}")
    print(f"FIR chases   : {s.counter('fir.initiated')}")
    print(f"FIR relays   : {s.counter('fir.relayed')}")
    print(f"caches fixed : {s.counter('fir.updated') + s.counter('names.cached_addrs')}")
    print(f"messages     : {s.counter('am.sends')} "
          f"(simulated time {rt.now / 1000:.2f} ms)")
    print("\nEvery call went through the same ActorRef; no sender ever "
          "needed to know where the oracle actually was.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
