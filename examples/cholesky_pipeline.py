#!/usr/bin/env python3
"""Cholesky decomposition: local vs global synchronization (Table 1).

Four implementations of the same column factorisation:

  BP    pipelined, local synchronization only, block column mapping
  CP    pipelined, local synchronization only, cyclic column mapping
  Seq   global synchronization, point-to-point pivot distribution
  Bcast global synchronization, broadcast pivot distribution

    python examples/cholesky_pipeline.py [n] [nodes]
"""

import sys

from repro.apps.cholesky import VARIANTS, run_cholesky


def main(n: int = 96, nodes: int = 8) -> None:
    print(f"Cholesky of a {n}x{n} SPD matrix on {nodes} simulated nodes")
    print(f"(the factor L is verified against numpy on every run)\n")
    results = {}
    for variant in VARIANTS:
        r = run_cholesky(variant, n, nodes)
        results[variant] = r
        kind = "local sync " if variant in ("BP", "CP") else "global sync"
        print(f"  {variant:>5}  [{kind}]  {r.elapsed_ms:8.2f} ms")

    best = min(results, key=lambda v: results[v].elapsed_us)
    worst = max(results, key=lambda v: results[v].elapsed_us)
    print(f"\n{best} is {results[worst].elapsed_us / results[best].elapsed_us:.1f}x "
          f"faster than {worst}: starting iteration i+1 before iteration i "
          "completes — legal under per-column local synchronization — keeps "
          "every node busy, while global barriers serialise the pipeline.")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    nodes = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    main(n, nodes)
