#!/usr/bin/env python3
"""Quickstart: a tour of the HAL runtime's public API.

Run:  python examples/quickstart.py
"""

from repro import HalRuntime, RuntimeConfig, behavior, disable_when, method


# -- 1. behaviours are decorated classes --------------------------------
@behavior
class Account:
    """A bank account with a local synchronization constraint: a
    withdrawal that would overdraw waits in the pending queue until a
    deposit enables it (§6.1 of the paper)."""

    def __init__(self, balance=0):
        self.balance = balance

    @method
    def deposit(self, ctx, amount):
        self.balance += amount

    @method
    @disable_when(lambda self, msg: self.balance < msg.args[0])
    def withdraw(self, ctx, amount):
        self.balance -= amount
        return amount

    @method
    def query(self, ctx):
        return self.balance


@behavior
class Teller:
    """Issues call/return requests written as ordinary assignments; the
    compiler's AST frontend splits the body at each request into join
    continuations (§6.2).  The two queries are independent, so they are
    grouped into one shared two-slot join automatically."""

    def __init__(self):
        pass

    @method
    def transfer(self, ctx, src, dst, amount):
        taken = ctx.request(src, "withdraw", amount)
        ctx.send(dst, "deposit", taken)
        a = ctx.request(src, "query")
        b = ctx.request(dst, "query")
        return (a, b)


@behavior
class TellerExplicit:
    """The same behaviour in the explicit generator DSL: each split
    point is a ``yield``, and grouped requests are a yielded list.
    Both frontends compile to the identical continuation structure —
    write whichever you prefer."""

    def __init__(self):
        pass

    @method
    def transfer(self, ctx, src, dst, amount):
        taken = yield ctx.request(src, "withdraw", amount)
        ctx.send(dst, "deposit", taken)
        a, b = yield [ctx.request(src, "query"), ctx.request(dst, "query")]
        return (a, b)


def main() -> None:
    # -- 2. boot a simulated 8-node CM-5-style partition ----------------
    rt = HalRuntime(RuntimeConfig(num_nodes=8))
    rt.load_behaviors(Account, Teller, TellerExplicit)

    # -- 3. create actors anywhere; refs are location transparent -------
    alice = rt.spawn(Account, 100, at=1)
    bob = rt.spawn(Account, 10, at=6)
    teller = rt.spawn(Teller, at=3)

    balances = rt.call(teller, "transfer", alice, bob, 40)
    print(f"after transfer: alice={balances[0]}, bob={balances[1]}")
    assert balances == (60, 50)

    # Both frontends run identically: a zero transfer through the
    # generator-DSL teller observes the same balances.
    teller2 = rt.spawn(TellerExplicit, at=4)
    assert rt.call(teller2, "transfer", alice, bob, 0) == balances

    # -- 4. constraints: an overdraw waits until funds arrive -----------
    rt.send(bob, "withdraw", 500)       # disabled: parks in pending queue
    rt.run()
    print(f"bob pending withdrawals: "
          f"{rt.actor_of(bob).mailbox.pending_count} (insufficient funds)")
    rt.send(bob, "deposit", 1000)       # enables the parked withdrawal
    rt.run()
    print(f"bob after big deposit and parked withdrawal: "
          f"{rt.call(bob, 'query')}")
    assert rt.call(bob, "query") == 550

    # -- 5. migration: the same ref works wherever the actor lives ------
    kernel = rt.kernels[rt.locate(alice)]
    kernel.node.bootstrap(
        lambda: kernel.migration.start(rt.actor_of(alice), 7)
    )
    rt.run()
    print(f"alice migrated to node {rt.locate(alice)}; "
          f"balance still {rt.call(alice, 'query')}")

    # -- 6. simulated-machine introspection -----------------------------
    print(f"\nsimulated time: {rt.now / 1000:.2f} ms")
    print(f"messages sent:  {rt.stats.counter('am.sends')}")
    print(f"FIR chases:     {rt.stats.counter('fir.initiated')}")


if __name__ == "__main__":
    main()
