#!/usr/bin/env python3
"""Systolic (Cannon) matrix multiplication (Table 5).

One block actor per node on a sqrt(P) x sqrt(P) grid; blocks skew,
then cyclically shift each step.  Synchronization is purely local:
a block arriving for a future step parks in the pending queue via a
disabling condition until its cell catches up.

    python examples/systolic_matmul.py [n] [nodes]
"""

import sys

from repro.apps.systolic import run_systolic


def main(n: int = 256, nodes: int = 16) -> None:
    print(f"C = A @ B for {n}x{n} matrices on a grid of {nodes} nodes")
    r = run_systolic(n, nodes)
    print(f"  simulated time : {r.elapsed_s:8.3f} s")
    print(f"  rate           : {r.mflops:8.1f} MFlops")
    print(f"  (verified against numpy; the paper peaks at 434 MFlops "
          "for 1024x1024 on 64 nodes)")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    nodes = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    main(n, nodes)
