#!/usr/bin/env python3
"""The mini-HAL textual language end to end.

HAL programs are written in s-expressions; the compiler generates
Python behaviour classes (the real compiler generated C), runs the
full analysis pipeline (type inference -> dispatch plans, dependence
analysis -> continuation splits, purity -> creation elision hints) and
loads the image on the simulated partition.

    python examples/hal_language.py
"""

from repro import HalRuntime, RuntimeConfig
from repro.hal.lang import compile_hal, generate_python

SOURCE = """
; A prime-counting service: a sieve actor per candidate range, a
; coordinator fanning requests out with call/return.

(defbehavior sieve ()
  (method count-primes (lo hi)
    (let ((count 0))
      (dotimes (i (- hi lo))
        (let ((n (+ lo i)))
          (if (> n 1)
              (let ((prime 1) (d 2))
                (while (<= (* d d) n)
                  (if (= (mod n d) 0) (set! prime 0))
                  (set! d (+ d 1)))
                (set! count (+ count prime))))))
      (charge (* 2.0 (- hi lo)))   ; model the trial divisions
      (reply count))))

(defbehavior coordinator ()
  (method count-up-to (n workers)
    (let ((chunk (/ n workers))
          (total 0)
          (i 0))
      (while (< i workers)
        (let ((w (new sieve :at (mod i num-nodes)))
              (lo (int (* i chunk)))
              (hi (int (* (+ i 1) chunk))))
          (let ((part (request w count-primes lo hi)))
            (set! total (+ total part))))
        (set! i (+ i 1)))
      (reply total))))
"""


def main() -> None:
    print("=== generated Python (what the HAL compiler emits) ===\n")
    print(generate_python(SOURCE, "primes"))

    program = compile_hal(SOURCE, "primes")
    rt = HalRuntime(RuntimeConfig(num_nodes=8))
    rt.load(program)  # the analysis pipeline runs at load time

    print("=== analysis pipeline on the generated code ===\n")
    print(program.compiled.report())
    classes = {cls.__name__: cls for cls in program.behaviors}
    coord = rt.spawn(classes["coordinator"], at=0)
    n = 1000
    primes = rt.call(coord, "count_up_to", n, 16)
    print(f"\npi({n}) = {primes} (there are 168 primes below 1000)")
    print(f"simulated time: {rt.now / 1000:.2f} ms on 8 nodes")
    assert primes == 168


if __name__ == "__main__":
    main()
