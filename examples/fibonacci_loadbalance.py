#!/usr/bin/env python3
"""Fibonacci with receiver-initiated dynamic load balancing (Table 4).

The recursion tree is extremely concurrent and heavily imbalanced;
idle nodes steal subtrees from random peers.  Compare static placement
against dynamic load balancing:

    python examples/fibonacci_loadbalance.py [n] [nodes]
"""

import sys

from repro.apps.fibonacci import c_model_us, cilk_model_us, fib_calls, run_fib


def main(n: int = 20, nodes: int = 8) -> None:
    print(f"fib({n}): {fib_calls(n):,} tasks on {nodes} simulated nodes\n")

    base = run_fib(n, 1, load_balance=False)
    print(f"{'1 node':>28}: {base.elapsed_us / 1e6:8.4f} s")

    static = run_fib(n, nodes, load_balance=False)
    print(f"{'static placement':>28}: {static.elapsed_us / 1e6:8.4f} s "
          f"(speedup {base.elapsed_us / static.elapsed_us:4.1f}x)")

    lb = run_fib(n, nodes, load_balance=True)
    print(f"{'dynamic load balancing':>28}: {lb.elapsed_us / 1e6:8.4f} s "
          f"(speedup {base.elapsed_us / lb.elapsed_us:4.1f}x, "
          f"{lb.steals} steals)")

    # The naive actor form (one actor per call, written plain-def and
    # continuation-split by the AST frontend) validates the compiled
    # task form at a smaller n.
    an = min(n, 14)
    actors = run_fib(an, 1, load_balance=False, use_actors=True)
    print(f"{'actor form, fib(%d)' % an:>28}: {actors.elapsed_us / 1e6:8.4f} s "
          f"({fib_calls(an):,} actors, static dispatch)")

    print(f"\ncontext (modelled from the paper's published fib(33) numbers):")
    print(f"{'Cilk, 1 SPARC node':>28}: {cilk_model_us(n) / 1e6:8.4f} s")
    print(f"{'optimised C':>28}: {c_model_us(n) / 1e6:8.4f} s")
    assert lb.value == static.value == base.value


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    nodes = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    main(n, nodes)
