"""Table 4: Fibonacci with and without dynamic load balancing (§7.2).

Paper context: fib(33) creates 11,405,773 actors with a heavily
imbalanced tree; receiver-initiated random polling balances it.  Cilk
took 73.16 s and optimised C 8.49 s on the same SPARC.

We run a scaled-down n (the tree is still ~10^4 tasks; simulating
10^7 Python events per cell would add nothing but wall time) and keep
the paper's comparator rows via per-call cost models calibrated from
the published fib(33) numbers.  The shape that must reproduce: load
balancing approaches linear speedup and beats static placement, while
the single-node actor runtime sits between Cilk and C.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_s, publish, render_table
from repro.apps.fibonacci import (
    c_model_us,
    cilk_model_us,
    fib_calls,
    run_fib,
)

N = 20
PARTITIONS = (1, 4, 8, 16)


def run_grid():
    results = {}
    for p in PARTITIONS:
        results[("static", p)] = run_fib(N, p, load_balance=False)
        if p > 1:
            results[("lb", p)] = run_fib(N, p, load_balance=True)
    return results


def test_table4_fibonacci(benchmark):
    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    rows = []
    for p in PARTITIONS:
        static = results[("static", p)]
        lb = results.get(("lb", p))
        rows.append((
            f"P={p}",
            fmt_s(static.elapsed_us),
            fmt_s(lb.elapsed_us) if lb else "-",
            lb.steals if lb else 0,
        ))
    comparators = [
        ("Cilk (modelled, 1 node)", fmt_s(cilk_model_us(N)), "-", "-"),
        ("optimised C (modelled)", fmt_s(c_model_us(N)), "-", "-"),
    ]
    publish("table4_fibonacci", render_table(
        f"Table 4 — Fibonacci({N}) = {fib_calls(N):,} tasks (simulated s)",
        ["", "static placement", "dynamic load balancing", "steals"],
        rows + comparators,
        note="Comparator rows use per-call costs calibrated from the "
             "paper's published fib(33) results (Cilk 73.16 s, C 8.49 s).",
    ))

    t1 = results[("static", 1)].elapsed_us
    for p in PARTITIONS[1:]:
        lb = results[("lb", p)].elapsed_us
        static = results[("static", p)].elapsed_us
        # dynamic load balancing beats static placement
        assert lb < static
        # and achieves decent parallel efficiency (>= 60%)
        assert lb < t1 / (0.6 * p)
        assert results[("lb", p)].steals > 0
    # the HAL runtime (1 node) is faster than modelled Cilk and slower
    # than modelled optimised C, as in the paper
    assert t1 < cilk_model_us(N)
    assert t1 > c_model_us(N)


@pytest.mark.slow
def test_table4_actor_form_vs_task_form(benchmark):
    """Creation elision (functional behaviours -> tasks) pays off."""
    def run_both():
        actors = run_fib(12, 4, load_balance=False, use_actors=True)
        tasks = run_fib(12, 4, load_balance=False)
        return actors, tasks

    actors, tasks = benchmark.pedantic(run_both, rounds=1, iterations=1)
    publish("table4_creation_elision", render_table(
        "Table 4 companion — creation elision at fib(12), P=4",
        ["implementation", "time (s)"],
        [
            ("one actor per call", fmt_s(actors.elapsed_us)),
            ("compiled tasks (creations elided)", fmt_s(tasks.elapsed_us)),
        ],
        note='"Since Fibonacci actors are purely functional, actor '
             'creations were optimized away." (§7.2)',
    ))
    assert tasks.elapsed_us < actors.elapsed_us
