"""Ablation A4: the compiler/runtime open interface (§6.3, §6.4).

Two design choices the paper attributes its efficiency to:

- **static dispatch** selected by compiler type inference, guarded by
  the runtime's locality check — measured on a message-dense local
  workload with the interface enabled vs disabled;
- **collective scheduling** of broadcast messages — measured on group
  broadcasts with the quantum optimisation on vs off.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_us, publish, render_table
from repro import HalRuntime, RuntimeConfig, behavior, method
from repro.config import SchedulerParams
from tests.conftest import Counter

RING = 16
LAPS = 30


@behavior
class RingNode:
    def __init__(self):
        self.next = None
        self.seen = 0

    @method
    def build(self, ctx, k):
        if k > 0:
            self.next = ctx.new(RingNode)
            ctx.send(self.next, "build", k - 1)

    @method
    def attach_tail(self, ctx, head):
        if self.next is None:
            self.next = head
        else:
            ctx.send(self.next, "attach_tail", head)

    @method
    def token(self, ctx, hops, done):
        self.seen += 1
        if hops == 0:
            ctx.send(done, "incr", 1)
            return
        ctx.send(self.next, "token", hops - 1, done)


def run_ring(static_dispatch: bool) -> float:
    cfg = RuntimeConfig(
        num_nodes=1,
        scheduler=SchedulerParams(static_dispatch=static_dispatch),
    )
    rt = HalRuntime(cfg)
    rt.load_behaviors(RingNode, Counter)
    head = rt.spawn(RingNode, at=0)
    done = rt.spawn(Counter, at=0)
    rt.send(head, "build", RING - 1)
    rt.run()
    rt.send(head, "attach_tail", head)
    rt.run()
    t0 = rt.now
    rt.send(head, "token", RING * LAPS, done)
    rt.run()
    assert rt.state_of(done).value == 1
    return rt.now - t0


def test_static_dispatch_ablation(benchmark):
    def run_both():
        return run_ring(True), run_ring(False)

    static_us, generic_us = benchmark.pedantic(run_both, rounds=1, iterations=1)
    hops = RING * LAPS
    publish("ablation_static_dispatch", render_table(
        f"Ablation A4a — {hops}-hop local token ring (simulated us)",
        ["dispatch", "total", "per hop"],
        [
            ("compiler static dispatch", fmt_us(static_us), fmt_us(static_us / hops)),
            ("generic buffered sends", fmt_us(generic_us), fmt_us(generic_us / hops)),
        ],
        note="The open compiler/runtime interface lets statically typed "
             "local sends run on the stack.",
    ))
    assert static_us < 0.6 * generic_us


def run_broadcasts(collective: bool) -> float:
    cfg = RuntimeConfig(
        num_nodes=4,
        scheduler=SchedulerParams(collective_broadcast=collective),
    )
    rt = HalRuntime(cfg)
    rt.load_behaviors(Counter)
    g = rt.grpnew(Counter, 64, 0)
    rt.run()
    t0 = rt.now
    for _ in range(10):
        rt.broadcast(g, "incr", 1)
        rt.run()
    assert all(rt.state_of(g.member(i)).value == 10 for i in range(64))
    return rt.now - t0


def test_collective_broadcast_ablation(benchmark):
    def run_both():
        return run_broadcasts(True), run_broadcasts(False)

    coll_us, indiv_us = benchmark.pedantic(run_both, rounds=1, iterations=1)
    publish("ablation_collective_broadcast", render_table(
        "Ablation A4b — 10 broadcasts to a 64-member group on P=4 "
        "(simulated us)",
        ["scheduling", "total"],
        [
            ("collective (quantum per node)", fmt_us(coll_us)),
            ("individual dispatch per member", fmt_us(indiv_us)),
        ],
        note="Collective scheduling shares one decode across a group's "
             "local members (quasi-dynamic scheduling, §6.4).",
    ))
    assert coll_us < indiv_us
