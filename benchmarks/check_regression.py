#!/usr/bin/env python
"""Gate engine throughput against the committed baseline.

Compares a fresh ``bench_engine.py`` result file against the
repo-root ``BENCH_engine.json`` baseline and fails (exit 1) when any
gated bench — the ping-pong/fan-out engine microbenchmarks or the
threaded/mp backend fibonacci runs — regresses by more than the
threshold (default 20%) in events/sec.

Usage (what the nightly CI job runs)::

    PYTHONPATH=src python benchmarks/bench_engine.py --out /tmp/bench.json
    python benchmarks/check_regression.py --current /tmp/bench.json

Throughput above baseline is never an error; the gate is one-sided.
Wall-clock noise on shared CI runners is the reason the threshold is
generous — the gate exists to catch accidental hot-path pessimisation
(a closure reintroduced per message, an uncached attribute probe), not
two-percent jitter.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List

_HERE = os.path.dirname(os.path.abspath(__file__))
_REPO_ROOT = os.path.dirname(_HERE)

DEFAULT_BASELINE = os.path.join(_REPO_ROOT, "BENCH_engine.json")

#: The benches the gate watches.  The engine microbenchmarks catch
#: per-message hot-path pessimisation (an allocation or uncached
#: branch reintroduced); the backend fibonacci runs catch wire-path
#: pessimisation in the real-time backends — per-packet pickling or
#: syscalls creeping back into the mp batch path would halve its
#: events/sec, far outside the threshold's noise allowance; the
#: shm-ring run additionally catches pessimisation in the ring copy
#: loop and the spin/Condition wakeup protocol; the sampled-tracing
#: traffic run catches the span hot path regrowing.
#:
#: ``backend_asyncio`` is recorded in the baseline but deliberately
#: NOT gated yet: the row just landed, and its wall-clock depends on
#: loopback TCP scheduling plus always-on reliable-AM ack round trips
#: — gate it once a few nightlies establish the noise band.
GATED = ("pingpong", "fanout", "backend_threaded", "backend_mp",
         "backend_mp_shm", "tracing")

#: Absolute ceiling on ``tracing.overhead_pct``: the throughput cost of
#: always-on (head-sampled) tracing over the untraced baseline.  Unlike
#: the relative gates above, this budget does not drift with the
#: baseline — overhead past it means the elision branch grew work.
TRACING_BUDGET_PCT = 10.0

#: Absolute floor on ``dispatch.local_hit_rate``: the fraction of local
#: deliveries in the actor-form fib workload that took the compiled
#: inline path (static or lookup) instead of the generic mailbox path.
#: A hit rate is a counter ratio, not a wall-clock measure, so it has
#: no noise allowance — dropping below the floor means the compiler
#: stopped planning the sites static or the runtime stopped honouring
#: the plans.
DISPATCH_HIT_RATE_FLOOR = 0.95


def _events_per_sec(entry: dict) -> int:
    """All three result shapes: microbenchmarks nest under
    ``current``, the tracing bench under ``on`` (the sampled traced
    run), backend app runs carry ``events_per_sec`` at top level."""
    if "current" in entry:
        return entry["current"]["events_per_sec"]
    if "on" in entry:
        return entry["on"]["events_per_sec"]
    return entry["events_per_sec"]


def main(argv: List[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--current", required=True,
                    help="JSON produced by a fresh bench_engine.py run")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE,
                    help="committed baseline JSON (default: repo root)")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="max tolerated fractional drop (default 0.20)")
    ap.add_argument("--tracing-budget", type=float,
                    default=TRACING_BUDGET_PCT,
                    help="max tolerated tracing.overhead_pct, an absolute "
                         "percentage (default 10.0)")
    ap.add_argument("--dispatch-floor", type=float,
                    default=DISPATCH_HIT_RATE_FLOOR,
                    help="min tolerated dispatch.local_hit_rate, an "
                         "absolute fraction (default 0.95)")
    args = ap.parse_args(argv)

    with open(args.baseline) as fh:
        base = json.load(fh)
    with open(args.current) as fh:
        cur = json.load(fh)

    if base.get("schema") != cur.get("schema"):
        print(f"schema mismatch: baseline {base.get('schema')!r} vs "
              f"current {cur.get('schema')!r}", file=sys.stderr)
        return 1

    failures = []
    print(f"{'bench':<16} {'baseline ev/s':>14} {'current ev/s':>14} "
          f"{'delta':>8}")
    for name in GATED:
        if name not in base or name not in cur:
            # A baseline predating this bench (or a --skip-apps run)
            # has nothing to gate against; note it rather than fail.
            print(f"{name:<16} (not present in both files; skipped)")
            continue
        b = _events_per_sec(base[name])
        c = _events_per_sec(cur[name])
        delta = (c - b) / b
        print(f"{name:<16} {b:>14,} {c:>14,} {delta:>+7.1%}")
        if delta < -args.threshold:
            failures.append(
                f"{name}: {c:,} ev/s is {-delta:.1%} below baseline "
                f"{b:,} ev/s (threshold {args.threshold:.0%})"
            )

    # Absolute tracing-overhead budget.  A current result without a
    # tracing entry is a hard failure (unlike the relative gates, which
    # skip): the budget is the acceptance bar for always-on tracing, so
    # silently not measuring it would un-gate the span hot path.
    tr = cur.get("tracing")
    if not isinstance(tr, dict) or "overhead_pct" not in tr:
        failures.append(
            "tracing.on: entry missing from current results — run "
            "bench_engine.py without --skip-apps so the overhead budget "
            "can be checked"
        )
    else:
        pct = tr["overhead_pct"]
        spans = tr.get("on", {}).get("spans_recorded", 0)
        print(f"{'tracing.on':<16} overhead {pct:+.1f}% "
              f"(budget {args.tracing_budget:.0f}%, {spans:,} spans kept)")
        if pct > args.tracing_budget:
            failures.append(
                f"tracing.on: {pct:.1f}% overhead over the untraced "
                f"baseline exceeds the {args.tracing_budget:.0f}% budget"
            )
        if spans <= 0:
            failures.append(
                "tracing.on: the sampled run recorded no spans — "
                "always-on tracing must still keep sampled traces"
            )

    # Absolute dispatch hit-rate floor.  Like the tracing budget, a
    # current result without a dispatch entry is a hard failure: the
    # hit rate is the acceptance bar for compiled static dispatch, and
    # a run that didn't measure it would un-gate the inline path.
    dp = cur.get("dispatch")
    if not isinstance(dp, dict) or "local_hit_rate" not in dp:
        failures.append(
            "dispatch: entry missing from current results — run "
            "bench_engine.py without --skip-apps so the local dispatch "
            "hit rate can be checked"
        )
    else:
        rate = dp["local_hit_rate"]
        inline = dp.get("inline_static", 0) + dp.get("inline_lookup", 0)
        print(f"{'dispatch':<16} local_hit_rate {rate:.2%} "
              f"(floor {args.dispatch_floor:.0%}, {inline:,} inline sends)")
        if rate < args.dispatch_floor:
            failures.append(
                f"dispatch: local hit rate {rate:.2%} is below the "
                f"{args.dispatch_floor:.0%} floor — compiled sends are "
                "falling back to the generic mailbox path"
            )
        if dp.get("inline_static", 0) <= 0:
            failures.append(
                "dispatch: the workload performed no inline static "
                "sends — static plans are not reaching the runtime"
            )

    if failures:
        print("\nREGRESSION:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nwithin threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
