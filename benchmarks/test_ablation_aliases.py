"""Ablation A1: alias-based remote creation vs split-phase creation.

The design claim (§5): an actor issuing a remote creation can continue
its computation immediately because the alias uniquely identifies the
new actor; the split-phase alternative suspends the continuation until
the mail address returns.  We build a chain of K remote creations
(each created actor creates the next) both ways: with aliases the
creations pipeline, split-phase serialises a full round trip per hop.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_us, publish, render_table
from repro import HalRuntime, RuntimeConfig, behavior, method

K = 24


@behavior
class AliasChain:
    """Creates the next link and forwards immediately via the alias."""

    def __init__(self):
        pass

    @method
    def extend(self, ctx, k, done):
        if k == 0:
            ctx.send(done, "incr", 1)
            return
        nxt = ctx.new(AliasChain, at=(ctx.node + 1) % ctx.num_nodes)
        ctx.send(nxt, "extend", k - 1, done)


@behavior
class SplitChain:
    """Waits for the ordinary mail address before continuing."""

    def __init__(self):
        pass

    @method
    def extend(self, ctx, k, done):
        if k == 0:
            ctx.send(done, "incr", 1)
            return
        nxt = yield ctx.request_create(
            SplitChain, at=(ctx.node + 1) % ctx.num_nodes
        )
        ctx.send(nxt, "extend", k - 1, done)


def run_chain(cls) -> float:
    from tests.conftest import Counter
    rt = HalRuntime(RuntimeConfig(num_nodes=8))
    rt.load_behaviors(cls, Counter)
    done = rt.spawn(Counter, at=0)
    head = rt.spawn(cls, at=0)
    rt.run()
    t0 = rt.now
    rt.send(head, "extend", K, done)
    rt.run()
    assert rt.state_of(done).value == 1
    return rt.now - t0


def test_alias_latency_hiding(benchmark):
    def run_both():
        return run_chain(AliasChain), run_chain(SplitChain)

    alias_us, split_us = benchmark.pedantic(run_both, rounds=1, iterations=1)
    publish("ablation_aliases", render_table(
        f"Ablation A1 — chain of {K} remote creations (simulated us)",
        ["creation protocol", "total", "per hop"],
        [
            ("aliases (latency hidden)", fmt_us(alias_us), fmt_us(alias_us / K)),
            ("split-phase (wait for address)", fmt_us(split_us), fmt_us(split_us / K)),
        ],
        note="With aliases the creator resumes after 5.83 us; split-phase "
             "pays the full creation round trip per hop.",
    ))
    # Split-phase costs at least an extra round trip per hop.
    assert split_us > 1.3 * alias_us
