#!/usr/bin/env python
"""Engine throughput benchmark: host events/sec, before vs after.

Two pure-engine microbenchmarks (ping-pong and fan-out) run on both the
overhauled engine (:mod:`repro.sim.engine`) and the vendored seed
engine (:mod:`_seed_engine`), so the reported speedup is measured in
one process on one machine.  Two application workloads (fibonacci and
systolic matmul) then time the full runtime stack on the current
engine, tracking the whole-system events/sec trajectory from PR to PR.

Results are written as JSON (default: ``BENCH_engine.json`` at the
repo root) and printed as a table.  Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py            # full run
    PYTHONPATH=src python benchmarks/bench_engine.py --quick    # smoke sizes

The tier-1 suite never runs this module's timed loops; the pytest
companion lives behind the ``bench`` marker (see pyproject.toml).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List, Tuple

_HERE = os.path.dirname(os.path.abspath(__file__))
_REPO_ROOT = os.path.dirname(_HERE)
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)
_SRC = os.path.join(_REPO_ROOT, "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from _seed_engine import SeedSimNode, SeedSimulator  # noqa: E402

from repro.sim.engine import SimNode, Simulator  # noqa: E402

#: Bump when the JSON layout changes.
SCHEMA = "bench_engine/v1"

DEFAULT_OUT = os.path.join(_REPO_ROOT, "BENCH_engine.json")

#: Simulated inter-hop latency for the microbenchmarks (value is
#: irrelevant to throughput; it only spaces the virtual clock).
HOP_US = 0.5


# ----------------------------------------------------------------------
# pure-engine microbenchmarks (seed vs current)
# ----------------------------------------------------------------------
def seed_pingpong(rounds: int) -> int:
    """Two nodes volley one message; the seed engine's closure style."""
    sim = SeedSimulator()
    nodes = [SeedSimNode(0, sim), SeedSimNode(1, sim)]

    def hop(me: int, peer: int, n: int) -> None:
        nodes[me].charge(0.1)
        if n > 0:
            nodes[peer].execute_preempting(
                sim.now + HOP_US, lambda: hop(peer, me, n - 1), label="pingpong"
            )

    sim.schedule(0.0, lambda: hop(0, 1, rounds), label="pingpong")
    sim.run()
    return sim.events_executed


def new_pingpong(rounds: int) -> int:
    """The same volley on the overhauled engine's args pass-through."""
    sim = Simulator()
    nodes = [SimNode(0, sim), SimNode(1, sim)]

    def hop(me: int, peer: int, n: int) -> None:
        nodes[me].charge(0.1)
        if n > 0:
            nodes[peer].post_preempting(sim.now + HOP_US, hop, (peer, me, n - 1))

    nodes[0].post(0.0, hop, (0, 1, rounds))
    sim.run()
    return sim.events_executed


def seed_fanout(total: int, width: int = 64) -> int:
    """One generator scatters bursts over ``width`` nodes (seed style)."""
    sim = SeedSimulator()
    nodes = [SeedSimNode(i, sim) for i in range(width)]
    burst = width
    remaining = [total]

    def spray() -> None:
        n = min(burst, remaining[0])
        remaining[0] -= n
        t = sim.now + HOP_US
        for i in range(n):
            node = nodes[i % width]
            node.execute(t, lambda node=node: node.charge(0.1), label="fan")
        if remaining[0] > 0:
            sim.schedule(t, spray, label="spray")

    sim.schedule(0.0, spray, label="spray")
    sim.run()
    return sim.events_executed


def new_fanout(total: int, width: int = 64) -> int:
    """The same scatter on the overhauled engine."""
    sim = Simulator()
    nodes = [SimNode(i, sim) for i in range(width)]
    burst = width
    remaining = [total]

    def spray() -> None:
        n = min(burst, remaining[0])
        remaining[0] -= n
        t = sim.now + HOP_US
        for i in range(n):
            node = nodes[i % width]
            node.post(t, node.charge, (0.1,))
        if remaining[0] > 0:
            sim.post(t, spray)

    sim.post(0.0, spray)
    sim.run()
    return sim.events_executed


def _time_best(fn: Callable[[], int], repeats: int) -> Tuple[int, float]:
    """Run ``fn`` ``repeats`` times; return (events, best wall seconds)."""
    best = float("inf")
    events = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        events = fn()
        wall = time.perf_counter() - t0
        if wall < best:
            best = wall
    return events, best


def run_micro(name: str, seed_fn, new_fn, size: int, repeats: int) -> Dict:
    seed_events, seed_wall = _time_best(lambda: seed_fn(size), repeats)
    new_events, new_wall = _time_best(lambda: new_fn(size), repeats)
    if seed_events != new_events:
        raise AssertionError(
            f"{name}: engines disagree on event count "
            f"(seed={seed_events}, current={new_events})"
        )
    seed_eps = seed_events / seed_wall if seed_wall > 0 else 0.0
    new_eps = new_events / new_wall if new_wall > 0 else 0.0
    return {
        "events": new_events,
        "seed": {"wall_s": round(seed_wall, 6), "events_per_sec": round(seed_eps)},
        "current": {"wall_s": round(new_wall, 6), "events_per_sec": round(new_eps)},
        "speedup": round(new_eps / seed_eps, 3) if seed_eps else None,
    }


# ----------------------------------------------------------------------
# full-stack application workloads (current engine only)
# ----------------------------------------------------------------------
def run_fib_app(n: int, num_nodes: int, *, trace: bool = False,
                backend: str = "sim", transport: str = "pipe") -> Dict:
    """fib(n) with dynamic load balancing — the §7.2 workload shape.

    ``transport`` selects the mp backend's interconnect ("pipe" or
    "socket"); other backends ignore it.
    """
    from repro.apps.fibonacci import fib_program, fib_value
    from repro.config import LoadBalanceParams, MpParams, RuntimeConfig
    from repro.runtime.system import HalRuntime

    cfg = RuntimeConfig(num_nodes=num_nodes, seed=1995, backend=backend,
                        load_balance=LoadBalanceParams(enabled=True),
                        mp=MpParams(transport=transport))
    t0 = time.perf_counter()
    rt = HalRuntime(cfg, trace=trace)
    try:
        rt.load(fib_program())
        target, box = rt.make_collector(from_node=0)
        rt.spawn_task("fib", n, target, 0, at=0)
        rt.run()
        wall = time.perf_counter() - t0
        if not box or box[0] != fib_value(n):
            raise AssertionError(f"fib({n}) benchmark produced a wrong result")
        events = rt.machine.events_executed
        return {
            "n": n,
            "nodes": num_nodes,
            "backend": backend,
            "wall_s": round(wall, 6),
            "sim_events": events,
            "events_per_sec": round(events / wall) if wall > 0 else 0,
            "sim_time_us": round(rt.now, 3),
        }
    finally:
        rt.close()


def run_systolic_app(n: int, num_nodes: int) -> Dict:
    """Cannon matmul on a sqrt(P) x sqrt(P) grid — the §7.3 workload.

    Mirrors :func:`repro.apps.systolic.run_systolic` but keeps the
    runtime in hand for the event counter and skips the O(n^3) NumPy
    verification (correctness is tier-1's job, not the benchmark's).
    """
    import math

    from repro.apps.systolic import BlockActor, GridCoordinator, systolic_program
    from repro.config import RuntimeConfig
    from repro.runtime.system import HalRuntime

    q = int(math.isqrt(num_nodes))
    if q * q != num_nodes or n % q != 0:
        raise ValueError(f"bad systolic geometry: n={n}, nodes={num_nodes}")
    t0 = time.perf_counter()
    rt = HalRuntime(RuntimeConfig(num_nodes=num_nodes, seed=11))
    rt.load(systolic_program())
    group = rt.grpnew(BlockActor, num_nodes, n, q, 11, placement="cyclic")
    coord = rt.spawn(GridCoordinator, num_nodes, at=0)
    rt.run()
    sim_start = rt.now
    rt.broadcast(group, "start", coord)
    done = rt.call(coord, "run", 0)
    rt.run()
    wall = time.perf_counter() - t0
    if done != num_nodes:
        raise AssertionError(f"systolic finished {done}/{num_nodes} cells")
    events = rt.machine.events_executed
    return {
        "n": n,
        "nodes": num_nodes,
        "wall_s": round(wall, 6),
        "sim_events": events,
        "events_per_sec": round(events / wall) if wall > 0 else 0,
        "sim_time_us": round(rt.now - sim_start, 3),
    }


def run_tracing_overhead(n: int, num_nodes: int) -> Dict:
    """The same fib workload with causal tracing off vs on.

    Tracing-off is the guarded hot path (null recorder + cached flag):
    its cost must stay in the noise.  Tracing-on quantifies the full
    price of span recording + histograms for users who opt in.
    """
    off = run_fib_app(n, num_nodes=num_nodes, trace=False)
    on = run_fib_app(n, num_nodes=num_nodes, trace=True)
    if off["sim_time_us"] != on["sim_time_us"]:
        raise AssertionError(
            "tracing perturbed the simulation: "
            f"{off['sim_time_us']} != {on['sim_time_us']} simulated us"
        )
    overhead = (
        (off["events_per_sec"] - on["events_per_sec"])
        / off["events_per_sec"] * 100.0
        if off["events_per_sec"] else 0.0
    )
    return {
        "off": off,
        "on": on,
        "overhead_pct": round(overhead, 2),
    }


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def run_bench(*, quick: bool = False, repeats: int = 3,
              skip_apps: bool = False) -> Dict:
    if quick:
        pp_rounds, fan_total, fib_n, sys_n, repeats = 2_000, 4_000, 10, 8, 1
    else:
        pp_rounds, fan_total, fib_n, sys_n = 150_000, 300_000, 18, 32
        repeats = max(1, repeats)

    results: Dict = {
        "schema": SCHEMA,
        "created_unix": int(time.time()),
        "python": sys.version.split()[0],
        "quick": quick,
        "pingpong": run_micro("pingpong", seed_pingpong, new_pingpong,
                              pp_rounds, repeats),
        "fanout": run_micro("fanout", seed_fanout, new_fanout,
                            fan_total, repeats),
    }
    if not skip_apps:
        results["apps"] = {
            "fibonacci": run_fib_app(fib_n, num_nodes=8),
            "systolic": run_systolic_app(sys_n, num_nodes=16),
        }
        results["tracing"] = run_tracing_overhead(fib_n, num_nodes=8)
        # Real-time threaded backend on the same fib workload.
        results["backend_threaded"] = run_fib_app(
            fib_n, num_nodes=4, backend="threaded"
        )
        # Process-per-node backend on the same workload: the only case
        # where node execution escapes the GIL.  Batched binary frames
        # over the default pipe mesh, and the same wire path over the
        # UNIX-domain socket mesh.  Both ARE regression-gated now that
        # the batched path landed (generous threshold absorbs host
        # scheduling noise; see GATED in check_regression.py).
        results["backend_mp"] = run_fib_app(
            fib_n, num_nodes=4, backend="mp"
        )
        results["backend_mp_socket"] = run_fib_app(
            fib_n, num_nodes=4, backend="mp", transport="socket"
        )
    return results


def render(results: Dict) -> str:
    lines = ["engine throughput (host events/sec)",
             "===================================="]
    for name in ("pingpong", "fanout"):
        r = results[name]
        lines.append(
            f"{name:<10} events={r['events']:>9,}  "
            f"seed={r['seed']['events_per_sec']:>11,}/s  "
            f"current={r['current']['events_per_sec']:>11,}/s  "
            f"speedup={r['speedup']:.2f}x"
        )
    for name, r in results.get("apps", {}).items():
        lines.append(
            f"app:{name:<9} n={r['n']:<4} nodes={r['nodes']:<3} "
            f"sim_events={r['sim_events']:>9,}  "
            f"host={r['events_per_sec']:>11,} ev/s"
        )
    tr = results.get("tracing")
    if tr:
        lines.append(
            f"tracing    off={tr['off']['events_per_sec']:>11,}/s  "
            f"on={tr['on']['events_per_sec']:>11,}/s  "
            f"overhead={tr['overhead_pct']:.1f}%"
        )
    bt = results.get("backend_threaded")
    if bt:
        lines.append(
            f"threaded   n={bt['n']:<4} nodes={bt['nodes']:<3} "
            f"events={bt['sim_events']:>9,}  "
            f"host={bt['events_per_sec']:>11,} ev/s"
        )
    bm = results.get("backend_mp")
    if bm:
        lines.append(
            f"mp/pipe    n={bm['n']:<4} nodes={bm['nodes']:<3} "
            f"events={bm['sim_events']:>9,}  "
            f"host={bm['events_per_sec']:>11,} ev/s"
        )
    bs = results.get("backend_mp_socket")
    if bs:
        lines.append(
            f"mp/socket  n={bs['n']:<4} nodes={bs['nodes']:<3} "
            f"events={bs['sim_events']:>9,}  "
            f"host={bs['events_per_sec']:>11,} ev/s"
        )
    return "\n".join(lines)


def main(argv: List[str] | None = None) -> Dict:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=DEFAULT_OUT,
                    help="output JSON path (default: repo-root BENCH_engine.json)")
    ap.add_argument("--quick", action="store_true",
                    help="tiny sizes, one repeat (smoke-test mode)")
    ap.add_argument("--repeats", type=int, default=3,
                    help="timing repeats per microbenchmark (best-of)")
    ap.add_argument("--skip-apps", action="store_true",
                    help="microbenchmarks only")
    args = ap.parse_args(argv)

    results = run_bench(quick=args.quick, repeats=args.repeats,
                        skip_apps=args.skip_apps)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(render(results))
    print(f"\nwrote {args.out}")
    return results


if __name__ == "__main__":
    main()
