#!/usr/bin/env python
"""Engine throughput benchmark: host events/sec, before vs after.

Two pure-engine microbenchmarks (ping-pong and fan-out) run on both the
overhauled engine (:mod:`repro.sim.engine`) and the vendored seed
engine (:mod:`_seed_engine`), so the reported speedup is measured in
one process on one machine.  Two application workloads (fibonacci and
systolic matmul) then time the full runtime stack on the current
engine, tracking the whole-system events/sec trajectory from PR to PR.

Results are written as JSON (default: ``BENCH_engine.json`` at the
repo root) and printed as a table.  Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py            # full run
    PYTHONPATH=src python benchmarks/bench_engine.py --quick    # smoke sizes

The tier-1 suite never runs this module's timed loops; the pytest
companion lives behind the ``bench`` marker (see pyproject.toml).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from typing import Callable, Dict, List, Tuple

_HERE = os.path.dirname(os.path.abspath(__file__))
_REPO_ROOT = os.path.dirname(_HERE)
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)
_SRC = os.path.join(_REPO_ROOT, "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from _seed_engine import SeedSimNode, SeedSimulator  # noqa: E402

from repro.sim.engine import SimNode, Simulator  # noqa: E402

#: Bump when the JSON layout changes.
SCHEMA = "bench_engine/v1"

DEFAULT_OUT = os.path.join(_REPO_ROOT, "BENCH_engine.json")

#: Simulated inter-hop latency for the microbenchmarks (value is
#: irrelevant to throughput; it only spaces the virtual clock).
HOP_US = 0.5


# ----------------------------------------------------------------------
# pure-engine microbenchmarks (seed vs current)
# ----------------------------------------------------------------------
def seed_pingpong(rounds: int) -> int:
    """Two nodes volley one message; the seed engine's closure style."""
    sim = SeedSimulator()
    nodes = [SeedSimNode(0, sim), SeedSimNode(1, sim)]

    def hop(me: int, peer: int, n: int) -> None:
        nodes[me].charge(0.1)
        if n > 0:
            nodes[peer].execute_preempting(
                sim.now + HOP_US, lambda: hop(peer, me, n - 1), label="pingpong"
            )

    sim.schedule(0.0, lambda: hop(0, 1, rounds), label="pingpong")
    sim.run()
    return sim.events_executed


def new_pingpong(rounds: int) -> int:
    """The same volley on the overhauled engine's args pass-through."""
    sim = Simulator()
    nodes = [SimNode(0, sim), SimNode(1, sim)]

    def hop(me: int, peer: int, n: int) -> None:
        nodes[me].charge(0.1)
        if n > 0:
            nodes[peer].post_preempting(sim.now + HOP_US, hop, (peer, me, n - 1))

    nodes[0].post(0.0, hop, (0, 1, rounds))
    sim.run()
    return sim.events_executed


def seed_fanout(total: int, width: int = 64) -> int:
    """One generator scatters bursts over ``width`` nodes (seed style)."""
    sim = SeedSimulator()
    nodes = [SeedSimNode(i, sim) for i in range(width)]
    burst = width
    remaining = [total]

    def spray() -> None:
        n = min(burst, remaining[0])
        remaining[0] -= n
        t = sim.now + HOP_US
        for i in range(n):
            node = nodes[i % width]
            node.execute(t, lambda node=node: node.charge(0.1), label="fan")
        if remaining[0] > 0:
            sim.schedule(t, spray, label="spray")

    sim.schedule(0.0, spray, label="spray")
    sim.run()
    return sim.events_executed


def new_fanout(total: int, width: int = 64) -> int:
    """The same scatter on the overhauled engine."""
    sim = Simulator()
    nodes = [SimNode(i, sim) for i in range(width)]
    burst = width
    remaining = [total]

    def spray() -> None:
        n = min(burst, remaining[0])
        remaining[0] -= n
        t = sim.now + HOP_US
        for i in range(n):
            node = nodes[i % width]
            node.post(t, node.charge, (0.1,))
        if remaining[0] > 0:
            sim.post(t, spray)

    sim.post(0.0, spray)
    sim.run()
    return sim.events_executed


def _time_best(fn: Callable[[], int], repeats: int) -> Tuple[int, float]:
    """Run ``fn`` ``repeats`` times; return (events, best wall seconds)."""
    best = float("inf")
    events = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        events = fn()
        wall = time.perf_counter() - t0
        if wall < best:
            best = wall
    return events, best


def run_micro(name: str, seed_fn, new_fn, size: int, repeats: int) -> Dict:
    seed_events, seed_wall = _time_best(lambda: seed_fn(size), repeats)
    new_events, new_wall = _time_best(lambda: new_fn(size), repeats)
    if seed_events != new_events:
        raise AssertionError(
            f"{name}: engines disagree on event count "
            f"(seed={seed_events}, current={new_events})"
        )
    seed_eps = seed_events / seed_wall if seed_wall > 0 else 0.0
    new_eps = new_events / new_wall if new_wall > 0 else 0.0
    return {
        "events": new_events,
        "seed": {"wall_s": round(seed_wall, 6), "events_per_sec": round(seed_eps)},
        "current": {"wall_s": round(new_wall, 6), "events_per_sec": round(new_eps)},
        "speedup": round(new_eps / seed_eps, 3) if seed_eps else None,
    }


# ----------------------------------------------------------------------
# full-stack application workloads (current engine only)
# ----------------------------------------------------------------------
def run_fib_app(n: int, num_nodes: int, *, trace: bool = False,
                backend: str = "sim", transport: str = "pipe") -> Dict:
    """fib(n) with dynamic load balancing — the §7.2 workload shape.

    ``transport`` selects the mp backend's interconnect ("pipe" or
    "socket"); other backends ignore it.
    """
    from repro.apps.fibonacci import fib_program, fib_value
    from repro.config import LoadBalanceParams, MpParams, RuntimeConfig
    from repro.runtime.system import HalRuntime

    cfg = RuntimeConfig(num_nodes=num_nodes, seed=1995, backend=backend,
                        load_balance=LoadBalanceParams(enabled=True),
                        mp=MpParams(transport=transport))
    t0 = time.perf_counter()
    rt = HalRuntime(cfg, trace=trace)
    try:
        rt.load(fib_program())
        target, box = rt.make_collector(from_node=0)
        rt.spawn_task("fib", n, target, 0, at=0)
        rt.run()
        wall = time.perf_counter() - t0
        if not box or box[0] != fib_value(n):
            raise AssertionError(f"fib({n}) benchmark produced a wrong result")
        events = rt.machine.events_executed
        return {
            "n": n,
            "nodes": num_nodes,
            "backend": backend,
            "wall_s": round(wall, 6),
            "sim_events": events,
            "events_per_sec": round(events / wall) if wall > 0 else 0,
            "sim_time_us": round(rt.now, 3),
        }
    finally:
        rt.close()


def run_systolic_app(n: int, num_nodes: int) -> Dict:
    """Cannon matmul on a sqrt(P) x sqrt(P) grid — the §7.3 workload.

    Mirrors :func:`repro.apps.systolic.run_systolic` but keeps the
    runtime in hand for the event counter and skips the O(n^3) NumPy
    verification (correctness is tier-1's job, not the benchmark's).
    """
    import math

    from repro.apps.systolic import BlockActor, GridCoordinator, systolic_program
    from repro.config import RuntimeConfig
    from repro.runtime.system import HalRuntime

    q = int(math.isqrt(num_nodes))
    if q * q != num_nodes or n % q != 0:
        raise ValueError(f"bad systolic geometry: n={n}, nodes={num_nodes}")
    t0 = time.perf_counter()
    rt = HalRuntime(RuntimeConfig(num_nodes=num_nodes, seed=11))
    rt.load(systolic_program())
    group = rt.grpnew(BlockActor, num_nodes, n, q, 11, placement="cyclic")
    coord = rt.spawn(GridCoordinator, num_nodes, at=0)
    rt.run()
    sim_start = rt.now
    rt.broadcast(group, "start", coord)
    done = rt.call(coord, "run", 0)
    rt.run()
    wall = time.perf_counter() - t0
    if done != num_nodes:
        raise AssertionError(f"systolic finished {done}/{num_nodes} cells")
    events = rt.machine.events_executed
    return {
        "n": n,
        "nodes": num_nodes,
        "wall_s": round(wall, 6),
        "sim_events": events,
        "events_per_sec": round(events / wall) if wall > 0 else 0,
        "sim_time_us": round(rt.now - sim_start, 3),
    }


def run_dispatch_app(n: int) -> Dict:
    """The naive actor form of fib(n) on one node: every request the
    compiler planned static is eligible for inline stack dispatch.

    One node on purpose — the workload measures the *dispatch* path,
    and the actor form scatters children round-robin, so any p > 1
    makes most sends remote and the hit rate a placement artefact.
    ``local_hit_rate`` is the fraction of local deliveries that took
    the compiled inline path (static or lookup) instead of the generic
    mailbox path; it is regression-gated (see check_regression.py).
    """
    from repro.apps.fibonacci import FibActor, fib_program, fib_value
    from repro.config import RuntimeConfig
    from repro.runtime.system import HalRuntime

    t0 = time.perf_counter()
    rt = HalRuntime(RuntimeConfig(num_nodes=1, seed=1995))
    try:
        rt.load(fib_program())
        root = rt.spawn(FibActor, at=0)
        value = rt.call(root, "compute", n)
        wall = time.perf_counter() - t0
        if value != fib_value(n):
            raise AssertionError(f"dispatch benchmark: fib({n}) = {value}")
        inline_static = rt.stats.counter("exec.inline_static")
        inline_lookup = rt.stats.counter("exec.inline_lookup")
        local_generic = rt.stats.counter("delivery.local_generic")
        inline = inline_static + inline_lookup
        local = inline + local_generic
        events = rt.machine.events_executed
        return {
            "n": n,
            "nodes": 1,
            "wall_s": round(wall, 6),
            "sim_events": events,
            "events_per_sec": round(events / wall) if wall > 0 else 0,
            "sim_time_us": round(rt.now, 3),
            "inline_static": inline_static,
            "inline_lookup": inline_lookup,
            "inline_refused": rt.stats.counter("exec.inline_refused"),
            "local_generic": local_generic,
            "local_hit_rate": round(inline / local, 4) if local else 0.0,
        }
    finally:
        rt.close()


#: Head-sampling rate the always-on tracing bench runs at: one traced
#: journey in 16 keeps its spans, the rest pay only the elision branch.
TRACING_SAMPLE_RATE = 1.0 / 16


#: Words of payload each traffic journey carries (and each relay hop
#: checksums).  Sized so the workload models a store-and-forward
#: service doing real per-message work, not a null RPC — while staying
#: under ``bulk_threshold_bytes`` so hops use the plain AM path.  The
#: overhead budget is defined against this reference workload, and the
#: raw off/on events/sec stay in the JSON so the absolute tracing cost
#: per message is still recoverable from the numbers.
TRAFFIC_PAYLOAD_WORDS = 48


def run_traffic_app(journeys: int, hops: int, num_nodes: int, *,
                    trace: bool, sample_rate: float = 1.0) -> Dict:
    """``journeys`` independent message journeys of ``hops`` cross-node
    hops each, relayed around a ring of actors.

    Unlike fibonacci — whose whole task tree is ONE causal trace, so a
    per-trace sampling decision is all-or-nothing — every driver
    injection here roots its own trace.  That is the traffic shape head
    sampling is for: at rate 1/16, ~15 of 16 journeys take only the
    elision branch through the span hot path.

    Each relay folds the forwarded payload into a rolling Fletcher
    checksum — the per-hop application work of a store-and-forward
    service — so ``overhead_pct`` is tracing cost relative to actors
    that process their messages, not relative to an empty method body.
    """
    from repro.config import RuntimeConfig, TracingParams
    from repro.hal.dsl import behavior, method
    from repro.runtime.system import HalRuntime

    @behavior
    class BenchRelay:
        def __init__(self):
            self.hits = 0
            self.check_a = 0
            self.check_b = 0
            self.peer = None

        @method
        def set_peer(self, ctx, peer):
            self.peer = peer

        @method
        def relay(self, ctx, remaining, payload):
            # The store-and-forward work of an integrity-checking
            # relay: verify the Fletcher checksum of what arrived,
            # then fold it into the rolling restamp before forwarding.
            a = b = 0
            for v in payload:
                a = (a + v) & 0xFFFF
                b = (b + a) & 0xFFFF
            ca = self.check_a
            cb = self.check_b
            for v in payload:
                ca = (ca + v + a) & 0xFFFF
                cb = (cb + ca + b) & 0xFFFF
            self.check_a = ca
            self.check_b = cb
            self.hits += 1
            if remaining > 0:
                ctx.send(self.peer, "relay", remaining - 1, payload)

        @method
        def score(self, ctx):
            return self.hits

    cfg = RuntimeConfig(num_nodes=num_nodes, seed=1995,
                        tracing=TracingParams(sample_rate=sample_rate))
    rt = HalRuntime(cfg, trace=trace)
    try:
        rt.load_behaviors(BenchRelay)
        k = 2 * num_nodes  # cyclic ring: adjacent relays on adjacent nodes
        actors = [rt.spawn(BenchRelay, at=i % num_nodes) for i in range(k)]
        for i, a in enumerate(actors):
            rt.send(a, "set_peer", actors[(i + 1) % k])
        rt.run()
        payload = tuple(range(3, 3 + TRAFFIC_PAYLOAD_WORDS))
        events_before = rt.machine.events_executed
        # pyperf-style hygiene for the timed region: the traced
        # configurations allocate a few more objects per message, and
        # letting the collector run inside the window would charge its
        # cycles to whichever configuration happened to trigger them.
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        t0 = time.perf_counter()  # setup excluded: traffic phase only
        try:
            for j in range(journeys):
                rt.send(actors[j % k], "relay", hops, payload)
            rt.run()
            wall = time.perf_counter() - t0
        finally:
            if gc_was_enabled:
                gc.enable()
        events = rt.machine.events_executed - events_before
        acct = rt.spans.accounting()
        hists = rt.stats.as_dict().get("hists", {})
        delivered = sum(rt.call(a, "score") for a in actors)
        expected = journeys * (hops + 1)
        if delivered != expected:
            raise AssertionError(
                f"traffic benchmark lost messages: {delivered} != {expected}"
            )
        return {
            "journeys": journeys,
            "hops": hops,
            "nodes": num_nodes,
            "wall_s": round(wall, 6),
            "sim_events": events,
            "events_per_sec": round(events / wall) if wall > 0 else 0,
            "sim_time_us": round(rt.now, 3),
            "spans_recorded": acct["spans_recorded"],
            "spans_elided": acct["spans_elided"],
            "traces_started": acct["traces_started"],
            "traces_sampled": acct["traces_sampled"],
            "hists": hists,
        }
    finally:
        rt.close()


def run_tracing_overhead(journeys: int, hops: int, num_nodes: int, *,
                         repeats: int = 1) -> Dict:
    """The traffic workload with tracing off, on (head-sampled at
    1/16), and on-unsampled (rate 1.0, the old always-record mode).

    ``overhead_pct`` — the bench-gated number — is the throughput cost
    of the *sampled* always-on configuration over the untraced
    baseline; the unsampled run is kept as the reference it was cut
    from.  The run also audits the design's two invariants: tracing
    must not perturb simulated time, and the latency histograms must be
    bit-identical at any sample rate (they are exact and unsampled).

    Measurement methodology (shared CI runners drift by tens of
    percent between moments): each round brackets the traced runs with
    an untraced run on either side and uses the bracket mean as that
    round's baseline — controlling linear drift — and the gated number
    is the *median* of the per-round overhead ratios, which rejects
    the occasional round that lands on a noise burst.  Per-config
    throughputs reported alongside are each config's best round, i.e.
    its least noise-contaminated absolute speed.
    """
    rounds = max(1, repeats)
    best: Dict[str, Dict] = {}

    def keep_best(name: str, r: Dict) -> None:
        cur = best.get(name)
        if cur is None or r["events_per_sec"] > cur["events_per_sec"]:
            best[name] = r

    p_on: list = []
    p_unsampled: list = []
    for _ in range(rounds):
        off = run_traffic_app(journeys, hops, num_nodes, trace=False)
        on = run_traffic_app(journeys, hops, num_nodes, trace=True,
                             sample_rate=TRACING_SAMPLE_RATE)
        unsampled = run_traffic_app(journeys, hops, num_nodes, trace=True,
                                    sample_rate=1.0)
        off2 = run_traffic_app(journeys, hops, num_nodes, trace=False)

        for other in (on, unsampled):
            if off["sim_time_us"] != other["sim_time_us"]:
                raise AssertionError(
                    "tracing perturbed the simulation: "
                    f"{off['sim_time_us']} != {other['sim_time_us']} "
                    "simulated us"
                )
        if on["hists"] != unsampled["hists"]:
            raise AssertionError(
                "head sampling perturbed the latency histograms; they "
                "must stay exact and unsampled at any rate"
            )
        if on["spans_recorded"] <= 0 or on["spans_elided"] <= 0:
            raise AssertionError(
                "sampled tracing run should both record and elide spans, "
                f"got recorded={on['spans_recorded']} "
                f"elided={on['spans_elided']}"
            )

        base = (off["events_per_sec"] + off2["events_per_sec"]) / 2.0
        if base > 0:
            p_on.append((base - on["events_per_sec"]) / base * 100.0)
            p_unsampled.append(
                (base - unsampled["events_per_sec"]) / base * 100.0)
        keep_best("off", off)
        keep_best("off", off2)
        keep_best("on", on)
        keep_best("unsampled", unsampled)

    for r in best.values():
        r.pop("hists")  # bulky, and only needed for the equality audit

    def median(xs: list) -> float:
        s = sorted(xs)
        n = len(s)
        if not n:
            return 0.0
        mid = n // 2
        return s[mid] if n % 2 else (s[mid - 1] + s[mid]) / 2.0

    return {
        "off": best["off"],
        "on": best["on"],
        "unsampled": best["unsampled"],
        "sample_rate": TRACING_SAMPLE_RATE,
        "rounds": rounds,
        "overhead_pct": round(median(p_on), 2),
        "unsampled_overhead_pct": round(median(p_unsampled), 2),
    }


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def run_bench(*, quick: bool = False, repeats: int = 3,
              skip_apps: bool = False) -> Dict:
    if quick:
        pp_rounds, fan_total, fib_n, sys_n, repeats = 2_000, 4_000, 10, 8, 1
        tr_journeys, tr_hops = 60, 4
    else:
        pp_rounds, fan_total, fib_n, sys_n = 150_000, 300_000, 18, 32
        tr_journeys, tr_hops = 1_200, 12
        repeats = max(1, repeats)

    results: Dict = {
        "schema": SCHEMA,
        "created_unix": int(time.time()),
        "python": sys.version.split()[0],
        "quick": quick,
        "pingpong": run_micro("pingpong", seed_pingpong, new_pingpong,
                              pp_rounds, repeats),
        "fanout": run_micro("fanout", seed_fanout, new_fanout,
                            fan_total, repeats),
    }
    if not skip_apps:
        results["apps"] = {
            "fibonacci": run_fib_app(fib_n, num_nodes=8),
            "systolic": run_systolic_app(sys_n, num_nodes=16),
        }
        # Compiled dispatch: actor-form fib on one node, counting how
        # many local deliveries the static/lookup plans turned into
        # direct stack invocations.
        results["dispatch"] = run_dispatch_app(10 if quick else 16)
        # The gated overhead number is a median of per-round ratios;
        # give it at least 5 rounds in full mode so one noisy round on
        # a shared runner cannot swing the gate.
        results["tracing"] = run_tracing_overhead(
            tr_journeys, tr_hops, num_nodes=8,
            repeats=repeats if quick else max(repeats, 5),
        )
        # Real-time threaded backend on the same fib workload.
        results["backend_threaded"] = run_fib_app(
            fib_n, num_nodes=4, backend="threaded"
        )
        # Process-per-node backend on the same workload: the only case
        # where node execution escapes the GIL.  Batched binary frames
        # over the default pipe mesh, and the same wire path over the
        # UNIX-domain socket mesh.  Both ARE regression-gated now that
        # the batched path landed (generous threshold absorbs host
        # scheduling noise; see GATED in check_regression.py).
        results["backend_mp"] = run_fib_app(
            fib_n, num_nodes=4, backend="mp"
        )
        results["backend_mp_socket"] = run_fib_app(
            fib_n, num_nodes=4, backend="mp", transport="socket"
        )
        # Shared-memory rings: the kernel-copy-free path.  Its win over
        # the socket mesh needs cores actually running in parallel —
        # on a single-CPU host everything is time-sliced and the
        # socket mesh's kernel-mediated wakeups edge it out, so the
        # committed baseline only gates shm against itself (see
        # check_regression.py); the multi-core crossover is unavailable
        # on the recording host.
        results["backend_mp_shm"] = run_fib_app(
            fib_n, num_nodes=4, backend="mp", transport="shm"
        )
        # Socket-cluster backend: the same frames over a real TCP
        # mesh with the reliable-AM sublayer always attached, so this
        # row prices envelope/ack traffic plus loopback TCP on top of
        # the mp wire path.  Ungated on first landing — recorded for
        # trend visibility until a few nightlies establish its noise
        # band (see check_regression.py).
        results["backend_asyncio"] = run_fib_app(
            fib_n, num_nodes=4, backend="asyncio"
        )
    return results


def render(results: Dict) -> str:
    lines = ["engine throughput (host events/sec)",
             "===================================="]
    for name in ("pingpong", "fanout"):
        r = results[name]
        lines.append(
            f"{name:<10} events={r['events']:>9,}  "
            f"seed={r['seed']['events_per_sec']:>11,}/s  "
            f"current={r['current']['events_per_sec']:>11,}/s  "
            f"speedup={r['speedup']:.2f}x"
        )
    for name, r in results.get("apps", {}).items():
        lines.append(
            f"app:{name:<9} n={r['n']:<4} nodes={r['nodes']:<3} "
            f"sim_events={r['sim_events']:>9,}  "
            f"host={r['events_per_sec']:>11,} ev/s"
        )
    dp = results.get("dispatch")
    if dp:
        lines.append(
            f"dispatch   n={dp['n']:<4} nodes={dp['nodes']:<3} "
            f"inline={dp['inline_static'] + dp['inline_lookup']:>9,}  "
            f"generic={dp['local_generic']:>7,}  "
            f"local_hit_rate={dp['local_hit_rate']:.2%}"
        )
    tr = results.get("tracing")
    if tr:
        lines.append(
            f"tracing    off={tr['off']['events_per_sec']:>11,}/s  "
            f"on={tr['on']['events_per_sec']:>11,}/s  "
            f"overhead={tr['overhead_pct']:.1f}% "
            f"(unsampled {tr['unsampled_overhead_pct']:.1f}%, "
            f"rate {tr['sample_rate']:.4f}, "
            f"{tr['on']['spans_recorded']:,} spans kept)"
        )
    bt = results.get("backend_threaded")
    if bt:
        lines.append(
            f"threaded   n={bt['n']:<4} nodes={bt['nodes']:<3} "
            f"events={bt['sim_events']:>9,}  "
            f"host={bt['events_per_sec']:>11,} ev/s"
        )
    bm = results.get("backend_mp")
    if bm:
        lines.append(
            f"mp/pipe    n={bm['n']:<4} nodes={bm['nodes']:<3} "
            f"events={bm['sim_events']:>9,}  "
            f"host={bm['events_per_sec']:>11,} ev/s"
        )
    bs = results.get("backend_mp_socket")
    if bs:
        lines.append(
            f"mp/socket  n={bs['n']:<4} nodes={bs['nodes']:<3} "
            f"events={bs['sim_events']:>9,}  "
            f"host={bs['events_per_sec']:>11,} ev/s"
        )
    bh = results.get("backend_mp_shm")
    if bh:
        lines.append(
            f"mp/shm     n={bh['n']:<4} nodes={bh['nodes']:<3} "
            f"events={bh['sim_events']:>9,}  "
            f"host={bh['events_per_sec']:>11,} ev/s"
        )
    ba = results.get("backend_asyncio")
    if ba:
        lines.append(
            f"asyncio    n={ba['n']:<4} nodes={ba['nodes']:<3} "
            f"events={ba['sim_events']:>9,}  "
            f"host={ba['events_per_sec']:>11,} ev/s"
        )
    return "\n".join(lines)


def main(argv: List[str] | None = None) -> Dict:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=DEFAULT_OUT,
                    help="output JSON path (default: repo-root BENCH_engine.json)")
    ap.add_argument("--quick", action="store_true",
                    help="tiny sizes, one repeat (smoke-test mode)")
    ap.add_argument("--repeats", type=int, default=3,
                    help="timing repeats per microbenchmark (best-of)")
    ap.add_argument("--skip-apps", action="store_true",
                    help="microbenchmarks only")
    args = ap.parse_args(argv)

    results = run_bench(quick=args.quick, repeats=args.repeats,
                        skip_apps=args.skip_apps)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(render(results))
    print(f"\nwrote {args.out}")
    return results


if __name__ == "__main__":
    main()
