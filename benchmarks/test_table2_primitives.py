"""Table 2: execution time of the runtime primitives (§7.1).

Paper anchors (measured on the CM-5):

- remote creation, local execution with alias: **5.83 us**;
- remote creation, actual end-to-end:          **20.83 us**;
- locality check for locally created actors:   **within 1 us**.

Every row below is measured end-to-end through the live protocol code
(simulated clock deltas), not read from the calibration table.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_us, publish, render_table
from repro.apps import microbench as mb

PAPER = {
    "remote creation (issue, alias)": 5.83,
    "remote creation (actual)": 20.83,
    "locality check (local actor)": 1.0,
}


def run_primitives() -> dict:
    out = {}
    rt = mb.fresh_runtime(4)
    out["local creation"] = mb.measure_local_creation(rt)
    rt = mb.fresh_runtime(4)
    out["remote creation (issue, alias)"] = mb.measure_remote_creation_issue(rt)
    rt = mb.fresh_runtime(4)
    out["remote creation (actual)"] = mb.measure_remote_creation_actual(rt)
    rt = mb.fresh_runtime(4)
    out["locality check (local actor)"] = mb.measure_locality_check(rt)
    rt = mb.fresh_runtime(4)
    m = mb.measure_send_local_generic(rt)
    out["local send (generic, to dispatch)"] = m.to_invoke_us
    rt = mb.fresh_runtime(4)
    m = mb.measure_send_remote(rt, warm=False)
    out["remote send (cold, keyed)"] = m.to_invoke_us
    rt = mb.fresh_runtime(4)
    m = mb.measure_send_remote(rt, warm=True)
    out["remote send (warm, cached addr)"] = m.to_invoke_us
    rt = mb.fresh_runtime(4)
    out["reply slot fill (local)"] = mb.measure_reply_fill(rt)
    return out


def test_table2_runtime_primitives(benchmark):
    measured = benchmark.pedantic(run_primitives, rounds=1, iterations=1)

    rows = []
    for name, us in measured.items():
        paper = PAPER.get(name)
        paper_txt = (
            f"{paper:.2f}" if name != "locality check (local actor)"
            else "< 1"
        ) if paper is not None else "-"
        rows.append((name, fmt_us(us), paper_txt))
    publish("table2_primitives", render_table(
        "Table 2 — execution time of runtime primitives (simulated us)",
        ["primitive", "measured", "paper"],
        rows,
        note="Alias latency hiding: issuing a remote creation returns in "
             f"{measured['remote creation (issue, alias)']:.2f} us while the "
             f"actual creation takes {measured['remote creation (actual)']:.2f} us.",
    ))

    # Anchor assertions: the published numbers must emerge.
    assert measured["remote creation (issue, alias)"] == pytest.approx(5.83, abs=0.05)
    assert measured["remote creation (actual)"] == pytest.approx(20.83, abs=0.5)
    assert measured["locality check (local actor)"] < 1.0
    # Ratios the paper argues from:
    ratio = measured["remote creation (actual)"] / measured["remote creation (issue, alias)"]
    assert 3.0 < ratio < 4.2  # paper: 3.57
    assert measured["remote send (warm, cached addr)"] < measured["remote send (cold, keyed)"]
    assert measured["local send (generic, to dispatch)"] < measured["remote send (warm, cached addr)"]
