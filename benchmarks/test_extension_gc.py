"""Extension: distributed garbage collection cost (§9 conclusions).

"The use of locality descriptors to support location transparency has
the advantage of supporting an efficient garbage collection scheme."
The collector traces through the same name service deliveries use, so
its *mark* cost scales with the live set (plus one message per
cross-node edge) while the *sweep* reclaims any amount of garbage —
including cyclic garbage — at a flat per-actor cost.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_us, publish, render_table
from repro import HalRuntime, RuntimeConfig, behavior, method


@behavior
class WebNode:
    def __init__(self):
        self.links = []

    @method
    def link(self, ctx, ref):
        self.links.append(ref)


def build_web(live: int, garbage: int, p: int = 8):
    """A connected web of ``live`` actors rooted at the first one,
    plus ``garbage`` actors forming unreachable cyclic rings."""
    rt = HalRuntime(RuntimeConfig(num_nodes=p))
    rt.load_behaviors(WebNode)
    live_refs = [rt.spawn(WebNode, at=i % p) for i in range(live)]
    for i, ref in enumerate(live_refs[1:], start=1):
        rt.send(live_refs[(i - 1) // 2], "link", ref)  # binary-tree edges
    trash = [rt.spawn(WebNode, at=i % p) for i in range(garbage)]
    for i, ref in enumerate(trash):
        rt.send(trash[(i + 1) % len(trash)], "link", ref)  # one big ring
    rt.run()
    return rt, live_refs


def run_cells():
    cells = {}
    for live, garbage in ((50, 0), (50, 200), (50, 800), (200, 200)):
        rt, live_refs = build_web(live, garbage)
        report = rt.collect_garbage(roots=[live_refs[0]])
        assert report.reclaimed == garbage
        assert rt.total_actors() == live
        cells[(live, garbage)] = report
    return cells


def test_gc_cost_scaling(benchmark):
    cells = benchmark.pedantic(run_cells, rounds=1, iterations=1)
    rows = [
        (f"{live} live / {garbage} garbage", report.reclaimed,
         report.mark_messages, fmt_us(report.elapsed_us))
        for (live, garbage), report in cells.items()
    ]
    publish("extension_gc", render_table(
        "Extension — distributed mark & sweep over locality descriptors",
        ["web", "reclaimed", "mark msgs", "mark phase (simulated us)"],
        rows,
        note="Cyclic garbage (a ring) is reclaimed; mark traffic scales "
             "with the live set's cross-node edges, not with the amount "
             "of garbage.",
    ))
    # Mark traffic is a function of the live set only:
    assert cells[(50, 0)].mark_messages == cells[(50, 200)].mark_messages
    assert cells[(50, 200)].mark_messages == cells[(50, 800)].mark_messages
    # ...and grows when the live set grows.
    assert cells[(200, 200)].mark_messages > cells[(50, 200)].mark_messages
