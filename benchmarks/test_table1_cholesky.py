"""Table 1: Cholesky decomposition under local vs global
synchronization (§2.2), plus the flow-control ablation (§6.5).

Paper shape: the pipelined implementations that start iteration i+1
before iteration i completes *using only local synchronization* (BP =
block mapping, CP = cyclic mapping) outperform the globally
synchronised ones (Seq = point-to-point, Bcast = broadcast); cyclic
mapping pipelines better than block mapping; and without flow control
the pipelined version "did not deliver the expected performance".
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_ms, publish, render_table
from repro.apps.cholesky import VARIANTS, run_cholesky
from repro.config import NetworkParams, RuntimeConfig

N = 96
PARTITIONS = (4, 8, 16)


def run_grid():
    results = {}
    for p in PARTITIONS:
        for variant in VARIANTS:
            r = run_cholesky(variant, N, p)
            results[(variant, p)] = r.elapsed_us
    return results


def test_table1_sync_regimes(benchmark):
    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    rows = [
        [f"P={p}"] + [fmt_ms(results[(v, p)]) for v in VARIANTS]
        for p in PARTITIONS
    ]
    publish("table1_cholesky", render_table(
        f"Table 1 — Cholesky decomposition, n={N} (simulated ms)",
        ["", *VARIANTS],
        rows,
        note="BP/CP pipeline iterations with local synchronization only "
             "(block vs cyclic mapping); Seq/Bcast complete iteration i "
             "before starting i+1 (global synchronization).",
    ))

    for p in PARTITIONS:
        # local synchronization beats global synchronization
        assert results[("CP", p)] < results[("Seq", p)]
        assert results[("CP", p)] < results[("Bcast", p)]
        assert results[("BP", p)] < results[("Seq", p)]
        assert results[("BP", p)] < results[("Bcast", p)]
        # cyclic mapping pipelines at least as well as block mapping
        assert results[("CP", p)] <= results[("BP", p)] * 1.05
    # pipelined variants scale with P; Seq does not improve
    assert results[("CP", 16)] < results[("CP", 4)]
    assert results[("Seq", 16)] > 0.9 * results[("Seq", 4)]


def run_flow_control_ablation():
    """Pipelined Cholesky with point-to-point bulk column transfers,
    with and without minimal flow control.  A small receive buffer and
    a fine bulk threshold emphasise the congestion the paper saw."""
    out = {}
    for fc in (True, False):
        cfg = RuntimeConfig(
            num_nodes=8,
            flow_control=fc,
            bulk_threshold_bytes=256,
            network=NetworkParams(rx_buffer_bytes=2048),
        )
        r = run_cholesky("CP", N, 8, config=cfg, p2p=True)
        out[fc] = r
    return out


def test_table1_flow_control_ablation(benchmark):
    results = benchmark.pedantic(run_flow_control_ablation, rounds=1, iterations=1)
    rows = [
        ("minimal flow control", fmt_ms(results[True].elapsed_us),
         results[True].backup_events),
        ("no flow control", fmt_ms(results[False].elapsed_us),
         results[False].backup_events),
    ]
    publish("table1_flow_control", render_table(
        f"Table 1 ablation — pipelined (p2p) Cholesky, n={N}, P=8",
        ["configuration", "time (ms)", "packet back-ups"],
        rows,
        note="Without flow control, concurrent column transfers converge on "
             "receiving nodes and back up the network (§6.5).",
    ))
    # Without flow control the network backs up...
    assert results[False].backup_events > results[True].backup_events
    # ...and the run is slower.
    assert results[False].elapsed_us > results[True].elapsed_us
