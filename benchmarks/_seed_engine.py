"""Faithful copy of the seed-revision discrete-event engine.

This module preserves the pre-overhaul hot path — ``@dataclass(order=True)``
events, closure-based node execution, O(n) ``pending`` — exactly as it
shipped in the growth seed.  It exists for two reasons:

1. ``bench_engine.py`` measures the overhauled engine *against* it, so
   ``BENCH_engine.json`` carries honest before/after numbers from the
   same interpreter on the same machine;
2. ``tests/test_engine_order_property.py`` replays randomized
   schedule/cancel workloads on both engines and asserts the firing
   order is bit-identical (the overhaul's ordering contract).

Do not "optimise" this file; it is a recorded baseline.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import CausalityError, SimulationError

Callback = Callable[[], None]


@dataclass(order=True)
class SeedEvent:
    """A scheduled callback.  Ordered by ``(time, seq)``."""

    time: float
    seq: int
    fn: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class SeedSimulator:
    """The seed engine: global event heap plus the simulated clock."""

    def __init__(self, *, max_events: int = 200_000_000) -> None:
        self.now: float = 0.0
        self.max_events = max_events
        self.events_executed: int = 0
        self._heap: list[SeedEvent] = []
        self._seq = itertools.count()
        self._running = False

    def schedule(self, time: float, fn: Callback, *, label: str = "") -> SeedEvent:
        if time < self.now:
            raise CausalityError(
                f"cannot schedule event at t={time:.3f} before now={self.now:.3f}"
            )
        ev = SeedEvent(time=time, seq=next(self._seq), fn=fn, label=label)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_after(self, delay: float, fn: Callback, *, label: str = "") -> SeedEvent:
        if delay < 0:
            raise CausalityError(f"negative delay {delay}")
        return self.schedule(self.now + delay, fn, label=label)

    def step(self) -> bool:
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self.now = ev.time
            self.events_executed += 1
            ev.fn()
            return True
        return False

    def run(
        self,
        *,
        until: Optional[float] = None,
        until_idle: bool = True,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        try:
            while self._heap:
                if self.events_executed >= self.max_events:
                    raise SimulationError(
                        f"exceeded max_events={self.max_events}; "
                        "likely a livelock in the simulated program"
                    )
                nxt = self._heap[0]
                if nxt.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and nxt.time > until:
                    self.now = until
                    break
                self.step()
                if stop_when is not None and stop_when():
                    break
        finally:
            self._running = False
        return self.now

    @property
    def pending(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None


class SeedSimNode:
    """The seed processing element (closure-based execution)."""

    __slots__ = ("node_id", "sim", "busy_until", "now", "_in_handler", "busy_us")

    def __init__(self, node_id: int, sim: SeedSimulator) -> None:
        self.node_id = node_id
        self.sim = sim
        self.busy_until: float = 0.0
        self.now: float = 0.0
        self.busy_us: float = 0.0
        self._in_handler = False

    def execute(self, at: float, fn: Callback, *, label: str = "") -> SeedEvent:
        return self.sim.schedule(at, lambda: self._run(fn), label=label)

    def execute_now(self, fn: Callback, *, label: str = "") -> SeedEvent:
        at = self.now if self._in_handler else self.sim.now
        return self.execute(at, fn, label=label)

    def _run(self, fn: Callback) -> None:
        if self._in_handler:
            raise SimulationError(f"re-entrant execution on node {self.node_id}")
        start = max(self.sim.now, self.busy_until)
        self.now = start
        self._in_handler = True
        try:
            fn()
        finally:
            self._in_handler = False
            self.busy_until = self.now

    def execute_preempting(self, at: float, fn: Callback, *, label: str = "") -> SeedEvent:
        return self.sim.schedule(at, lambda: self._run_preempting(fn), label=label)

    def _run_preempting(self, fn: Callback) -> None:
        if self._in_handler:
            raise SimulationError(f"re-entrant execution on node {self.node_id}")
        arrival = self.sim.now
        victim_resume = self.busy_until
        self.now = arrival
        self._in_handler = True
        try:
            fn()
        finally:
            self._in_handler = False
            stolen = self.now - arrival
            if victim_resume > arrival:
                self.busy_until = victim_resume + stolen
            else:
                self.busy_until = self.now

    def charge(self, us: float) -> None:
        if us < 0:
            raise SimulationError(f"negative charge {us}")
        self.now += us
        self.busy_us += us

    @property
    def in_handler(self) -> bool:
        return self._in_handler
