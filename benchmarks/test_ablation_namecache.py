"""Ablation A2: locality-descriptor address caching (§4.1).

"The memory address of the locality descriptor in the receiving node
is sent back to the sending node and cached ... making name table
look-up in the receiving node unnecessary."  We measure a long
request/reply ping stream with caching on and off.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_us, publish, render_table
from repro import HalRuntime, RuntimeConfig
from tests.conftest import EchoServer

PINGS = 50


def run_pings(caching: bool) -> float:
    rt = HalRuntime(RuntimeConfig(num_nodes=2, descriptor_caching=caching))
    rt.load_behaviors(EchoServer)
    server = rt.spawn(EchoServer, at=1)
    rt.run()
    t0 = rt.now
    for i in range(PINGS):
        assert rt.call(server, "echo", i, from_node=0) == i
    elapsed = rt.now - t0
    stats = rt.stats
    return elapsed, stats.counter("delivery.sent_direct"), stats.counter(
        "delivery.sent_keyed"
    )


def test_descriptor_caching(benchmark):
    def run_both():
        return run_pings(True), run_pings(False)

    (on_us, on_direct, on_keyed), (off_us, off_direct, off_keyed) = (
        benchmark.pedantic(run_both, rounds=1, iterations=1)
    )
    publish("ablation_namecache", render_table(
        f"Ablation A2 — {PINGS} cross-node request/replies (simulated us)",
        ["configuration", "total", "per ping", "direct", "keyed"],
        [
            ("descriptor caching on", fmt_us(on_us), fmt_us(on_us / PINGS),
             on_direct, on_keyed),
            ("descriptor caching off", fmt_us(off_us), fmt_us(off_us / PINGS),
             off_direct, off_keyed),
        ],
        note="Cached descriptor addresses replace the receiving node's "
             "hash lookup with a direct dereference.",
    ))
    assert on_us < off_us
    assert on_direct >= PINGS - 1     # everything after the first send
    assert off_direct == 0            # never cached
    assert off_keyed >= PINGS
