"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables: it runs the
workload on the simulated machine, renders the same rows the paper
reports, asserts the qualitative *shape* (who wins, roughly by how
much, where the crossovers fall), and records the harness wall time
via pytest-benchmark.  Rendered tables are written to
``benchmarks/results/`` and echoed to stdout (visible with ``-s`` or
in the captured-output section).
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    note: str = "",
) -> str:
    rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def publish(name: str, text: str) -> None:
    """Print the table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    print("\n" + text + "\n")


def fmt_us(us: float) -> str:
    return f"{us:.2f}"


def fmt_ms(us: float) -> str:
    return f"{us / 1000.0:.2f}"


def fmt_s(us: float) -> str:
    return f"{us / 1e6:.3f}"
