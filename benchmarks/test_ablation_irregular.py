"""Ablation A6: irregular workloads need dynamic placement (§1).

"We have argued that such flexibility is essential for scalable
execution of dynamic, irregular applications" — adaptive quadrature
with a spiked integrand makes the claim measurable: the recursion
depth under the spike is unknowable statically, so static placement
leaves most nodes idle while work stealing stays near-linear.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_ms, publish, render_table
from repro.apps.quadrature import run_quadrature

PARTITIONS = (2, 4, 8, 16)


def run_grid():
    out = {}
    out[("static", 1)] = run_quadrature(1, load_balance=False)
    for p in PARTITIONS:
        out[("static", p)] = run_quadrature(p, load_balance=False)
        out[("lb", p)] = run_quadrature(p, load_balance=True)
    return out


def test_irregular_workload_needs_stealing(benchmark):
    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    base = results[("static", 1)].elapsed_us
    rows = []
    for p in PARTITIONS:
        s = results[("static", p)]
        l = results[("lb", p)]
        rows.append((
            f"P={p}",
            fmt_ms(s.elapsed_us), f"{base / s.elapsed_us:.1f}x",
            fmt_ms(l.elapsed_us), f"{base / l.elapsed_us:.1f}x",
            l.steals,
        ))
    publish("ablation_irregular", render_table(
        "Ablation A6 — adaptive quadrature of a spiked integrand "
        "(simulated ms)",
        ["", "static", "speedup", "stealing", "speedup", "steals"],
        rows,
        note="The spike's recursion depth is unknowable statically; "
             "dynamic load balancing turns an idle-heavy static "
             "placement into near-linear scaling.",
    ))

    for p in PARTITIONS:
        s = results[("static", p)]
        l = results[("lb", p)]
        assert l.error < 1e-6 and s.error < 1e-6  # always correct
        assert l.elapsed_us < s.elapsed_us
    # static placement stops scaling (the spike serialises it) ...
    static_speedup_16 = base / results[("static", 16)].elapsed_us
    assert static_speedup_16 < 8
    # ... while stealing keeps scaling well past it
    lb_speedup_16 = base / results[("lb", 16)].elapsed_us
    assert lb_speedup_16 > 1.5 * static_speedup_16
