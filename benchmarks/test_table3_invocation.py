"""Table 3: comparison of comparable method-invocation costs (§7.1).

The paper reports minimum invocation costs where its own number is the
sum of the locality-check time and the function-invocation time, and
argues the result is comparable to ABCL/onAP1000 and Concert.  We
regenerate the comparison across dispatch regimes of *this* runtime:

- static dispatch (unique inferred type)  — the paper's headline path;
- lookup dispatch (finite type set);
- generic buffered local send;
- fully queued (static dispatch disabled — an encapsulated runtime in
  the style of the systems the paper compares against).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_us, publish, render_table
from repro.apps import microbench as mb

ROWS = (
    ("static (locality check + invoke)", "static"),
    ("lookup (+ method lookup)", "lookup"),
    ("generic buffered (local)", "generic"),
    ("queue-based runtime (no static dispatch)", "queued"),
)


def test_table3_invocation_costs(benchmark):
    regimes = benchmark.pedantic(
        mb.measure_invocation_regimes, rounds=1, iterations=1
    )
    rt = mb.fresh_runtime(2)
    costs = rt.costs

    rows = [(label, fmt_us(regimes[key])) for label, key in ROWS]
    rows.append((
        "  components: locality check", fmt_us(costs.locality_check_total_us)
    ))
    rows.append(("  components: function invocation", fmt_us(costs.invoke_us)))
    publish("table3_invocation", render_table(
        "Table 3 — comparable method-invocation costs (simulated us, minimum)",
        ["dispatch mechanism", "us"],
        rows,
        note="The static row equals locality check + function invocation, "
             "the formula Table 3 uses for this system's entries.",
    ))

    # The Table 3 identity:
    assert regimes["static"] == pytest.approx(
        costs.locality_check_total_us + costs.invoke_us
    )
    # Ordering and rough magnitudes:
    assert regimes["static"] < regimes["lookup"] < regimes["generic"]
    assert regimes["generic"] == pytest.approx(regimes["queued"])
    # Static dispatch buys roughly 3x over the buffered path (the gap
    # that justifies compiler-controlled scheduling, §6.3).
    assert 2.5 < regimes["generic"] / regimes["static"] < 5.0
    # Sub-2us static invocation, in the range the paper reports.
    assert regimes["static"] < 2.0
