"""Extension: the runtime on a network of workstations (§9).

The paper's conclusions: "networks of workstations with fast
interconnect network have drawn more and more attention ... We are
investigating ways to reconcile such hardware platforms and our
runtime system."  The runtime is machine-independent above the
messaging layer, so we can run the *same* workloads on an ATM-era NOW
model (``NetworkParams.now_atm``) and measure what the platform shift
does: coarse-grained work (systolic matmul) ports almost for free,
fine-grained work (Fibonacci tasks) feels the 10x latency.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_ms, publish, render_table
from repro.config import LoadBalanceParams, NetworkParams, RuntimeConfig
from repro.apps.fibonacci import run_fib
from repro.apps.systolic import run_systolic

P = 16
FIB_N = 18
MM_N = 256


def run_platforms():
    out = {}
    for platform, net in (("CM-5", NetworkParams.cm5()),
                          ("NOW/ATM", NetworkParams.now_atm())):
        cfg = RuntimeConfig(
            num_nodes=P, network=net,
            load_balance=LoadBalanceParams(enabled=True),
        )
        out[(platform, "fib")] = run_fib(
            FIB_N, P, load_balance=True, config=cfg
        ).elapsed_us
        cfg_mm = RuntimeConfig(num_nodes=P, network=net)
        out[(platform, "matmul")] = run_systolic(
            MM_N, P, config=cfg_mm
        ).elapsed_us
    return out


def test_now_platform_port(benchmark):
    results = benchmark.pedantic(run_platforms, rounds=1, iterations=1)
    fib_ratio = results[("NOW/ATM", "fib")] / results[("CM-5", "fib")]
    mm_ratio = results[("NOW/ATM", "matmul")] / results[("CM-5", "matmul")]
    rows = [
        (f"fib({FIB_N}), stealing", fmt_ms(results[("CM-5", "fib")]),
         fmt_ms(results[("NOW/ATM", "fib")]), f"{fib_ratio:.2f}x"),
        (f"systolic {MM_N}^2", fmt_ms(results[("CM-5", "matmul")]),
         fmt_ms(results[("NOW/ATM", "matmul")]), f"{mm_ratio:.2f}x"),
    ]
    publish("extension_now", render_table(
        f"Extension — the same runtime on a NOW (P={P}, simulated ms)",
        ["workload", "CM-5", "NOW/ATM", "slowdown"],
        rows,
        note="Only NetworkParams changes; kernels, name service and "
             "compiler interface are untouched (§9 future work).",
    ))
    # Both workloads still complete correctly on the NOW (asserted
    # inside the apps); the platform shift costs something...
    assert fib_ratio > 1.02
    assert mm_ratio > 1.0
    # ...but the coarse-grained workload absorbs the latency far
    # better than the fine-grained one.
    assert mm_ratio < 1.3
    assert fib_ratio > 1.5 * mm_ratio or fib_ratio > 1.3
