"""Table 5: systolic (Cannon) matrix multiplication (§7.3).

Paper shape: execution uses only per-actor local synchronization; the
performance peaks at **434 MFlops for a 1024x1024 matrix on the
64-node partition** (the cost model's per-node flop rate makes 435.4
the ceiling).  MFlops must grow with the partition and with the matrix
size, approaching that peak at the largest configuration.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_s, publish, render_table
from repro.apps.systolic import run_systolic

#: (matrix size, nodes) grid; (1024, 64) is the paper's peak cell.
GRID = ((128, 4), (256, 4), (128, 16), (256, 16), (512, 16),
        (256, 64), (512, 64), (1024, 64))


def run_grid():
    return {(n, p): run_systolic(n, p) for n, p in GRID}


def test_table5_systolic_matmul(benchmark):
    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    rows = [
        (f"{n}x{n}", f"P={p}", fmt_s(r.elapsed_us), f"{r.mflops:.1f}")
        for (n, p), r in results.items()
    ]
    peak = max(r.mflops for r in results.values())
    publish("table5_systolic", render_table(
        "Table 5 — systolic matrix multiplication (simulated)",
        ["matrix", "partition", "time (s)", "MFlops"],
        rows,
        note=f"Peak {peak:.1f} MFlops at the largest configuration "
             "(paper: peaks at 434 MFlops for 1024x1024 on 64 nodes).",
    ))

    # MFlops grow with partition size at fixed n...
    assert results[(256, 16)].mflops > results[(256, 4)].mflops
    assert results[(256, 64)].mflops > results[(256, 16)].mflops
    # ...and with matrix size at fixed P (communication amortised).
    assert results[(512, 16)].mflops > results[(128, 16)].mflops
    assert results[(1024, 64)].mflops > results[(256, 64)].mflops
    # The peak is the paper's cell and lands near 434 MFlops.
    best_cell = max(results, key=lambda k: results[k].mflops)
    assert best_cell == (1024, 64)
    assert results[(1024, 64)].mflops == pytest.approx(434.0, rel=0.12)
