"""Ablation A5: message delivery cost vs forwarding-chain length
(§4.3).

A cold sender whose best guess is k migrations stale triggers an FIR
chase along the chain; the chase grows with chain length, while the
*second* message (after the chain back-patched every table) goes
direct regardless of history.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_us, publish, render_table
from repro import HalRuntime, RuntimeConfig
from tests.conftest import Counter, Hopper


def measure_chain(chain_len: int):
    """Move an actor ``chain_len`` times *without* telling node 7,
    then measure node 7's first (stale, FIR) and second (repaired)
    request latencies."""
    rt = HalRuntime(RuntimeConfig(num_nodes=8, seed=7))
    rt.load_behaviors(Counter, Hopper)
    ref = rt.spawn(Hopper, at=0)
    # Prime node 7's cache with the original location.
    assert rt.call(ref, "whereami", from_node=7) == 0
    route = [1, 2, 3, 4, 5, 6]
    for dest in route[:chain_len]:
        rt.send(ref, "hop", dest, from_node=dest)  # sender knows; 7 doesn't
        rt.run()
    # Sabotage the shortcuts so node 7 must walk the chain: restore
    # node 7's stale guess (the birthplace caching would otherwise
    # have short-circuited the walk — that is measured separately).
    desc7 = rt.kernels[7].table.get(ref.address)
    desc7.set_remote(0, rt.kernels[0].table.get(ref.address).addr if chain_len == 0 else -1)
    if chain_len > 0:
        # also make intermediate hops honest chain links
        for i, node in enumerate([0] + route[:chain_len - 1]):
            d = rt.kernels[node].table.get(ref.address)
            d.set_remote(route[i] if i < len(route) else node)
    t0 = rt.now
    assert rt.call(ref, "whereami", from_node=7) is not None
    first = rt.now - t0
    rt.run()
    t0 = rt.now
    rt.call(ref, "whereami", from_node=7)
    second = rt.now - t0
    return first, second, rt.stats.counter("fir.relayed")


def test_fir_chain_cost(benchmark):
    def run_all():
        return {k: measure_chain(k) for k in (0, 1, 2, 4, 6)}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        (f"{k} migrations", fmt_us(first), fmt_us(second), relays)
        for k, (first, second, relays) in results.items()
    ]
    publish("ablation_migration", render_table(
        "Ablation A5 — delivery latency vs forwarding-chain length "
        "(simulated us)",
        ["chain", "first msg (FIR chase)", "second msg (repaired)", "FIR relays"],
        rows,
        note="The first message walks the chain with an FIR; the reply "
             "back-patches every table, so the second message is O(1).",
    ))

    firsts = [results[k][0] for k in (0, 1, 2, 4, 6)]
    # chase cost grows with chain length
    assert firsts[-1] > firsts[1] > firsts[0]
    # repaired sends are cheap and flat
    seconds = [results[k][1] for k in (0, 1, 2, 4, 6)]
    assert max(seconds) < 1.6 * min(seconds)
    assert max(seconds) < firsts[-1]
