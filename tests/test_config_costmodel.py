"""Configuration validation and cost-model consistency."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    LoadBalanceParams,
    NetworkParams,
    RuntimeConfig,
    SchedulerParams,
)
from repro.runtime.costmodel import CostModel


class TestRuntimeConfig:
    def test_defaults_are_cm5_shaped(self):
        cfg = RuntimeConfig()
        assert cfg.num_nodes == 8
        assert cfg.topology == "fattree"
        assert cfg.alias_creation
        assert cfg.descriptor_caching
        assert cfg.flow_control
        assert cfg.scheduler.static_dispatch
        assert cfg.scheduler.stack_scheduling
        assert not cfg.load_balance.enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(num_nodes=0)
        with pytest.raises(ValueError):
            RuntimeConfig(bulk_threshold_bytes=0)

    def test_with_returns_modified_copy(self):
        cfg = RuntimeConfig()
        cfg2 = cfg.with_(num_nodes=32, flow_control=False)
        assert cfg2.num_nodes == 32
        assert not cfg2.flow_control
        assert cfg.num_nodes == 8  # original untouched

    def test_frozen(self):
        cfg = RuntimeConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.num_nodes = 4  # type: ignore[misc]


class TestCostModel:
    def test_documented_sums(self):
        c = CostModel()
        # local creation ~ 12 us
        assert c.create_local_total_us == pytest.approx(12.0)
        # the paper's alias issue path: exactly 5.83 us
        assert c.remote_create_issue_total_us == pytest.approx(5.83)
        # locality check under a microsecond
        assert c.locality_check_total_us < 1.0
        # Table 3 static dispatch formula
        assert c.static_dispatch_total_us == pytest.approx(
            c.locality_check_total_us + c.invoke_us
        )

    def test_all_costs_non_negative(self):
        c = CostModel()
        for f in dataclasses.fields(c):
            assert getattr(c, f.name) >= 0, f.name

    def test_scaled(self):
        c = CostModel().scaled(2.0)
        assert c.dispatch_us == pytest.approx(2 * CostModel().dispatch_us)
        assert c.remote_create_issue_total_us == pytest.approx(2 * 5.83)

    def test_custom_costs_flow_into_runtime(self):
        from repro import HalRuntime, RuntimeConfig
        from tests.conftest import Counter
        slow = CostModel().scaled(3.0)
        rt_fast = HalRuntime(RuntimeConfig(num_nodes=1))
        rt_slow = HalRuntime(RuntimeConfig(num_nodes=1), costs=slow)
        for rt in (rt_fast, rt_slow):
            rt.load_behaviors(Counter)
            ref = rt.spawn(Counter, at=0)
            for _ in range(10):
                rt.send(ref, "incr")
            rt.run()
        assert rt_slow.now > 2 * rt_fast.now


class TestSubConfigs:
    def test_scheduler_params(self):
        s = SchedulerParams(max_inline_depth=4, static_dispatch=False)
        assert s.max_inline_depth == 4
        assert s.collective_broadcast

    def test_lb_params(self):
        lb = LoadBalanceParams(enabled=True, poll_interval_us=5.0)
        assert lb.enabled and lb.poll_interval_us == 5.0

    def test_network_presets_distinct(self):
        assert NetworkParams.now_atm() != NetworkParams.cm5()
