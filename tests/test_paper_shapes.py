"""Fast regression guards for the paper's headline shapes.

The benchmark harness regenerates the full tables; these are small,
quick versions of the same qualitative assertions so that running
``pytest tests/`` alone protects the reproduction's scientific claims
against regressions.
"""

from __future__ import annotations

import pytest


class TestTable1Shape:
    def test_local_sync_beats_global_sync_small(self):
        from repro.apps.cholesky import run_cholesky
        cp = run_cholesky("CP", 48, 8).elapsed_us
        seq = run_cholesky("Seq", 48, 8).elapsed_us
        bcast = run_cholesky("Bcast", 48, 8).elapsed_us
        assert cp < bcast < seq


class TestTable2Shape:
    def test_alias_anchors(self):
        from repro.apps import microbench as mb
        rt = mb.fresh_runtime(2)
        issue = mb.measure_remote_creation_issue(rt)
        rt = mb.fresh_runtime(2)
        actual = mb.measure_remote_creation_actual(rt)
        assert issue == pytest.approx(5.83, abs=0.05)
        assert actual == pytest.approx(20.83, abs=0.5)


class TestTable3Shape:
    def test_dispatch_ordering(self):
        from repro.apps.microbench import measure_invocation_regimes
        r = measure_invocation_regimes()
        assert r["static"] < r["lookup"] < r["generic"]


class TestTable4Shape:
    def test_lb_beats_static(self):
        from repro.apps.fibonacci import run_fib
        static = run_fib(16, 8, load_balance=False)
        lb = run_fib(16, 8, load_balance=True)
        assert lb.elapsed_us < static.elapsed_us
        assert lb.steals > 0


class TestTable5Shape:
    def test_mflops_scale(self):
        from repro.apps.systolic import run_systolic
        small = run_systolic(64, 4)
        big = run_systolic(128, 16)
        assert big.mflops > 2 * small.mflops


class TestFlowControlShape:
    def test_fc_prevents_backup(self):
        from repro.config import NetworkParams, RuntimeConfig
        from repro.apps.cholesky import run_cholesky
        base = dict(
            bulk_threshold_bytes=256,
            network=NetworkParams(rx_buffer_bytes=2048),
        )
        # Note: flow control only pays off once transfers are big
        # enough to overflow the receive buffer; at tiny column sizes
        # its serialisation costs more than the back-up it prevents,
        # so this regression runs at the benchmark's n=96.
        with_fc = run_cholesky("CP", 96, 8, p2p=True, config=RuntimeConfig(
            num_nodes=8, flow_control=True, **base))
        without = run_cholesky("CP", 96, 8, p2p=True, config=RuntimeConfig(
            num_nodes=8, flow_control=False, **base))
        assert without.backup_events > with_fc.backup_events
        assert without.elapsed_us > with_fc.elapsed_us
