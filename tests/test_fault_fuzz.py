"""Randomised fault-fuzz sweep: the self-healing protocols must keep
every run correct under seeded packet chaos, and the invariant checker
must certify it.

Every case prints its replay line on failure, so a CI red is exactly
reproducible locally::

    PYTHONPATH=src python -m repro faults migration_tour --seed 3 \
        --drop 0.08 --dup 0.08 --delay 0.1 --faults-seed 1234

The sweep size and base seed are pytest options (see conftest.py):
``--fuzz-rounds`` and ``--faults-seed``.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import FaultPlan, NodeFault, check_invariants
from repro.apps.scenarios import run_fibonacci_loadbalance, run_migration_tour
from repro.errors import InvariantViolation
from repro.sim.invariants import _true_locations


def _chaos(faults_seed: int) -> FaultPlan:
    return FaultPlan.protocol_chaos(
        seed=faults_seed, drop=0.08, duplicate=0.08, delay=0.1,
        delay_us=(10.0, 150.0),
    )


def _replay_hint(scenario: str, seed: int, faults_seed: int) -> str:
    return (
        f"replay: PYTHONPATH=src python -m repro faults {scenario} "
        f"--seed {seed} --drop 0.08 --dup 0.08 --delay 0.1 "
        f"--faults-seed {faults_seed}"
    )


class TestFaultFuzz:
    def test_migration_tour_sweep(self, faults_seed_base, fuzz_rounds):
        for i in range(fuzz_rounds):
            seed = 100 + i
            faults_seed = faults_seed_base + 7919 * i
            try:
                res = run_migration_tour(
                    num_nodes=5, n=4, trace=False, seed=seed,
                    faults=_chaos(faults_seed),
                )
                report = check_invariants(res.runtime)
            except (InvariantViolation, AssertionError) as exc:
                pytest.fail(
                    f"{exc}\n{_replay_hint('migration_tour', seed, faults_seed)}"
                )
            assert res.summary["visits"] == 4, _replay_hint(
                "migration_tour", seed, faults_seed
            )
            assert report["actors"] >= 1

    def test_fibonacci_sweep(self, faults_seed_base, fuzz_rounds):
        from repro.apps.fibonacci import fib_value

        for i in range(fuzz_rounds):
            seed = 300 + i
            faults_seed = faults_seed_base + 104729 * i
            try:
                res = run_fibonacci_loadbalance(
                    num_nodes=4, n=11, trace=False, seed=seed,
                    faults=_chaos(faults_seed),
                )
                report = check_invariants(res.runtime)
            except (InvariantViolation, AssertionError, RuntimeError) as exc:
                pytest.fail(
                    f"{exc}\n"
                    f"{_replay_hint('fibonacci_loadbalance', seed, faults_seed)}"
                )
            assert res.summary["value"] == fib_value(11)
            # Steal-packet conservation: the reliable sublayer repairs
            # dropped/duplicated steal traffic, so req/grant/deny books
            # must balance exactly even under chaos.
            sp = report["steal_packets"]
            assert sp["sent"] == sp["recv"], _replay_hint(
                "fibonacci_loadbalance", seed, faults_seed
            )

    def test_node_stall_recovery(self, faults_seed_base):
        """A node that goes silent for a window mid-run delays traffic
        but loses nothing."""
        plan = FaultPlan.protocol_chaos(
            seed=faults_seed_base, drop=0.05, duplicate=0.05, delay=0.05,
            node_faults={2: NodeFault(stall_at_us=40.0, stall_for_us=120.0)},
        )
        res = run_migration_tour(num_nodes=5, n=3, trace=False,
                                 seed=11, faults=plan)
        report = check_invariants(res.runtime)
        assert res.summary["visits"] == 3
        assert report["packets"]["sends"] > 0

    def test_reorder_chaos(self, faults_seed_base):
        """Reordered protocol packets (FIFO floor withdrawn) still
        converge — seq-numbered envelopes and protocol dedupe absorb
        the overtakes."""
        plan = FaultPlan.protocol_chaos(
            seed=faults_seed_base + 1, drop=0.05, duplicate=0.05,
            delay=0.05, reorder=0.2,
        )
        res = run_migration_tour(num_nodes=5, n=4, trace=False,
                                 seed=17, faults=plan)
        check_invariants(res.runtime)
        assert res.summary["visits"] == 4

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 2**16),
        faults_seed=st.integers(0, 2**16),
        drop=st.floats(0.0, 0.15),
        dup=st.floats(0.0, 0.15),
    )
    def test_convergence_equivalence(self, seed, faults_seed, drop, dup):
        """Property: a faulty run converges to the SAME final
        name-table ground truth as the fault-free run of the identical
        workload — faults perturb timing and retries, never outcomes."""
        clean = run_migration_tour(num_nodes=5, n=4, trace=False, seed=seed)
        clean.runtime.run()
        plan = FaultPlan.protocol_chaos(
            seed=faults_seed, drop=drop, duplicate=dup, delay=0.1,
            delay_us=(10.0, 120.0),
        )
        faulty = run_migration_tour(num_nodes=5, n=4, trace=False,
                                    seed=seed, faults=plan)
        check_invariants(faulty.runtime)
        assert _true_locations(faulty.runtime) == _true_locations(
            clean.runtime
        )
        assert faulty.summary["final_node"] == clean.summary["final_node"]
        assert faulty.summary["visits"] == clean.summary["visits"]

    def test_retry_counters_surface(self):
        """At punishing drop rates the reliable layer must visibly work
        (retries fire) and still deliver the workload."""
        plan = FaultPlan.protocol_chaos(seed=5, drop=0.25, duplicate=0.2,
                                        delay=0.1)
        res = run_migration_tour(num_nodes=5, n=4, trace=False,
                                 seed=5, faults=plan)
        check_invariants(res.runtime)
        stats = res.runtime.stats
        assert stats.counter("faults.dropped_packets") > 0
        assert stats.counter("rel.retries") > 0


class TestFaultFuzzMp:
    """The same chaos plans against real processes.  Drops, dups and
    delays are injected in each worker's wire path from an RNG stream
    derived per (plan seed, node id); ``check_invariants`` then runs
    its distributed audit — per-worker kernel reports merged by the
    driver, with exact packet conservation because the mp counters are
    process-local and never raced."""

    def _run(self, scenario, faults_seed, seed, transport, **kw):
        from repro.config import MpParams

        runner = (run_migration_tour if scenario == "migration_tour"
                  else run_fibonacci_loadbalance)
        hint = (
            f"replay: PYTHONPATH=src python -m repro faults {scenario} "
            f"--backend mp --mp-transport {transport} --seed {seed} "
            f"--drop 0.08 --dup 0.08 --delay 0.1 --faults-seed {faults_seed}"
        )
        res = None
        try:
            res = runner(
                trace=False, seed=seed, faults=_chaos(faults_seed),
                backend="mp", mp=MpParams(transport=transport), **kw,
            )
            report = check_invariants(res.runtime)
        except (InvariantViolation, AssertionError, RuntimeError) as exc:
            pytest.fail(f"{exc}\n{hint}")
        finally:
            if res is not None:
                res.runtime.close()
        return res, report, hint

    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_migration_tour_chaos(self, faults_seed_base, transport):
        res, report, hint = self._run(
            "migration_tour", faults_seed_base, 100, transport,
            num_nodes=4, n=3,
        )
        assert res.summary["visits"] == 3, hint
        p = report["packets"]
        assert (p["sends"] + p["duplicated"] - p["dropped"]
                == p["delivered"]), hint
        fi = report["faults_injected"]
        assert fi["dropped"] > 0 or fi["duplicated"] > 0, (
            hint  # chaos actually bit — the audit wasn't vacuous
        )

    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_fibonacci_chaos(self, faults_seed_base, transport):
        from repro.apps.fibonacci import fib_value

        res, report, hint = self._run(
            "fibonacci_loadbalance", faults_seed_base + 7919, 300,
            transport, num_nodes=4, n=10,
        )
        assert res.summary["value"] == fib_value(10), hint
        p = report["packets"]
        assert (p["sends"] + p["duplicated"] - p["dropped"]
                == p["delivered"]), hint


class TestFaultFuzzAsyncio:
    """The same chaos against the socket cluster.  Loss is injected in
    each worker's wire path exactly as on mp; the difference under test
    is the repair layer — on this backend the reliable sublayer is
    always attached, so the induced drops/dups/delays must heal over
    real TCP/UNIX streams and the merged audit must still balance."""

    def _run(self, scenario, faults_seed, seed, transport, **kw):
        from repro.config import NetParams

        runner = (run_migration_tour if scenario == "migration_tour"
                  else run_fibonacci_loadbalance)
        hint = (
            f"replay: PYTHONPATH=src python -m repro faults {scenario} "
            f"--backend asyncio --net-transport {transport} --seed {seed} "
            f"--drop 0.08 --dup 0.08 --delay 0.1 --faults-seed {faults_seed}"
        )
        res = None
        try:
            res = runner(
                trace=False, seed=seed, faults=_chaos(faults_seed),
                backend="asyncio", net=NetParams(transport=transport), **kw,
            )
            report = check_invariants(res.runtime)
        except (InvariantViolation, AssertionError, RuntimeError) as exc:
            pytest.fail(f"{exc}\n{hint}")
        finally:
            if res is not None:
                res.runtime.close()
        return res, report, hint

    @pytest.mark.parametrize("transport", ["tcp", "unix"])
    def test_migration_tour_chaos(self, faults_seed_base, transport):
        res, report, hint = self._run(
            "migration_tour", faults_seed_base, 100, transport,
            num_nodes=4, n=3,
        )
        assert res.summary["visits"] == 3, hint
        p = report["packets"]
        assert (p["sends"] + p["duplicated"] - p["dropped"]
                == p["delivered"]), hint
        fi = report["faults_injected"]
        assert fi["dropped"] > 0 or fi["duplicated"] > 0, (
            hint  # chaos actually bit — the audit wasn't vacuous
        )

    def test_fibonacci_chaos(self, faults_seed_base):
        from repro.apps.fibonacci import fib_value

        res, report, hint = self._run(
            "fibonacci_loadbalance", faults_seed_base + 7919, 300,
            "tcp", num_nodes=4, n=10,
        )
        assert res.summary["value"] == fib_value(10), hint
        p = report["packets"]
        assert (p["sends"] + p["duplicated"] - p["dropped"]
                == p["delivered"]), hint
