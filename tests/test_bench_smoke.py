"""Smoke tests for the engine benchmark harness.

The fast test proves ``benchmarks/bench_engine.py`` runs end to end in
quick mode and emits valid, well-formed JSON; the ``bench``-marked
companion runs the full-size microbenchmarks and asserts the ≥2×
throughput target, and is excluded from tier-1 by the default
``-m "not bench"`` in pyproject.toml (run it with ``pytest -m bench``).
"""

from __future__ import annotations

import importlib.util
import json
import os
import sys

import pytest

_BENCH_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "benchmarks", "bench_engine.py"
)


def _load_bench():
    if "bench_engine" in sys.modules:
        return sys.modules["bench_engine"]
    spec = importlib.util.spec_from_file_location("bench_engine", _BENCH_PATH)
    mod = importlib.util.module_from_spec(spec)
    sys.modules["bench_engine"] = mod
    spec.loader.exec_module(mod)
    return mod


def test_quick_bench_emits_valid_json(tmp_path):
    bench = _load_bench()
    out = tmp_path / "bench.json"
    results = bench.main(["--quick", "--out", str(out)])

    on_disk = json.loads(out.read_text())
    assert on_disk["schema"] == bench.SCHEMA
    assert on_disk["quick"] is True
    for micro in ("pingpong", "fanout"):
        block = on_disk[micro]
        assert block["events"] > 0
        for side in ("seed", "current"):
            assert block[side]["wall_s"] > 0
            assert block[side]["events_per_sec"] > 0
        assert block["speedup"] is not None
    for app in ("fibonacci", "systolic"):
        assert on_disk["apps"][app]["sim_events"] > 0
    tracing = on_disk["tracing"]
    # Tracing must never change the simulated schedule, only host cost.
    assert tracing["off"]["sim_time_us"] == tracing["on"]["sim_time_us"]
    assert tracing["off"]["sim_events"] == tracing["on"]["sim_events"]
    # main() returns what it wrote (modulo float round-tripping).
    assert results["pingpong"]["events"] == on_disk["pingpong"]["events"]


def test_skip_apps_flag(tmp_path):
    bench = _load_bench()
    out = tmp_path / "bench.json"
    bench.main(["--quick", "--skip-apps", "--out", str(out)])
    assert "apps" not in json.loads(out.read_text())


def test_committed_bench_json_is_current_schema():
    """The committed BENCH_engine.json must stay loadable and on the
    current schema so the perf trajectory remains diffable."""
    path = os.path.join(os.path.dirname(_BENCH_PATH), os.pardir, "BENCH_engine.json")
    bench = _load_bench()
    with open(path, encoding="utf-8") as fh:
        committed = json.load(fh)
    assert committed["schema"] == bench.SCHEMA
    assert committed["quick"] is False
    assert committed["pingpong"]["speedup"] >= 2.0


@pytest.mark.bench
def test_full_size_throughput_target():
    """Full-size microbenchmarks must hold the ≥2× ping-pong target.
    Timed run — excluded from tier-1 via the ``bench`` marker."""
    bench = _load_bench()
    results = bench.run_bench(quick=False, repeats=3, skip_apps=True)
    assert results["pingpong"]["speedup"] >= 2.0
    assert results["fanout"]["speedup"] >= 2.0
