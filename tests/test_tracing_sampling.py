"""Head sampling, span-ID economy, ring accounting, and the
backend-neutral trace CLI.

The always-on tracing design (see ``repro.tracing``) makes one
keep-or-elide decision per root trace from a seeded RNG stream and
carries it in the trace ID's low bit.  These tests pin the properties
that design depends on: determinism (same seed + same rate = the same
sampled trace-ID set), span-ID economy (IDs are only consumed by spans
that land in the ring), error paths that punch through sampling, exact
histograms at any rate, and honest accounting for everything elided or
overwritten.
"""

from __future__ import annotations

import json

import pytest

from repro import FaultPlan, FaultRule, HalRuntime, RuntimeConfig
from repro.config import TracingParams
from repro.tracing import SpanRecorder
from tests.conftest import Counter, EchoServer


def make_rt(*, sample_rate=1.0, span_capacity=65_536, seed=1995,
            num_nodes=4, faults=None):
    cfg = RuntimeConfig(
        num_nodes=num_nodes, seed=seed,
        tracing=TracingParams(sample_rate=sample_rate,
                              span_capacity=span_capacity),
    )
    rt = HalRuntime(cfg, trace=True, faults=faults)
    rt.load_behaviors(EchoServer, Counter)
    return rt


def drive(rt, journeys=40):
    """Root ``journeys`` independent traces (one remote send each)."""
    ref = rt.spawn(EchoServer, at=1)
    for i in range(journeys):
        rt.send(ref, "echo", i, from_node=0)
        rt.run()
    return ref


# ======================================================================
# span-ID economy (regression: span() used to consume an ID even when
# it recorded nothing)
# ======================================================================
class TestSpanIdEconomy:
    def test_disabled_recorder_consumes_no_ids(self):
        rec = SpanRecorder(enabled=False)
        assert rec.span(1, 0, "a", "send", 0, 0.0) == 0
        assert rec.force_span(1, 0, "a", "send", 0, 0.0) == (1, 0)
        rec.enabled = True
        assert rec.span(1, 0, "a", "send", 0, 0.0) == 1  # no gap

    def test_elided_span_consumes_no_id(self):
        rec = SpanRecorder(enabled=True)
        # Even trace ID = head draw lost: nothing recorded, no span ID
        # burned, the elision counted.
        assert rec.span(2, 0, "a", "send", 0, 0.0) == 0
        assert rec.elided == 1
        assert rec.span(3, 0, "b", "send", 0, 0.0) == 1
        assert rec.span(2, 0, "c", "send", 0, 0.0) == 0
        assert rec.span(3, 0, "d", "send", 0, 0.0) == 2  # consecutive

    def test_ring_at_capacity_still_consumes_ids(self):
        # Overwriting the oldest span is not a refusal: the new span
        # *is* recorded, so its ID is legitimately consumed.
        rec = SpanRecorder(enabled=True, capacity=1)
        first = rec.span(1, 0, "a", "send", 0, 0.0)
        second = rec.span(1, 0, "b", "send", 0, 1.0)
        assert (first, second) == (1, 2)
        assert rec.overwrites == 1


# ======================================================================
# ring wraparound
# ======================================================================
class TestRingWraparound:
    def test_wraparound_keeps_newest_and_counts_overwrites(self):
        rec = SpanRecorder(enabled=True, capacity=4)
        for i in range(10):
            rec.span(1, 0, f"s{i}", "send", 0, float(i))
        assert len(rec) == 4
        assert rec.recorded == 10
        assert rec.overwrites == 6
        assert [s.name for s in rec.spans] == ["s6", "s7", "s8", "s9"]
        acct = rec.accounting()
        assert acct["ring_overwrites"] == 6
        assert acct["spans_held"] == 4
        assert acct["spans_recorded"] == 10

    def test_runtime_with_tiny_ring_reports_overwrites(self):
        rt = make_rt(span_capacity=8)
        drive(rt, journeys=20)
        assert len(rt.spans) == 8
        assert rt.spans.overwrites > 0
        # The newest span in the ring is the newest span recorded.
        newest = rt.spans.spans[-1]
        assert newest.start_us == max(s.start_us for s in rt.spans)


# ======================================================================
# deterministic head sampling
# ======================================================================
class TestDeterministicSampling:
    def _sampled_ids(self, *, seed, rate):
        rt = make_rt(sample_rate=rate, seed=seed)
        drive(rt)
        ids = set(rt.spans.trace_ids())
        acct = rt.spans.accounting()
        return ids, acct

    def test_same_seed_same_rate_identical_sampled_set(self):
        a_ids, a_acct = self._sampled_ids(seed=7, rate=0.5)
        b_ids, b_acct = self._sampled_ids(seed=7, rate=0.5)
        assert a_ids == b_ids
        assert a_acct == b_acct
        # The draw actually cut something: some journeys sampled, some
        # elided (40 journeys at rate .5 — both outcomes occur).
        assert 0 < a_acct["traces_sampled"] < a_acct["traces_started"]
        assert a_acct["spans_elided"] > 0

    def test_sampled_ids_carry_the_verdict_bit(self):
        ids, _ = self._sampled_ids(seed=7, rate=0.5)
        assert ids, "rate 0.5 over 40 journeys must sample something"
        assert all(tid & 1 for tid in ids)

    def test_rate_one_skips_the_draw_entirely(self):
        rt = make_rt(sample_rate=1.0)
        drive(rt, journeys=10)
        acct = rt.spans.accounting()
        assert acct["traces_sampled"] == acct["traces_started"]
        assert acct["spans_elided"] == 0

    def test_histograms_identical_at_any_rate(self):
        """Sampling applies to span recording only: the latency
        histograms are exact and bit-identical at rate 0 and rate 1."""
        dumps = {}
        for rate in (0.0, 1.0):
            rt = make_rt(sample_rate=rate)
            drive(rt, journeys=15)
            dumps[rate] = {k: h.as_dict()
                           for k, h in sorted(rt.stats.hists.items())}
        assert dumps[0.0] == dumps[1.0]
        assert dumps[0.0]["delivery_latency_us"]["count"] > 0


# ======================================================================
# error paths punch through sampling
# ======================================================================
class TestForcedErrorPaths:
    def test_dropped_ack_retransmit_recorded_at_rate_zero(self):
        # Drop the first ack: the sender's timeout fires and the
        # envelope is retransmitted.  At sample rate 0 every ordinary
        # span is elided, but the retransmit must still be captured.
        plan = FaultPlan(by_kind={"__rel_ack__": FaultRule(drop_count=1)})
        rt = make_rt(sample_rate=0.0, faults=plan)
        ref = rt.spawn(Counter, at=1)
        rt.send(ref, "incr", from_node=0)
        rt.run()
        assert rt.call(ref, "get", from_node=0) == 1
        assert rt.stats.counter("rel.retries") >= 1
        retrans = rt.spans.of_kind("rel.retransmit")
        assert retrans, "retransmit spans must survive sample rate 0"
        # The forced span keeps the journey's (unsampled, even) trace
        # ID so its causal identity is preserved, and the trace is
        # queryable even though every ordinary span in it was elided.
        tid = retrans[0].trace_id
        assert rt.spans.of_trace(tid), "forced trace must be queryable"
        assert rt.spans.accounting()["spans_forced"] >= 1

    def test_ordinary_spans_all_elided_at_rate_zero(self):
        rt = make_rt(sample_rate=0.0)
        drive(rt, journeys=10)
        acct = rt.spans.accounting()
        assert acct["traces_sampled"] == 0
        assert acct["spans_recorded"] == 0
        assert acct["spans_elided"] > 0


# ======================================================================
# the trace CLI is backend-neutral
# ======================================================================
class TestCliBackends:
    def test_trace_on_threaded_backend(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "tour.json"
        assert main(["trace", "migration_tour", "--backend", "threaded",
                     "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        text = capsys.readouterr().out
        assert "backend" in text and "threaded" in text

    def test_trace_on_mp_backend_refuses_clearly(self):
        from repro.cli import main
        with pytest.raises(SystemExit) as exc:
            main(["trace", "migration_tour", "--backend", "mp"])
        assert "mp backend does not support span tracing" in str(exc.value)

    def test_trace_sample_rate_flag_reaches_the_recorder(self, tmp_path,
                                                         capsys):
        from repro.cli import main
        out = tmp_path / "spans.jsonl"
        assert main(["trace", "ping_pong", "--sample-rate", "0.0",
                     "--format", "jsonl", "--out", str(out)]) == 0
        assert out.read_text() == ""  # everything elided
        text = capsys.readouterr().out
        assert "spans elided (sampling)" in text

    def test_stats_json_surfaces_sampling_accounting(self, capsys):
        from repro.cli import main
        assert main(["stats", "migration_tour", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        acct = doc["tracing"]
        for key in ("spans_recorded", "spans_elided", "ring_overwrites",
                    "sample_rate", "traces_started", "traces_sampled"):
            assert key in acct
        assert acct["spans_recorded"] > 0
