"""Property and white-box tests for the shared-memory SPSC ring
(:mod:`repro.platform.shmring`), mirroring ``test_wireformat.py``:
byte-exact transfer across wraparound at arbitrary chunk sizes,
full-ring backpressure, interleaved producer/consumer schedules, and
malformed-record rejection once frames ride the ring.

The ring is buffer-agnostic on purpose: everything here drives it over
a plain ``bytearray`` — single process, both roles — which makes the
index arithmetic (monotonic u64s, modulo only at data access) directly
observable.  Cross-process behaviour (Conditions, sleeping flags,
teardown) is covered by ``test_platform.py::TestMpShmTransport``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetworkError
from repro.platform.base import WirePacket
from repro.platform.shmring import (
    RING_HEADER,
    RingBuffer,
    ShmArena,
    arena_size,
)
from repro.platform.wireformat import FrameDecoder, FrameEncoder, iter_messages


def _ring(capacity: int) -> RingBuffer:
    return RingBuffer(bytearray(RING_HEADER + capacity), capacity)


def _pump_through(ring: RingBuffer, data: bytes, read_limit=None) -> bytes:
    """Single-threaded producer/consumer: write until blocked, then
    read, until all of ``data`` crossed."""
    out = bytearray()
    view = memoryview(data)
    off = 0
    stalls = 0
    while off < len(data) or ring.readable:
        n = ring.write_some(view[off:]) if off < len(data) else 0
        off += n
        got = ring.read_some(read_limit)
        out += got
        stalls = stalls + 1 if (not n and not got) else 0
        assert stalls < 3, "ring wedged: neither writable nor readable"
    return bytes(out)


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
class TestConstruction:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            RingBuffer(bytearray(RING_HEADER), 0)

    def test_rejects_short_buffer(self):
        with pytest.raises(ValueError, match="cannot hold"):
            RingBuffer(bytearray(RING_HEADER + 7), 8)

    def test_fresh_ring_is_empty_and_writable(self):
        r = _ring(16)
        assert not r.readable
        assert r.writable
        assert r.read_some() == b""


# ----------------------------------------------------------------------
# wraparound at arbitrary frame/chunk sizes
# ----------------------------------------------------------------------
class TestWraparound:
    @given(
        capacity=st.integers(1, 64),
        chunks=st.lists(st.binary(min_size=1, max_size=96), max_size=30),
    )
    @settings(max_examples=120, deadline=None)
    def test_byte_stream_is_exact_across_wraparound(self, capacity, chunks):
        """Whatever the capacity and chunk sizes — chunks smaller than,
        equal to, and far larger than the ring — the consumer sees the
        producer's exact byte stream, in order."""
        ring = _ring(capacity)
        data = b"".join(chunks)
        assert _pump_through(ring, data) == data
        assert not ring.readable

    @given(
        capacity=st.integers(2, 32),
        data=st.binary(min_size=8, max_size=200),
        limit=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_read_limit_preserves_order(self, capacity, data, limit):
        """A consumer that takes at most ``limit`` bytes per poll (so
        head crosses the wrap point at odd offsets) still reassembles
        the stream exactly."""
        ring = _ring(capacity)
        assert _pump_through(ring, data, read_limit=limit) == data

    def test_indices_are_monotonic_not_wrapped(self):
        """head/tail only ever grow; the modulo happens at data
        access.  Pushing more than capacity total bytes through must
        leave both counters past capacity."""
        ring = _ring(8)
        total = 50
        _pump_through(ring, bytes(range(total % 256)) * (total // 256 + 1))
        assert ring._tail == ring._head
        assert ring._tail > ring.capacity


# ----------------------------------------------------------------------
# full-ring backpressure
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_full_ring_refuses_writes(self):
        ring = _ring(4)
        assert ring.write_some(b"abcdef") == 4  # partial: ring now full
        assert not ring.writable
        assert ring.write_some(b"x") == 0
        assert ring.read_some() == b"abcd"
        assert ring.writable

    def test_space_frees_exactly_as_read(self):
        ring = _ring(4)
        ring.write_some(b"abcd")
        assert ring.read_some(2) == b"ab"
        assert ring.write_some(b"efg") == 2  # only the freed space
        assert ring.read_some() == b"cdef"

    def test_writer_wait_flag_round_trip(self):
        ring = _ring(4)
        assert not ring.writer_waiting
        ring.set_writer_wait()
        assert ring.writer_waiting
        ring.clear_writer_wait()
        assert not ring.writer_waiting

    def test_torn_foreign_index_is_conservative(self):
        """An impossible head/tail snapshot (corruption or a torn
        read) must read as 'full' to the producer and 'empty' to the
        consumer — never as free space or phantom data."""
        import struct

        ring = _ring(8)
        ring.write_some(b"ab")
        # Corrupt the foreign index past any valid value.
        struct.pack_into("<Q", ring._buf, 0, 2**63)  # head >> tail
        assert ring.write_some(b"x") == 0
        assert not ring.writable
        ring2 = _ring(8)
        struct.pack_into("<Q", ring2._buf, 8, 2**63)  # tail - head > cap
        assert ring2.read_some() == b""
        assert not ring2.readable


# ----------------------------------------------------------------------
# interleaved producer/consumer schedules
# ----------------------------------------------------------------------
class TestInterleaving:
    @given(
        capacity=st.integers(1, 24),
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(1, 16)), max_size=60
        ),
        payload=st.integers(0, 255),
    )
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_schedules_never_lose_or_invent_bytes(
        self, capacity, ops, payload
    ):
        """Drive write/read in an arbitrary interleaving; the consumed
        stream is always a prefix of the produced stream."""
        ring = _ring(capacity)
        produced = bytearray()
        consumed = bytearray()
        counter = payload
        for is_write, size in ops:
            if is_write:
                chunk = bytes((counter + i) % 256 for i in range(size))
                n = ring.write_some(chunk)
                produced += chunk[:n]
                counter = (counter + n) % 256
            else:
                consumed += ring.read_some(size)
        consumed += ring.read_some()
        assert bytes(consumed) == bytes(produced)


# ----------------------------------------------------------------------
# frames over the ring: reassembly + malformed-record rejection
# ----------------------------------------------------------------------
def _packet(i: int) -> WirePacket:
    return WirePacket(0, 1, "h", (i, "x" * (i % 7)), 20 + i, "h")


class TestFramesOverRing:
    @given(
        capacity=st.integers(8, 48),
        count=st.integers(1, 12),
    )
    @settings(max_examples=60, deadline=None)
    def test_encoder_ring_decoder_round_trip(self, capacity, count):
        """Frames far larger than the ring cross in chunks and decode
        byte-exactly — the property the shm transport rests on."""
        enc, dec = FrameEncoder(), FrameDecoder()
        pkts = [_packet(i) for i in range(count)]
        ring = _ring(capacity)
        for _ in range(2):  # two frames back to back, shared intern state
            for p in pkts:
                enc.add_message(p)
            view = memoryview(enc.take_frame())
            off = 0
            while off < len(view):
                n = ring.write_some(view[off:])
                off += n
                dec.feed(ring.read_some())
        out = list(iter_messages(dec.drain()))
        assert out == pkts + pkts

    def test_malformed_record_rejected_after_ring_crossing(self):
        """Corruption inside the ring surfaces as the decoder's
        NetworkError, not as silent garbage."""
        enc, dec = FrameEncoder(), FrameDecoder()
        enc.add_message(_packet(3))
        frame = bytearray(enc.take_frame())
        frame[4] = 0xEE  # clobber the first record's tag
        ring = _ring(16)
        view = memoryview(bytes(frame))
        off = 0
        while off < len(view):
            off += ring.write_some(view[off:])
            dec.feed(ring.read_some())
        with pytest.raises(NetworkError, match="unknown wire record tag"):
            list(dec.drain())


# ----------------------------------------------------------------------
# arena layout
# ----------------------------------------------------------------------
class _FakeShm:
    """Stand-in SharedMemory: a bytearray with the same surface."""

    def __init__(self, size: int) -> None:
        self.buf = bytearray(size)
        self.name = "fake"

    def close(self) -> None:
        pass

    def unlink(self) -> None:
        pass


class TestArenaLayout:
    @given(nn=st.integers(2, 6), ring_bytes=st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_edges_are_disjoint_and_in_bounds(self, nn, ring_bytes):
        """Every directed edge gets its own non-overlapping region:
        filling one ring never corrupts another, nor a status slot."""
        arena = ShmArena(_FakeShm(arena_size(nn, ring_bytes)), nn, ring_bytes)
        rings = {
            (s, d): arena.ring(s, d)
            for s in range(nn) for d in range(nn) if s != d
        }
        for (s, d), ring in rings.items():
            ring.write_some(bytes([(s * 7 + d) % 256]) * ring_bytes)
        arena.set_sleeping(nn - 1, True)
        for (s, d), ring in rings.items():
            data = ring.read_some()
            assert data == bytes([(s * 7 + d) % 256]) * ring_bytes
        assert arena.sleeping(nn - 1)

    def test_self_edge_refused(self):
        arena = ShmArena(_FakeShm(arena_size(2, 8)), 2, 8)
        with pytest.raises(ValueError, match="self-edge"):
            arena.ring(1, 1)
