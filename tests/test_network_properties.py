"""Property tests on the interconnect model's invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import NetworkParams
from repro.sim.engine import SimNode, Simulator
from repro.sim.network import Network
from repro.sim.stats import StatsRegistry
from repro.sim.topology import HypercubeTopology


def make_net(n=4, **over):
    sim = Simulator()
    nodes = [SimNode(i, sim) for i in range(n)]
    net = Network(sim, HypercubeTopology(n), nodes,
                  NetworkParams(**over), StatsRegistry())
    return sim, net


@st.composite
def transmissions(draw):
    n = 4
    count = draw(st.integers(1, 25))
    msgs = []
    for _ in range(count):
        src = draw(st.integers(0, n - 1))
        dst = draw(st.integers(0, n - 1))
        if dst == src:
            dst = (dst + 1) % n
        size = draw(st.sampled_from([24, 100, 2000, 40_000]))
        msgs.append((src, dst, size))
    return msgs


class TestNicInvariants:
    @given(transmissions())
    @settings(max_examples=60, deadline=None)
    def test_pairwise_fifo(self, msgs):
        """Messages between one (src, dst) pair deliver in send order."""
        sim, net = make_net()
        deliveries = []
        for i, (src, dst, size) in enumerate(msgs):
            net.unicast(src, dst, size,
                        lambda i=i, s=src, d=dst: deliveries.append((s, d, i)))
        sim.run()
        assert len(deliveries) == len(msgs)
        for pair in {(s, d) for s, d, _ in deliveries}:
            seq = [i for s, d, i in deliveries if (s, d) == pair]
            assert seq == sorted(seq)

    @given(transmissions())
    @settings(max_examples=60, deadline=None)
    def test_rx_drains_never_overlap(self, msgs):
        """The interval-gap scheduler never double-books a receive NIC."""
        sim, net = make_net()
        for (src, dst, size) in msgs:
            net.unicast(src, dst, size, lambda: None)
        for dst in range(4):
            windows = sorted(
                (s, t) for (_a, s, t, _b) in net._rx_sched[dst]
            )
            for (s1, t1), (s2, t2) in zip(windows, windows[1:]):
                assert t1 <= s2 + 1e-9, "overlapping drains"
        sim.run()

    @given(transmissions())
    @settings(max_examples=40, deadline=None)
    def test_delivery_never_precedes_wire_latency(self, msgs):
        sim, net = make_net()
        records = []
        for (src, dst, size) in msgs:
            send_time = sim.now
            min_arrival = (
                size * net.params.inject_us_per_byte
                + net.wire_latency(src, dst)
                + size * net.params.drain_us_per_byte
            )
            net.unicast(
                src, dst, size,
                lambda lo=send_time + min_arrival: records.append(
                    (sim.now, lo)
                ),
            )
        sim.run()
        for at, lo in records:
            assert at >= lo - 1e-9

    @given(st.integers(2, 10), st.integers(1000, 60_000))
    @settings(max_examples=40, deadline=None)
    def test_backpressure_monotone_in_fan_in(self, senders_count, size):
        """More concurrent senders never *reduce* total delivery time."""
        def last_delivery(k):
            sim, net = make_net(n=16, rx_buffer_bytes=2048)
            times = []
            for src in range(1, k + 1):
                net.unicast(src, 0, size, lambda: times.append(sim.now))
            sim.run()
            return max(times)

        few = last_delivery(max(1, senders_count // 2))
        many = last_delivery(senders_count)
        assert many >= few - 1e-9
