"""Distributed garbage collection (extension; §9 + locality-descriptor
GC claim in the conclusions)."""

from __future__ import annotations

import pytest

from repro import HalRuntime, RuntimeConfig, behavior, method
from repro.errors import ReproError, UnknownActorError
from repro.runtime.gcscan import extract_refs
from tests.conftest import Counter, EchoServer, make_runtime


@behavior
class Holder:
    """Keeps references in assorted containers."""

    def __init__(self):
        self.direct = None
        self.in_list = []
        self.in_dict = {}
        self.nested = {"deep": [(None,)]}

    @method
    def hold(self, ctx, ref, where):
        if where == "direct":
            self.direct = ref
        elif where == "list":
            self.in_list.append(ref)
        elif where == "dict":
            self.in_dict["x"] = ref
        else:
            self.nested["deep"].append([{"k": ref}])

    @method
    def drop_all(self, ctx):
        self.direct = None
        self.in_list.clear()
        self.in_dict.clear()
        self.nested = {}


class TestRefScan:
    def test_extract_from_containers(self, rt4):
        refs = [rt4.spawn(Counter, at=0) for _ in range(4)]
        obj = {"a": refs[0], "b": [refs[1], (refs[2],)], "c": {"d": {1: refs[3]}}}
        actor_refs, group_refs = extract_refs(obj)
        assert set(actor_refs) == set(refs)
        assert group_refs == []

    def test_extract_from_object_attrs(self, rt4):
        ref = rt4.spawn(Counter, at=0)
        class Box:
            def __init__(self):
                self.inner = [ref]
        actor_refs, _ = extract_refs(Box())
        assert actor_refs == [ref]

    def test_extract_group_refs(self, rt4):
        g = rt4.grpnew(Counter, 4, 0)
        rt4.run()
        actor_refs, group_refs = extract_refs({"g": g})
        assert group_refs == [g]

    def test_cycles_are_safe(self, rt4):
        ref = rt4.spawn(Counter, at=0)
        a = {}
        a["self"] = a
        a["ref"] = ref
        actor_refs, _ = extract_refs(a)
        assert actor_refs == [ref]

    def test_numpy_state_skipped_cheaply(self):
        import numpy as np
        actor_refs, _ = extract_refs({"m": np.zeros((100, 100))})
        assert actor_refs == []


class TestCollection:
    def test_unreferenced_actors_reclaimed(self, rt4):
        keep = rt4.spawn(Counter, at=0)
        for i in range(12):
            rt4.spawn(Counter, at=i % 4)
        rt4.run()
        report = rt4.collect_garbage(roots=[keep])
        assert report.reclaimed == 12
        assert report.live == 1
        assert rt4.total_actors() == 1

    def test_state_held_refs_survive_across_nodes(self, rt4):
        rt4.load_behaviors(Holder)
        holder = rt4.spawn(Holder, at=0)
        kept = [rt4.spawn(Counter, at=i) for i in range(4)]
        for ref, where in zip(kept, ("direct", "list", "dict", "nested")):
            rt4.send(holder, "hold", ref, where)
        dropped = [rt4.spawn(Counter, at=i) for i in range(4)]
        rt4.run()
        report = rt4.collect_garbage(roots=[holder])
        assert report.reclaimed == len(dropped)
        assert rt4.total_actors() == 1 + len(kept)
        assert report.mark_messages > 0  # cross-node marks happened

    def test_cyclic_garbage_collected(self, rt4):
        """Rings of actors referencing each other die together —
        tracing beats reference counting."""
        rt4.load_behaviors(Holder)
        ring = [rt4.spawn(Holder, at=i % 4) for i in range(6)]
        for a, b in zip(ring, ring[1:] + ring[:1]):
            rt4.send(a, "hold", b, "direct")
        rt4.run()
        keep = rt4.spawn(Counter, at=0)
        report = rt4.collect_garbage(roots=[keep])
        assert report.reclaimed == 6
        assert rt4.total_actors() == 1

    def test_reachable_cycle_survives(self, rt4):
        rt4.load_behaviors(Holder)
        ring = [rt4.spawn(Holder, at=i % 4) for i in range(4)]
        for a, b in zip(ring, ring[1:] + ring[:1]):
            rt4.send(a, "hold", b, "direct")
        rt4.run()
        report = rt4.collect_garbage(roots=[ring[0]])
        assert report.reclaimed == 0
        assert rt4.total_actors() == 4

    def test_actors_with_mail_are_roots(self, rt4):
        buf = rt4.spawn(Counter, at=1)
        rt4.run()
        # park a constraint-disabled message? use BoundedBuffer instead:
        from tests.conftest import BoundedBuffer
        b = rt4.spawn(BoundedBuffer, 1, at=2)
        rt4.send(b, "get")  # parks: buffer empty
        rt4.run()
        report = rt4.collect_garbage(roots=[])
        # the buffer holds pending mail -> root; the counter is garbage
        assert rt4.total_actors() == 1
        assert rt4.actor_of(b).mailbox.pending_count == 1

    def test_group_members_survive_via_groupref(self, rt4):
        rt4.load_behaviors(Holder)
        holder = rt4.spawn(Holder, at=0)
        g = rt4.grpnew(Counter, 6, 0)
        rt4.run()
        rt4.send(holder, "hold", g, "direct")
        rt4.run()
        report = rt4.collect_garbage(roots=[holder])
        assert report.reclaimed == 0
        rt4.broadcast(g, "incr")
        rt4.run()
        assert sum(rt4.state_of(g.member(i)).value for i in range(6)) == 6

    def test_send_to_reclaimed_actor_fails_loudly(self, rt4):
        ghost = rt4.spawn(Counter, at=1)
        rt4.run()
        rt4.collect_garbage(roots=[])
        # from the birth node the failure is synchronous ...
        with pytest.raises(UnknownActorError):
            rt4.send(ghost, "incr", from_node=1)
        # ... from elsewhere it surfaces when the message arrives there
        rt4.send(ghost, "incr", from_node=3)
        with pytest.raises(UnknownActorError):
            rt4.run()

    def test_gc_requires_quiescence(self, rt4):
        ref = rt4.spawn(Counter, at=3)
        rt4.send(ref, "incr", from_node=0)
        with pytest.raises(ReproError, match="quiescent"):
            rt4.collect_garbage(roots=[ref])

    def test_migrated_actor_marked_through_forwarding(self, rt4):
        rt4.load_behaviors(Holder)
        holder = rt4.spawn(Holder, at=0)
        wanderer = rt4.spawn(Counter, at=1)
        rt4.send(holder, "hold", wanderer, "direct")
        rt4.run()
        # move the wanderer; the holder's state still has the old ref
        kernel = rt4.kernels[1]
        kernel.node.bootstrap(
            lambda: kernel.migration.start(rt4.actor_of(wanderer), 3)
        )
        rt4.run()
        report = rt4.collect_garbage(roots=[holder])
        assert report.reclaimed == 0
        assert rt4.locate(wanderer) == 3

    def test_repeated_collections(self, rt4):
        keep = rt4.spawn(Counter, at=0)
        rt4.run()
        for round_ in range(3):
            for i in range(5):
                rt4.spawn(Counter, at=i % 4)
            rt4.run()
            report = rt4.collect_garbage(roots=[keep])
            assert report.reclaimed == 5
            assert report.epoch == round_ + 1
        assert rt4.total_actors() == 1

    def test_dropping_refs_makes_garbage(self, rt4):
        rt4.load_behaviors(Holder)
        holder = rt4.spawn(Holder, at=0)
        victim = rt4.spawn(Counter, at=2)
        rt4.send(holder, "hold", victim, "direct")
        rt4.run()
        assert rt4.collect_garbage(roots=[holder]).reclaimed == 0
        rt4.send(holder, "drop_all")
        rt4.run()
        assert rt4.collect_garbage(roots=[holder]).reclaimed == 1
