"""Call/return: join continuations, grouped requests, generator
methods, explicit CPS (make_join / reply_to)."""

from __future__ import annotations

import pytest

from repro import behavior, method
from repro.errors import ContinuationError, SchedulingError
from repro.runtime.calls import ContinuationTable, Request, normalize_requests
from repro.runtime.names import ActorRef, AddrKind, MailAddress
from tests.conftest import EchoServer, make_runtime


def ref():
    return ActorRef(MailAddress(AddrKind.ORDINARY, 0, 1))


class TestNormalize:
    def test_single_request(self):
        reqs, single = normalize_requests(Request(ref(), "m", ()))
        assert single and len(reqs) == 1

    def test_list_of_requests(self):
        reqs, single = normalize_requests(
            [Request(ref(), "a", ()), Request(ref(), "b", ())]
        )
        assert not single and len(reqs) == 2

    def test_bad_yields_rejected(self):
        for bad in (42, "x", [], [Request(ref(), "a", ()), 7]):
            with pytest.raises(ContinuationError):
                normalize_requests(bad)


class TestContinuationTable:
    def test_ids_unique_and_lookup(self):
        t = ContinuationTable(0)
        c1 = t.new(1, lambda c: None)
        c2 = t.new(2, lambda c: None)
        assert c1.cont_id != c2.cont_id
        assert t.get(c1.cont_id) is c1
        assert t.outstanding == 2
        t.discard(c1.cont_id)
        assert t.outstanding == 1

    def test_unknown_continuation(self):
        with pytest.raises(ContinuationError):
            ContinuationTable(0).get(99)


class TestGeneratorMethods:
    def test_single_request_reply(self, rt4):
        @behavior
        class Client:
            def __init__(self):
                pass

            @method
            def go(self, ctx, server):
                v = yield ctx.request(server, "add", 1, 2)
                return v * 10

        rt4.load_behaviors(Client)
        server = rt4.spawn(EchoServer, at=2)
        client = rt4.spawn(Client, at=0)
        assert rt4.call(client, "go", server) == 30

    def test_grouped_requests_share_one_continuation(self, rt4):
        @behavior
        class Fan:
            def __init__(self):
                pass

            @method
            def go(self, ctx, s1, s2, s3):
                a, b, c = yield [
                    ctx.request(s1, "echo", 1),
                    ctx.request(s2, "echo", 2),
                    ctx.request(s3, "echo", 3),
                ]
                return (a, b, c)

        rt4.load_behaviors(Fan)
        servers = [rt4.spawn(EchoServer, at=i) for i in (1, 2, 3)]
        fan = rt4.spawn(Fan, at=0)
        conts_before = rt4.kernels[0].continuations.created
        assert rt4.call(fan, "go", *servers) == (1, 2, 3)
        # one continuation for the group (plus the external call root)
        assert rt4.kernels[0].continuations.created - conts_before == 2

    def test_sequential_requests_chain(self, rt4):
        @behavior
        class Chain:
            def __init__(self):
                pass

            @method
            def go(self, ctx, server):
                total = 0
                for i in range(4):
                    v = yield ctx.request(server, "echo", i)
                    total += v
                return total

        rt4.load_behaviors(Chain)
        server = rt4.spawn(EchoServer, at=3)
        c = rt4.spawn(Chain, at=1)
        assert rt4.call(c, "go", server) == 6

    def test_server_can_itself_be_a_generator(self, rt4):
        @behavior
        class Middle:
            def __init__(self):
                pass

            @method
            def relay(self, ctx, server, x):
                v = yield ctx.request(server, "echo", x)
                return v + 100

        @behavior
        class Top:
            def __init__(self):
                pass

            @method
            def go(self, ctx, middle, server):
                v = yield ctx.request(middle, "relay", server, 7)
                return v

        rt4.load_behaviors(Middle, Top)
        server = rt4.spawn(EchoServer, at=1)
        middle = rt4.spawn(Middle, at=2)
        top = rt4.spawn(Top, at=3)
        assert rt4.call(top, "go", middle, server) == 107

    def test_actor_stays_responsive_while_waiting(self, rt4):
        """The compiler-separated continuation frees the actor: other
        messages process while a request is outstanding."""
        @behavior
        class Waiter:
            def __init__(self):
                self.pings = 0
                self.result = None

            @method
            def go(self, ctx, server):
                v = yield ctx.request(server, "echo", 5)
                self.result = (v, self.pings)

            @method
            def ping(self, ctx):
                self.pings += 1

        rt4.load_behaviors(Waiter)
        server = rt4.spawn(EchoServer, at=3)
        w = rt4.spawn(Waiter, at=0)
        rt4.send(w, "go", server)
        for _ in range(3):
            rt4.send(w, "ping")
        rt4.run()
        result, pings_at_resume = rt4.state_of(w).result
        assert result == 5
        assert pings_at_resume == 3  # pings processed during the wait

    def test_yielding_garbage_is_an_error(self, rt4):
        @behavior
        class Bad:
            def __init__(self):
                pass

            @method
            def go(self, ctx):
                yield 42

        # The static dependence analysis rejects it at load time.
        from repro.errors import CompileError
        with pytest.raises(CompileError):
            rt4.load_behaviors(Bad)


class TestExplicitCps:
    def test_make_join_and_reply_to(self, rt4):
        out = []
        def fanin(ctx, target):
            t1, t2 = ctx.make_join(2, lambda vals: ctx.reply_to(target, sum(vals)))
            ctx.reply_to(t1, 30)
            ctx.reply_to(t2, 12)
        rt4.load_behaviors(tasks={"fanin": fanin})
        target, box = rt4.make_collector(from_node=0)
        rt4.spawn_task("fanin", target, at=2)
        rt4.run()
        assert box == [42]

    def test_reply_outside_request_rejected(self, rt4):
        @behavior
        class Replier:
            def __init__(self):
                pass

            @method
            def m(self, ctx):
                ctx.reply(1)

        rt4.load_behaviors(Replier)
        r = rt4.spawn(Replier, at=0)
        rt4.send(r, "m")
        with pytest.raises(SchedulingError, match="outside"):
            rt4.run()

    def test_double_reply_rejected(self, rt4):
        @behavior
        class Doubler:
            def __init__(self):
                pass

            @method
            def m(self, ctx):
                ctx.reply(1)
                ctx.reply(2)

        rt4.load_behaviors(Doubler)
        d = rt4.spawn(Doubler, at=0)
        with pytest.raises(SchedulingError, match="twice"):
            rt4.call(d, "m")

    def test_explicit_reply_suppresses_auto_reply(self, rt4):
        @behavior
        class Explicit:
            def __init__(self):
                pass

            @method
            def m(self, ctx):
                ctx.reply("explicit")
                return "return-value-ignored"

        rt4.load_behaviors(Explicit)
        e = rt4.spawn(Explicit, at=1)
        assert rt4.call(e, "m") == "explicit"

    def test_none_return_means_no_reply(self, rt4):
        from repro.errors import DeliveryError
        from tests.conftest import Counter
        c = rt4.spawn(Counter, at=0)
        with pytest.raises(DeliveryError, match="did not complete"):
            rt4.call(c, "incr")  # incr returns None -> no reply ever
