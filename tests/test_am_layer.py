"""Active-message layer: handlers, sizes, endpoints, multicast, bulk."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.am.broadcast import TreeMulticaster
from repro.am.bulk import BulkManager
from repro.am.cmam import Endpoint
from repro.am.flowcontrol import AcceptAll, MinimalFlowControl
from repro.am.handler import HandlerRegistry
from repro.am.messages import WORD_BYTES, message_nbytes, payload_nbytes
from repro.config import NetworkParams
from repro.errors import FlowControlError, HandlerError, NetworkError
from repro.sim.engine import SimNode, Simulator
from repro.sim.network import Network
from repro.sim.stats import StatsRegistry
from repro.sim.topology import HypercubeTopology
from repro.sim.trace import TraceLog


def make_endpoints(n=4):
    sim = Simulator()
    nodes = [SimNode(i, sim) for i in range(n)]
    stats = StatsRegistry()
    net = Network(sim, HypercubeTopology(n), nodes, NetworkParams(), stats)
    directory = {}
    eps = [
        Endpoint(node, net, directory, stats, TraceLog(),
                 send_overhead_us=1.0, receive_overhead_us=1.0)
        for node in nodes
    ]
    return sim, eps, directory, net


class TestHandlerRegistry:
    def test_register_and_lookup(self):
        reg = HandlerRegistry()
        fn = lambda src: None
        reg.register("h", fn)
        assert reg.lookup("h") is fn
        assert "h" in reg
        assert len(reg) == 1

    def test_double_registration_rejected(self):
        reg = HandlerRegistry()
        reg.register("h", lambda src: None)
        with pytest.raises(HandlerError):
            reg.register("h", lambda src: None)
        reg.register("h", lambda src: None, replace=True)

    def test_missing_handler(self):
        with pytest.raises(HandlerError, match="no handler"):
            HandlerRegistry().lookup("nope")

    def test_empty_name_rejected(self):
        with pytest.raises(HandlerError):
            HandlerRegistry().register("", lambda src: None)


class TestPayloadSizes:
    def test_scalars_cost_one_word(self):
        for v in (None, True, 7, 3.14):
            assert payload_nbytes(v) == WORD_BYTES

    def test_strings_and_bytes(self):
        assert payload_nbytes("abcd") == 4 + 4
        assert payload_nbytes(b"xyz") == 4 + 3

    def test_numpy_arrays_cost_their_buffer(self):
        a = np.zeros(100, dtype=np.float64)
        assert payload_nbytes(a) == 4 + 800

    def test_containers_sum_elements(self):
        assert payload_nbytes((1, 2)) == 4 + 2 * WORD_BYTES
        assert payload_nbytes({1: 2}) == 4 + 2 * WORD_BYTES

    def test_wire_bytes_hint(self):
        class Opaque:
            WIRE_BYTES = 48
        assert payload_nbytes(Opaque()) == 48

    def test_unknown_objects_get_default(self):
        class Thing:
            pass
        assert payload_nbytes(Thing()) == 2 * WORD_BYTES

    def test_deep_nesting_is_bounded(self):
        v = 1
        for _ in range(100):
            v = [v]
        assert payload_nbytes(v) < 10_000

    def test_message_includes_header(self):
        assert message_nbytes((1,), packet_bytes=20) == 24

    @given(st.recursive(
        st.one_of(st.integers(), st.floats(allow_nan=False), st.text(max_size=8)),
        lambda inner: st.lists(inner, max_size=4),
        max_leaves=20,
    ))
    @settings(max_examples=80, deadline=None)
    def test_property_sizes_positive_and_deterministic(self, value):
        a = payload_nbytes(value)
        assert a >= WORD_BYTES
        assert payload_nbytes(value) == a


class TestEndpoint:
    def test_send_runs_remote_handler(self):
        sim, eps, _, _ = make_endpoints()
        got = []
        eps[2].register("hello", lambda src, x: got.append((src, x)))
        eps[0].send(2, "hello", ("hi",))
        sim.run()
        assert got == [(0, "hi")]
        assert eps[2].delivered == 1

    def test_local_send_rejected(self):
        _, eps, _, _ = make_endpoints()
        with pytest.raises(NetworkError):
            eps[1].send(1, "x")

    def test_duplicate_endpoint_rejected(self):
        sim, eps, directory, net = make_endpoints(2)
        with pytest.raises(HandlerError):
            Endpoint(eps[0].node, net, directory, eps[0].stats, TraceLog(),
                     send_overhead_us=1.0, receive_overhead_us=1.0)

    def test_send_charges_sender_cpu(self):
        sim, eps, _, _ = make_endpoints()
        eps[1].register("h", lambda src: None)
        eps[0].node.bootstrap(lambda: eps[0].send(1, "h"))
        assert eps[0].node.busy_us == pytest.approx(1.0)

    def test_deferred_send_from_running_handler(self):
        """A send issued with the node clock ahead of the heap clock is
        transmitted at its true simulated time."""
        sim, eps, _, _ = make_endpoints()
        arrivals = []
        eps[1].register("h", lambda src: arrivals.append(sim.now))

        def long_handler():
            eps[0].node.charge(1000.0)
            eps[0].send(1, "h")

        eps[0].node.execute(0.0, long_handler)
        sim.run()
        assert arrivals and arrivals[0] > 1000.0

    def test_run_local(self):
        _, eps, _, _ = make_endpoints()
        got = []
        eps[0].register("h", lambda src, v: got.append((src, v)))
        eps[0].run_local("h", (9,))
        assert got == [(0, 9)]


class TestMulticast:
    def test_reaches_every_node_once(self):
        sim, eps, directory, net = make_endpoints(8)
        mc = TreeMulticaster(net.topology, directory)
        mc.install()
        got = []
        for ep in eps:
            ep.register("mark", lambda src, ep=ep: got.append(ep.node_id))
        mc.multicast(eps[3], "mark")
        sim.run()
        assert sorted(got) == list(range(8))

    def test_tree_edges_cover_partition(self):
        sim, eps, directory, net = make_endpoints(8)
        mc = TreeMulticaster(net.topology, directory)
        mc.install()
        edges = mc.tree_edges(root=2)
        assert len(edges) == 7
        children = [c for _, c in edges]
        assert sorted(children + [2]) == list(range(8))

    def test_double_install_rejected(self):
        sim, eps, directory, net = make_endpoints(2)
        mc = TreeMulticaster(net.topology, directory)
        mc.install()
        with pytest.raises(HandlerError):
            mc.install()

    def test_multicast_before_install_rejected(self):
        sim, eps, directory, net = make_endpoints(2)
        mc = TreeMulticaster(net.topology, directory)
        with pytest.raises(HandlerError):
            mc.multicast(eps[0], "x")


class TestFlowControlPolicies:
    def test_accept_all(self):
        p = AcceptAll()
        assert p.on_request((0, 1), 100) is True
        assert p.on_complete((0, 1)) is None

    def test_minimal_serialises(self):
        p = MinimalFlowControl(1)
        assert p.on_request((0, 1), 10) is True
        assert p.on_request((1, 1), 10) is False
        assert p.on_request((2, 1), 10) is False
        assert p.waiting_count == 2
        assert p.on_complete((0, 1)) == (1, 1)
        assert p.on_complete((1, 1)) == (2, 1)
        assert p.on_complete((2, 1)) is None
        assert p.active_count == 0

    def test_max_active_validation(self):
        with pytest.raises(FlowControlError):
            MinimalFlowControl(0)

    def test_duplicate_request_rejected(self):
        p = MinimalFlowControl(1)
        p.on_request((0, 1), 10)
        with pytest.raises(FlowControlError):
            p.on_request((0, 1), 10)

    def test_unknown_completion_rejected(self):
        with pytest.raises(FlowControlError):
            MinimalFlowControl(1).on_complete((9, 9))

    def test_duplicate_waiting_request_not_requeued(self):
        """A retransmitted request whose key is already queued must not
        be enqueued a second time (it would be acked twice later)."""
        p = MinimalFlowControl(1)
        assert p.on_request((0, 1), 10) is True
        assert p.on_request((1, 1), 10) is False
        assert p.on_request((1, 1), 10) is False  # duplicate of a waiter
        assert p.waiting_count == 1
        assert p.on_complete((0, 1)) == (1, 1)
        # The lone queued copy was promoted; nothing is left to
        # double-ack.
        assert p.on_complete((1, 1)) is None
        assert p.active_count == 0
        assert p.waiting_count == 0


class TestBulkTransfer:
    def make_bulk(self, n=3, policy_cls=MinimalFlowControl):
        sim, eps, directory, net = make_endpoints(n)
        mgrs = [
            BulkManager(ep, policy_cls(1) if policy_cls is MinimalFlowControl
                        else policy_cls(),
                        request_cpu_us=1.0, ack_cpu_us=1.0)
            for ep in eps
        ]
        return sim, eps, mgrs

    def test_three_phase_delivery(self):
        sim, eps, mgrs = self.make_bulk()
        got = []
        eps[1].register("sink", lambda src, tag: got.append((src, tag)))
        tid = mgrs[0].send_bulk(1, "sink", ("block",), nbytes=10_000)
        assert tid == 1
        sim.run()
        assert got == [(0, "block")]
        assert mgrs[0].pending_outgoing == 0
        assert mgrs[1].pending_inbound == 0
        assert eps[0].stats.counter("bulk.completions") == 1

    def test_flow_control_defers_second_transfer(self):
        sim, eps, mgrs = self.make_bulk()
        order = []
        eps[2].register("sink", lambda src, tag: order.append(tag))
        mgrs[0].send_bulk(2, "sink", ("a",), nbytes=20_000)
        mgrs[1].send_bulk(2, "sink", ("b",), nbytes=20_000)
        sim.run()
        assert sorted(order) == ["a", "b"]
        assert eps[0].stats.counter("bulk.fc_deferred") >= 1

    def test_accept_all_never_defers(self):
        sim, eps, mgrs = self.make_bulk(policy_cls=AcceptAll)
        got = []
        eps[2].register("sink", lambda src, tag: got.append(tag))
        mgrs[0].send_bulk(2, "sink", ("a",), nbytes=20_000)
        mgrs[1].send_bulk(2, "sink", ("b",), nbytes=20_000)
        sim.run()
        assert len(got) == 2
        assert eps[0].stats.counter("bulk.fc_deferred") == 0

    def test_zero_byte_transfer_rejected(self):
        sim, eps, mgrs = self.make_bulk()
        eps[1].register("sink", lambda src: None)
        with pytest.raises(FlowControlError):
            mgrs[0].send_bulk(1, "sink", (), nbytes=0)

    def test_duplicated_request_packet_acked_once(self):
        """A wire-duplicated ``__bulk.req__`` whose key parks in the
        waiting queue must be acked exactly once.  Pre-fix the dup was
        enqueued a second time, and the completion path then acked the
        same transfer twice — the sender blew up with "ack for unknown
        transfer"."""
        from repro.sim.faults import FaultInjector, FaultPlan, FaultRule

        sim = Simulator()
        nodes = [SimNode(i, sim) for i in range(2)]
        stats = StatsRegistry()
        # Reliability is off (bare endpoints), so the duplicated wire
        # packet reaches the flow-control policy twice — the exact
        # regime the minimal policy must tolerate.
        plan = FaultPlan(by_kind={"__bulk.req__": FaultRule(duplicate=1.0)})
        net = Network(sim, HypercubeTopology(2), nodes, NetworkParams(),
                      stats, faults=FaultInjector(plan, 7, stats))
        directory = {}
        eps = [
            Endpoint(node, net, directory, stats, TraceLog(),
                     send_overhead_us=1.0, receive_overhead_us=1.0)
            for node in nodes
        ]
        mgrs = [
            BulkManager(ep, MinimalFlowControl(1),
                        request_cpu_us=1.0, ack_cpu_us=1.0)
            for ep in eps
        ]
        got = []
        eps[1].register("sink", lambda src, tag: got.append(tag))
        # Occupy the receiver so the (duplicated) request parks in the
        # waiting queue instead of going active.
        busy = (99, 1)
        assert mgrs[1].policy.on_request(busy, 10) is True
        mgrs[0].send_bulk(1, "sink", ("block",), nbytes=10_000)
        sim.run()  # the request and its wire duplicate arrive and park
        assert got == []
        assert mgrs[1].policy.waiting_count == 1  # dup absorbed
        # Release the synthetic transfer; the queued request is acked.
        nxt = mgrs[1].policy.on_complete(busy)
        assert nxt == (0, 1)
        mgrs[1]._send_ack(nxt)
        sim.run()  # ack -> data -> completion (a second queued copy
        #            would fire a second ack here and crash the sender)
        assert got == ["block"]
        assert mgrs[0].pending_outgoing == 0
        assert mgrs[1].pending_inbound == 0
        assert mgrs[1].policy.active_count == 0
        assert mgrs[1].policy.waiting_count == 0

    def test_data_sized_by_nbytes_not_payload(self):
        """The data phase occupies the wire for the declared size."""
        sim, eps, mgrs = self.make_bulk()
        times = []
        eps[1].register("sink", lambda src: times.append(sim.now))
        mgrs[0].send_bulk(1, "sink", (), nbytes=100_000)
        sim.run()
        p = NetworkParams()
        assert times[0] > 100_000 * p.inject_us_per_byte
