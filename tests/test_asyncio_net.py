"""Asyncio socket-mesh backend: read-loop robustness and cluster
naming.

The adversarial-segmentation property drives the backend's *actual*
reader-pump coroutine (``_AsyncWorkerHost._pump``) over a real
``asyncio.StreamReader``: TCP may present any byte chunking of any
frame sequence, interleaved with event-loop scheduling points, and the
pump + decoder must reassemble exactly the sent records.  The naming
tests pin the driver-side FIR-style chase: resolution starts from the
birthplace shard an address encodes, follows forwarding guesses, and
back-patches the driver cache.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.scenarios import run_migration_tour, run_scenario
from repro.config import NetParams
from repro.platform.asyncio_net import (
    _NET_ACK_TIMEOUT_US,
    _AsyncChannel,
    _AsyncWorkerHost,
    _net_worker_config,
)
from repro.platform.base import WirePacket
from repro.platform.wireformat import FrameDecoder, FrameEncoder


# ----------------------------------------------------------------------
# adversarial TCP segmentation through the backend's read loop
# ----------------------------------------------------------------------
class _PumpProbe:
    """Just enough host surface for the real pump coroutine: the wake
    event it signals and the EOF flag it raises."""

    _pump = _AsyncWorkerHost._pump

    def __init__(self) -> None:
        self._wake = asyncio.Event()
        self._eof = False


def _simple_packets():
    names = st.sampled_from(["deliver_keyed", "fir_req", "__rel__", "h"])
    return st.builds(
        WirePacket,
        src=st.integers(0, 7),
        dst=st.integers(0, 7),
        handler=names,
        args=st.tuples(st.integers(-1000, 1000), st.text(max_size=8)),
        nbytes=st.integers(1, 4096),
        kind=names,
    )


class TestAdversarialSegmentation:
    @given(
        st.lists(_simple_packets(), min_size=1, max_size=16),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_pump_reassembles_any_chunking(self, pkts, data):
        """Feed the wire bytes to the pump's StreamReader in
        adversarially-chosen chunks with scheduling points between
        them; the channel decoder must yield exactly the records a
        whole-stream decode yields, and EOF must raise the host's
        eof flag and wake it."""
        enc = FrameEncoder()
        wire = bytearray()
        for i, p in enumerate(pkts):
            enc.add_message(p)
            # Interleave control records and frame boundaries so the
            # chunking crosses frames, not just messages.
            if data.draw(st.booleans(), label=f"token after {i}"):
                enc.add_token(i, i - 3, bool(i & 1))
            if data.draw(st.booleans(), label=f"flush after {i}"):
                wire += enc.take_frame()
        enc.add_quiesce(99)
        wire += enc.take_frame()
        expect_dec = FrameDecoder()
        expect_dec.feed(bytes(wire))
        expected = list(expect_dec.drain())

        async def scenario():
            reader = asyncio.StreamReader()
            ch = _AsyncChannel(reader, None)
            probe = _PumpProbe()
            task = asyncio.ensure_future(probe._pump(ch))
            pos = 0
            while pos < len(wire):
                step = data.draw(
                    st.integers(1, len(wire) - pos), label="chunk size"
                )
                reader.feed_data(bytes(wire[pos:pos + step]))
                pos += step
                if data.draw(st.booleans(), label="yield"):
                    # A scheduling point: the pump may run on any
                    # prefix of the stream.
                    await asyncio.sleep(0)
            reader.feed_eof()
            await task
            return list(ch.decoder.drain()), probe

        records, probe = asyncio.run(scenario())
        assert records == expected
        assert probe._eof
        assert probe._wake.is_set()

    @given(st.data())
    @settings(max_examples=20, deadline=None)
    def test_pump_holds_partial_frames_across_reads(self, data):
        """A frame split one byte at a time never yields early or
        corrupts: records appear only once their frame completes."""
        enc = FrameEncoder()
        p = WirePacket(0, 1, "deliver_keyed", (42,), 64, "deliver_keyed")
        enc.add_message(p)
        wire = enc.take_frame()
        cut = data.draw(st.integers(1, len(wire) - 1), label="cut")

        async def scenario():
            reader = asyncio.StreamReader()
            ch = _AsyncChannel(reader, None)
            probe = _PumpProbe()
            task = asyncio.ensure_future(probe._pump(ch))
            reader.feed_data(wire[:cut])
            await asyncio.sleep(0)
            early = list(ch.decoder.drain())
            reader.feed_data(wire[cut:])
            reader.feed_eof()
            await task
            return early, list(ch.decoder.drain())

        early, late = asyncio.run(scenario())
        assert early == []
        assert late == [("msg", p)]


# ----------------------------------------------------------------------
# worker config: the loss-tolerance layer is always on
# ----------------------------------------------------------------------
class TestWorkerConfig:
    def test_automatic_reliability_is_forced_on_with_wall_clock_floors(self):
        from repro.config import RuntimeConfig

        cfg = _net_worker_config(RuntimeConfig(num_nodes=2, seed=1))
        assert cfg.reliability.enabled is True
        assert cfg.reliability.ack_timeout_us >= _NET_ACK_TIMEOUT_US

    def test_explicit_settings_are_honoured(self):
        from repro.config import ReliabilityParams, RuntimeConfig

        off = _net_worker_config(RuntimeConfig(
            num_nodes=2, seed=1,
            reliability=ReliabilityParams(enabled=False),
        ))
        assert off.reliability.enabled is False
        custom = _net_worker_config(RuntimeConfig(
            num_nodes=2, seed=1,
            reliability=ReliabilityParams(enabled=True, ack_timeout_us=123.0),
        ))
        assert custom.reliability.ack_timeout_us == 123.0


# ----------------------------------------------------------------------
# cluster naming: birthplace-shard resolution with back-patching
# ----------------------------------------------------------------------
class TestClusterNaming:
    def test_locate_chases_from_the_birthplace_shard_and_backpatches(self):
        """After a migration tour the birthplace's table only holds a
        forwarding guess; a driver with a cold cache must still resolve
        the address (chasing node to node) and must cache the answer so
        the next query is a single hop."""
        res = run_migration_tour(
            trace=False, backend="asyncio", num_nodes=4, n=3
        )
        try:
            machine = res.runtime.machine
            [(addr, true_node)] = machine.actor_locations().items()
            assert true_node == res.summary["final_node"]
            machine._locations.clear()  # cold cache: force a chase
            assert machine.locate(addr) == true_node
            assert machine._locations[addr] == true_node  # back-patched
            # Warm cache: the next resolve starts at the cached node
            # and confirms locally in one hop.
            assert machine.locate(addr) == true_node
        finally:
            res.runtime.close()

    def test_resolve_is_a_pure_read(self):
        """Name resolution must not wake the partition: quiescence
        certified before a locate still holds after it."""
        res = run_migration_tour(
            trace=False, backend="asyncio", num_nodes=4, n=3
        )
        try:
            rt = res.runtime
            assert rt.quiescent()
            machine = rt.machine
            [(addr, _)] = machine.actor_locations().items()
            machine._locations.clear()
            machine.locate(addr)
            assert rt.quiescent()
        finally:
            res.runtime.close()

    def test_unknown_address_falls_back_to_snapshot(self):
        from repro.runtime.names import AddrKind, MailAddress

        res = run_scenario("ping_pong", trace=False, backend="asyncio")
        try:
            bogus = MailAddress(AddrKind.ORDINARY, 1, 999_999)
            assert res.runtime.machine.locate(bogus) is None
        finally:
            res.runtime.close()


# ----------------------------------------------------------------------
# transports
# ----------------------------------------------------------------------
class TestTransports:
    @pytest.mark.parametrize("transport", ["tcp", "unix"])
    def test_ping_pong_converges(self, transport):
        res = run_scenario(
            "ping_pong", trace=False, backend="asyncio",
            net=NetParams(transport=transport),
        )
        try:
            assert res.summary["rally"] == 40
            assert res.runtime.quiescent()
        finally:
            res.runtime.close()
