"""Causal tracing, latency histograms, and the timeline exporters.

White-box coverage for the observability subsystem: span propagation
through sends / migrations / FIR chases / replies, the fixed-bucket
histograms, both exporters, the CLI subcommands, and — crucially —
that all of it is inert and free when tracing is off.
"""

from __future__ import annotations

import json

import pytest

from repro import HalRuntime, RuntimeConfig
from repro.apps.scenarios import run_scenario
from repro.sim.stats import Histogram, StatsRegistry
from repro.sim.timeline import chrome_trace, spans_jsonl
from repro.sim.trace import (
    NullSpanRecorder,
    NullTraceLog,
    Span,
    SpanRecorder,
    TraceCtx,
    TraceLog,
)
from tests.conftest import EchoServer, Hopper, make_runtime


# ======================================================================
# TraceLog / SpanRecorder capacity accounting
# ======================================================================
class TestCapacityDrops:
    def test_trace_log_counts_drops(self):
        log = TraceLog(enabled=True, capacity=2)
        for i in range(5):
            log.emit(float(i), 0, "tick", i)
        assert len(log) == 2
        assert log.dropped == 3
        assert "3 records dropped at capacity 2" in log.dump()

    def test_trace_log_clear_resets_drop_count(self):
        log = TraceLog(enabled=True, capacity=1)
        log.emit(0.0, 0, "a")
        log.emit(1.0, 0, "b")
        assert log.dropped == 1
        log.clear()
        assert log.dropped == 0
        assert "dropped" not in log.dump()

    def test_span_recorder_ring_keeps_newest_and_counts_overwrites(self):
        # The span ring overwrites the *oldest* spans at capacity (the
        # recent past is what you debug with) and counts what was lost.
        rec = SpanRecorder(enabled=True, capacity=1)
        rec.span(1, 0, "a", "send", 0, 0.0)
        rec.span(1, 0, "b", "send", 0, 1.0)
        assert len(rec) == 1
        assert rec.overwrites == 1
        assert [s.name for s in rec.spans] == ["b"]
        assert "1 older spans overwritten in ring of 1" in rec.dump()


# ======================================================================
# histograms
# ======================================================================
class TestHistogram:
    def test_percentiles_interpolate_and_clamp(self):
        h = Histogram("lat")
        for v in (1, 2, 3, 4, 100):
            h.record(v)
        assert h.count == 5
        assert h.min == 1 and h.max == 100
        assert 1 <= h.p50 <= 4
        assert h.p99 == 100  # clamped to the observed max
        assert h.percentile(100) == 100

    def test_empty_histogram_is_silent(self):
        h = Histogram("empty")
        assert h.p50 == 0.0
        assert h.as_dict() == {"count": 0}

    def test_negative_values_clamp_to_zero(self):
        h = Histogram()
        h.record(-5.0)
        assert h.min == 0.0 and h.count == 1

    def test_reset_zeroes_in_place(self):
        reg = StatsRegistry()
        h = reg.hist("x")  # hot-path handle, bound once
        h.record(7)
        reg.reset()
        assert h.count == 0 and h.total == 0.0
        h.record(3)
        assert reg.hist("x").count == 1  # same object

    def test_as_dict_sparse_buckets(self):
        h = Histogram("d")
        h.record(0.5)
        h.record(5)
        d = h.as_dict()
        assert d["count"] == 2
        assert d["buckets"] == {"1.0": 1, "8.0": 1}


class TestStatsRegistrySnapshots:
    def test_snapshot_gains_hist_keys_only_when_recorded(self):
        reg = StatsRegistry()
        reg.hist("quiet")  # bound but never fed
        assert not any(k.startswith("hist.") for k in reg.snapshot())
        reg.record_hist("lat", 4.0)
        snap = reg.snapshot()
        assert snap["hist.lat.count"] == 1.0
        assert "hist.quiet.count" not in snap

    def test_as_dict_round_trips_through_json(self):
        reg = StatsRegistry()
        reg.incr("a.b", 3)
        reg.record_time("t", 1.5)
        reg.set_gauge("g", 2.0)
        reg.record_hist("h", 10.0)
        d = reg.as_dict()
        assert json.loads(json.dumps(d)) == d
        assert d["counters"] == {"a.b": 3}
        assert d["timers"]["t"]["count"] == 1
        assert d["gauges"] == {"g": 2.0}
        assert d["hists"]["h"]["count"] == 1


# ======================================================================
# tracing off: inert and invisible
# ======================================================================
class TestTracingOff:
    def test_untraced_runtime_gets_null_recorder(self):
        rt = make_runtime(4)
        assert isinstance(rt.spans, NullSpanRecorder)
        assert rt.spans.enabled is False

    def test_null_recorder_cannot_be_enabled(self):
        rec = NullSpanRecorder()
        with pytest.raises(ValueError):
            rec.enabled = True
        rec.enabled = False  # idempotent no-op is allowed
        rec.record(1, 2, 0, "x", "send", 0, 0.0, 0.0)
        assert len(rec) == 0

    def test_null_trace_log_cannot_be_enabled(self):
        log = NullTraceLog()
        with pytest.raises(ValueError):
            log.enabled = True

    def test_untraced_run_records_nothing(self):
        rt = make_runtime(4)
        ref = rt.spawn(EchoServer, at=1)
        assert rt.call(ref, "echo", 42) == 42
        assert len(rt.spans) == 0
        snap = rt.stats.snapshot()
        assert not any(k.startswith("hist.") for k in snap)

    def test_tracing_does_not_perturb_the_simulation(self):
        """Same workload, tracing on vs off: identical simulated time
        and identical counters (TraceCtx is 0 wire bytes)."""
        results = {}
        for trace in (False, True):
            res = run_scenario("fibonacci_loadbalance", n=10, trace=trace)
            rt = res.runtime
            snap = {k: v for k, v in rt.stats.snapshot().items()
                    if not k.startswith("hist.")}
            results[trace] = (rt.now, res.summary["value"], snap)
        assert results[False] == results[True]

    def test_trace_ctx_costs_nothing_on_the_wire(self):
        from repro.am.messages import payload_nbytes
        ctx = TraceCtx(7, 3, 125.0)
        assert payload_nbytes(ctx) == 0
        assert payload_nbytes(("x", ctx)) == payload_nbytes(("x",))


# ======================================================================
# span propagation
# ======================================================================
class TestSpanPropagation:
    def test_local_send_has_send_and_execute(self):
        rt = HalRuntime(RuntimeConfig(num_nodes=2), trace=True)
        rt.load_behaviors(EchoServer)
        ref = rt.spawn(EchoServer, at=0)
        rt.call(ref, "echo", 1, from_node=0)
        kinds = {s.kind for s in rt.spans}
        assert "send" in kinds and "execute" in kinds

    def test_remote_send_records_network_hop(self):
        rt = HalRuntime(RuntimeConfig(num_nodes=2), trace=True)
        rt.load_behaviors(EchoServer)
        ref = rt.spawn(EchoServer, at=1)
        rt.call(ref, "echo", 1, from_node=0)
        hops = rt.spans.of_kind("hop")
        assert hops, "remote delivery must record a hop span"
        (tid,) = {h.trace_id for h in hops}
        kinds = rt.spans.kinds_in_tree(tid)
        # The journey threads send -> hop -> execute in one tree.
        assert kinds.index("send") < kinds.index("hop") < kinds.index("execute")
        hop = hops[0]
        assert hop.duration_us > 0  # spans the wire transit interval

    def test_migration_journey_spans(self):
        rt = HalRuntime(RuntimeConfig(num_nodes=4), trace=True)
        rt.load_behaviors(Hopper)
        ref = rt.spawn(Hopper, at=0)
        rt.send(ref, "hop", 2, from_node=0)
        rt.run()
        assert rt.locate(ref) == 2
        out = rt.spans.of_kind("migrate.out")
        assert len(out) == 1
        tid = out[0].trace_id
        kinds = rt.spans.kinds_in_tree(tid)
        # The migration parents under the execution that requested it.
        for k in ("execute", "migrate.out", "migrate.in", "migrate.ack"):
            assert k in kinds, (k, kinds)

    def test_nested_request_stays_in_one_trace(self):
        """An execution's own sends parent to its execute span, so a
        request chain is a single causal tree."""
        rt = HalRuntime(RuntimeConfig(num_nodes=2), trace=True)
        rt.load_behaviors(EchoServer)
        a = rt.spawn(EchoServer, at=0)
        b = rt.spawn(EchoServer, at=1)
        rt.call(a, "echo", 5)
        rt.call(b, "add", 1, 2)
        executes = rt.spans.of_kind("execute")
        assert len(executes) == 2
        assert len({s.trace_id for s in executes}) == 2  # separate journeys

    def test_remote_creation_spans(self):
        rt = HalRuntime(RuntimeConfig(num_nodes=4), trace=True)
        rt.load_behaviors(EchoServer)
        ref = rt.spawn_remote(EchoServer, at=2, issuing_node=0)
        rt.run()
        assert rt.call(ref, "echo", 9) == 9
        assert rt.spans.count("create.issue") == 1
        assert rt.spans.count("create.serve") == 1
        issue = rt.spans.of_kind("create.issue")[0]
        serve = rt.spans.of_kind("create.serve")[0]
        assert issue.trace_id == serve.trace_id


# ======================================================================
# the full journey: FIR chase with back-patching (the paper's §4.3)
# ======================================================================
class TestFirChaseJourney:
    @pytest.fixture(scope="class")
    def tour(self):
        return run_scenario("migration_tour")

    def test_probe_trace_shows_full_journey(self, tour):
        spans = tour.runtime.spans
        fir_starts = spans.of_kind("fir.start")
        assert len(fir_starts) == 1
        tid = fir_starts[0].trace_id
        kinds = spans.kinds_in_tree(tid)
        # send -> stale hop -> FIR chase -> resolve -> repair -> real
        # delivery -> execution, all one tree.
        for k in ("send", "hop", "fir.start", "fir.hop", "fir.resolve",
                  "fir.reply", "backpatch", "execute"):
            assert k in kinds, (k, kinds)
        order = [kinds.index(k) for k in
                 ("send", "fir.start", "fir.hop", "fir.resolve", "execute")]
        assert order == sorted(order)

    def test_chase_walks_the_whole_tour(self, tour):
        """With address caching off, the FIR must visit every former
        host: 3 migrations -> chain of length 3."""
        spans = tour.runtime.spans
        tid = spans.of_kind("fir.start")[0].trace_id
        hops = [s for s in spans.of_trace(tid) if s.kind == "fir.hop"]
        assert len(hops) == 3
        assert [s.node for s in hops] == [2, 3, 4]

    def test_fir_replies_backpatch_every_chain_member(self, tour):
        spans = tour.runtime.spans
        tid = spans.of_kind("fir.start")[0].trace_id
        patches = [s for s in spans.of_trace(tid) if s.kind == "backpatch"]
        # Every chain node (1, 2, 3) learns the actor's real address.
        assert sorted(s.node for s in patches) == [1, 2, 3]

    def test_chain_length_histogram_fed(self, tour):
        h = tour.runtime.stats.hist("fir_chain_length")
        assert h.count == 1 and h.max == 3.0

    def test_root_of_probe_tree_is_the_send(self, tour):
        spans = tour.runtime.spans
        tid = spans.of_kind("fir.start")[0].trace_id
        roots = spans.tree(tid)
        assert len(roots) == 1
        assert roots[0]["span"].kind == "send"


# ======================================================================
# work stealing carries causal context
# ======================================================================
class TestStealPropagation:
    def test_fib_forms_a_single_trace(self):
        res = run_scenario("fibonacci_loadbalance", n=12)
        rt = res.runtime
        assert res.summary["steals"] > 0
        assert len(rt.spans.trace_ids()) == 1
        # Stolen tasks executed on thief nodes stay in the trace.
        nodes = {s.node for s in rt.spans if s.kind == "task"}
        assert len(nodes) > 1


# ======================================================================
# exporters
# ======================================================================
class TestExporters:
    def _spans(self):
        return [
            Span(1, 1, 0, "send m", "send", 0, 10.0, 10.0, ("x",)),
            Span(1, 2, 1, "hop m", "hop", 3, 10.0, 14.5),
            Span(1, 3, 2, "E.m", "execute", -1, 15.0, 17.0),
        ]

    def test_chrome_trace_structure(self):
        doc = chrome_trace(self._spans())
        assert json.loads(json.dumps(doc)) == doc
        evs = doc["traceEvents"]
        xs = [e for e in evs if e["ph"] == "X"]
        instants = [e for e in evs if e["ph"] == "i"]
        metas = [e for e in evs if e["ph"] == "M"]
        assert len(xs) == 2 and len(instants) == 1
        assert all("dur" in e for e in xs)
        # Frontend node -1 is remapped to a viewer-safe tid.
        assert {e["tid"] for e in xs} == {3, 10_000}
        names = {e["args"]["name"] for e in metas if e["name"] == "thread_name"}
        assert "frontend" in names and "node 3" in names

    def test_chrome_trace_category_is_kind_family(self):
        doc = chrome_trace(self._spans())
        cats = {e["cat"] for e in doc["traceEvents"] if e["ph"] != "M"}
        assert cats == {"send", "hop", "execute"}

    def test_spans_jsonl(self):
        text = spans_jsonl(self._spans())
        lines = text.strip().split("\n")
        assert len(lines) == 3
        first = json.loads(lines[0])
        assert first["span_id"] == 1 and first["attrs"] == ["'x'"]
        assert spans_jsonl([]) == ""

    def test_scenario_exports_valid_chrome_trace(self):
        res = run_scenario("migration_tour")
        doc = chrome_trace(res.runtime.spans.spans)
        evs = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert len(evs) == len(res.runtime.spans)
        json.dumps(doc)  # fully serialisable


# ======================================================================
# CLI
# ======================================================================
class TestCli:
    def test_trace_subcommand_writes_chrome_json(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "tour.json"
        assert main(["trace", "migration_tour", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        text = capsys.readouterr().out
        assert "spans[fir.hop]" in text

    def test_trace_subcommand_jsonl(self, tmp_path):
        from repro.cli import main
        out = tmp_path / "spans.jsonl"
        assert main(["trace", "migration_tour", "--format", "jsonl",
                     "--out", str(out)]) == 0
        lines = out.read_text().strip().split("\n")
        assert all(json.loads(ln)["trace_id"] for ln in lines)

    def test_stats_subcommand_renders_histograms(self, capsys):
        from repro.cli import main
        assert main(["stats", "migration_tour"]) == 0
        text = capsys.readouterr().out
        assert "fir_chain_length" in text
        assert "p99" in text

    def test_stats_subcommand_json(self, capsys):
        from repro.cli import main
        assert main(["stats", "fibonacci_loadbalance", "--n", "10",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["hists"]["execution_time_us"]["count"] > 0

    def test_unknown_scenario_errors_cleanly(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["trace", "no_such_scenario"])
